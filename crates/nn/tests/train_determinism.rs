//! Thread-count invariance of the data-parallel trainer: training with
//! `threads = N` must be *bit-identical* to `threads = 1` — same per-epoch
//! losses, same final parameters, same checkpoint. The trainer guarantees
//! this by computing per-graph gradients into per-shard buffers and reducing
//! them in a fixed (item-index) order, so no float add ever changes order
//! with the thread count.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use snowcat_graph::{CtGraph, Edge, EdgeKind, SchedMark, VertKind, Vertex};
use snowcat_kernel::{BlockId, ThreadId};
use snowcat_nn::{train, train_with_flows, Checkpoint, PicConfig, PicModel, TrainConfig};

fn synthetic_example(seed: u64, n: usize) -> (CtGraph, Vec<bool>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let verts: Vec<Vertex> = (0..n)
        .map(|i| Vertex {
            block: BlockId(i as u32),
            thread: ThreadId((i % 2) as u8),
            kind: if i % 2 == 0 { VertKind::Scb } else { VertKind::Urb },
            sched_mark: SchedMark::None,
            may_race: false,
            tokens: vec![1 + rng.gen_range(0..40u32)],
            static_feats: Default::default(),
        })
        .collect();
    let mut edges = Vec::new();
    let mut labels = vec![false; n];
    for i in 0..n {
        if i + 1 < n {
            edges.push(Edge { from: i as u32, to: (i + 1) as u32, kind: EdgeKind::ScbFlow });
        }
        if verts[i].kind == VertKind::Urb {
            if rng.gen_bool(0.3) {
                let src = rng.gen_range(0..n as u32);
                edges.push(Edge { from: src, to: i as u32, kind: EdgeKind::Schedule });
                labels[i] = true;
            }
        } else {
            labels[i] = true;
        }
    }
    (CtGraph { verts, edges }, labels)
}

fn dataset(count: usize) -> Vec<(CtGraph, Vec<bool>)> {
    (0..count).map(|i| synthetic_example(100 + i as u64, 8 + (i % 5) * 3)).collect()
}

/// Run one full training with the given thread count and return the report
/// plus a checkpoint of the selected parameters.
fn run(threads: usize, batch: usize) -> (Vec<f32>, Vec<f64>, Checkpoint) {
    let data = dataset(11);
    let examples: Vec<(&CtGraph, &[bool])> = data.iter().map(|(g, l)| (g, l.as_slice())).collect();
    let (train_set, valid_set) = examples.split_at(8);
    let mut model = PicModel::new(PicConfig { hidden: 12, layers: 2, ..Default::default() });
    let cfg = TrainConfig { epochs: 3, lr: 5e-3, batch, seed: 9, threads };
    let report = train(&mut model, train_set, valid_set, cfg);
    (report.epoch_losses, report.val_ap, Checkpoint::new(&model, 0.5, "det"))
}

#[test]
fn training_is_bit_identical_across_thread_counts() {
    let (losses1, ap1, ck1) = run(1, 4);
    for threads in [2, 4] {
        let (losses_n, ap_n, ck_n) = run(threads, 4);
        assert_eq!(losses1, losses_n, "epoch losses diverge at threads={threads}");
        assert_eq!(ap1, ap_n, "validation AP diverges at threads={threads}");
        assert_eq!(ck1.params, ck_n.params, "final parameters diverge at threads={threads}");
    }
}

#[test]
fn partial_trailing_batches_stay_deterministic() {
    // 8 training graphs with batch 3 leaves a trailing partial batch of 2;
    // thread counts above the partial batch size must clamp, not diverge.
    let (losses1, _, ck1) = run(1, 3);
    let (losses4, _, ck4) = run(4, 3);
    assert_eq!(losses1, losses4);
    assert_eq!(ck1.params, ck4.params);
}

#[test]
fn oversubscribed_threads_clamp_to_batch() {
    // More threads than graphs in any batch: still identical.
    let (losses1, _, ck1) = run(1, 2);
    let (losses16, _, ck16) = run(16, 2);
    assert_eq!(losses1, losses16);
    assert_eq!(ck1.params, ck16.params);
}

#[test]
fn flow_training_is_bit_identical_across_thread_counts() {
    let data = dataset(9);
    // Give every graph an InterFlow edge so the flow head sees gradients.
    let enriched: Vec<(CtGraph, Vec<bool>, Vec<bool>)> = data
        .into_iter()
        .map(|(mut g, l)| {
            let n = g.verts.len() as u32;
            g.edges.push(Edge { from: 0, to: n - 1, kind: EdgeKind::InterFlow });
            let flows: Vec<bool> = g.edges.iter().map(|e| e.kind == EdgeKind::InterFlow).collect();
            (g, l, flows)
        })
        .collect();
    let run_flow = |threads: usize| {
        let examples: Vec<(&CtGraph, &[bool], &[bool])> =
            enriched.iter().map(|(g, l, f)| (g, l.as_slice(), f.as_slice())).collect();
        let (train_set, rest) = examples.split_at(7);
        let valid: Vec<(&CtGraph, &[bool])> = rest.iter().map(|&(g, l, _)| (g, l)).collect();
        let mut model = PicModel::new(PicConfig { hidden: 12, layers: 2, ..Default::default() });
        let cfg = TrainConfig { epochs: 2, lr: 5e-3, batch: 3, seed: 11, threads };
        let report = train_with_flows(&mut model, train_set, &valid, cfg);
        (report.epoch_losses, model.params)
    };
    let (losses1, params1) = run_flow(1);
    let (losses4, params4) = run_flow(4);
    assert_eq!(losses1, losses4);
    assert_eq!(params1, params4);
}
