//! Bit-exact equivalence suite for the tiled tensor kernels.
//!
//! Every optimized / fused / into-buffer kernel in `snowcat_nn::tensor` is
//! pinned to a scalar reference that follows the module doc's
//! summation-order contract (k strictly ascending, sequential adds). Because
//! the tiled kernels preserve that order — the unrolled blocks do sequential
//! adds, Rust never contracts to FMA, and LLVM never reassociates float adds
//! without fast-math — the comparison is exact `assert_eq!` on the raw
//! `f32` bits, not tolerance-based.

use proptest::prelude::*;
use snowcat_nn::{Mat, Scratch};

/// Random matrix of the given shape.
fn arb_mat(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols).prop_map(move |data| Mat {
        rows,
        cols,
        data,
    })
}

/// Random (n, k, m) shape triple crossing the KU=4 / PANEL=8 remainder
/// boundaries, with the three matrices of a matmul-family call.
fn arb_triple() -> impl Strategy<Value = (Mat, Mat, Mat)> {
    (1usize..=13, 1usize..=13, 1usize..=19)
        .prop_flat_map(|(n, k, m)| (arb_mat(n, k), arb_mat(k, m), arb_mat(n, m)))
}

/// Reference `out[i][j] = fold_k (acc + a[i][k] * b[k][j])`, k ascending,
/// starting from the existing `out` values.
fn ref_matmul_acc(a: &Mat, b: &Mat, out: &mut Mat) {
    for i in 0..a.rows {
        for k in 0..a.cols {
            let av = a.get(i, k);
            for j in 0..b.cols {
                let v = out.get(i, j) + av * b.get(k, j);
                out.set(i, j, v);
            }
        }
    }
}

/// Reference `out += aᵀ @ b`, k ascending per output element.
fn ref_matmul_tn_acc(a: &Mat, b: &Mat, out: &mut Mat) {
    for k in 0..a.rows {
        for i in 0..a.cols {
            let av = a.get(k, i);
            for j in 0..b.cols {
                let v = out.get(i, j) + av * b.get(k, j);
                out.set(i, j, v);
            }
        }
    }
}

/// Reference `out += a @ bᵀ`, k ascending per output element.
fn ref_matmul_nt_acc(a: &Mat, b: &Mat, out: &mut Mat) {
    for i in 0..a.rows {
        for j in 0..b.rows {
            let mut acc = out.get(i, j);
            for k in 0..a.cols {
                acc += a.get(i, k) * b.get(j, k);
            }
            out.set(i, j, acc);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_bits_match_naive(abc in arb_triple()) {
        let (a, b, _) = abc;
        prop_assert_eq!(a.matmul(&b).data, a.naive_matmul(&b).data);
    }

    #[test]
    fn matmul_bits_match_reference(abc in arb_triple()) {
        let (a, b, _) = abc;
        let mut expect = Mat::zeros(a.rows, b.cols);
        ref_matmul_acc(&a, &b, &mut expect);
        prop_assert_eq!(a.matmul(&b).data, expect.data);
    }

    #[test]
    fn matmul_into_overwrites_dirty_buffer(abc in arb_triple()) {
        let (a, b, dirty) = abc;
        let mut out = dirty;
        a.matmul_into(&b, &mut out);
        prop_assert_eq!(out.data, a.naive_matmul(&b).data);
    }

    #[test]
    fn matmul_acc_into_folds_from_base(abc in arb_triple()) {
        let (a, b, base) = abc;
        let mut out = base.clone();
        a.matmul_acc_into(&b, &mut out);
        let mut expect = base;
        ref_matmul_acc(&a, &b, &mut expect);
        prop_assert_eq!(out.data, expect.data);
    }

    #[test]
    fn matmul_tn_bits_match_naive(abc in arb_triple()) {
        let (_, b, _) = abc;
        // aᵀ needs a.rows == b.rows: reuse b as both operands ((kxm)ᵀ·(kxm)).
        let a = b.clone();
        prop_assert_eq!(a.matmul_tn(&b).data, a.naive_matmul_tn(&b).data);
    }

    #[test]
    fn matmul_tn_acc_into_folds_from_base(nkm in (1usize..=11, 1usize..=11, 1usize..=17)) {
        let (n, k, m) = nkm;
        let mk = |seed: usize, rows: usize, cols: usize| {
            Mat::from_fn(rows, cols, |r, c| {
                ((seed * 31 + r * 7 + c * 3) % 17) as f32 * 0.37 - 2.9
            })
        };
        let a = mk(1, k, n);
        let b = mk(2, k, m);
        let base = mk(3, n, m);
        let mut out = base.clone();
        a.matmul_tn_acc_into(&b, &mut out);
        let mut expect = base.clone();
        ref_matmul_tn_acc(&a, &b, &mut expect);
        assert_eq!(out.data, expect.data);
        let mut overwrite = base;
        a.matmul_tn_into(&b, &mut overwrite);
        assert_eq!(overwrite.data, a.naive_matmul_tn(&b).data);
    }

    #[test]
    fn matmul_nt_bits_match_naive(nkm in (1usize..=11, 1usize..=17, 1usize..=11)) {
        let (n, k, m) = nkm;
        let mk = |seed: usize, rows: usize, cols: usize| {
            Mat::from_fn(rows, cols, |r, c| {
                ((seed * 13 + r * 5 + c * 11) % 23) as f32 * 0.21 - 2.3
            })
        };
        let a = mk(4, n, k);
        let b = mk(5, m, k);
        let base = mk(6, n, m);
        assert_eq!(a.matmul_nt(&b).data, a.naive_matmul_nt(&b).data);
        // The into/acc variants route through a scratch transpose; pre-dirty
        // the scratch pool to prove `take` zero-fills reused buffers.
        let mut scratch = Scratch::new();
        let mut junk = scratch.take(k + 3, m + 3);
        junk.data.iter_mut().for_each(|v| *v = f32::NAN);
        scratch.put(junk);
        let mut out = base.clone();
        a.matmul_nt_into(&b, &mut out, &mut scratch);
        assert_eq!(out.data, a.naive_matmul_nt(&b).data);
        let mut acc = base.clone();
        a.matmul_nt_acc_into(&b, &mut acc, &mut scratch);
        let mut expect = base;
        ref_matmul_nt_acc(&a, &b, &mut expect);
        assert_eq!(acc.data, expect.data);
    }

    #[test]
    fn fused_bias_relu_matches_bias_first_reference(abc in arb_triple()) {
        let (a, b, dirty) = abc;
        let bias = Mat { rows: 1, cols: b.cols, data: b.row(0).to_vec() };
        // Reference: out row initialized with bias, then k-ascending
        // accumulation, then ReLU (the documented bias-first order).
        let mut expect = Mat::zeros(a.rows, b.cols);
        expect.fill_row_broadcast(&bias);
        ref_matmul_acc(&a, &b, &mut expect);
        expect.relu_inplace();
        prop_assert_eq!(a.matmul_bias_relu(&b, &bias).data.clone(), expect.data.clone());
        let mut out = dirty;
        a.matmul_bias_relu_into(&b, &bias, &mut out);
        prop_assert_eq!(out.data, expect.data);
    }

    #[test]
    fn add_scaled_is_single_rounding_axpy(a in arb_mat(5, 9), b in arb_mat(5, 9), s in -2.0f32..2.0) {
        let mut out = a.clone();
        out.add_scaled(&b, s);
        let expect: Vec<f32> =
            a.data.iter().zip(&b.data).map(|(&x, &y)| x + s * y).collect();
        prop_assert_eq!(out.data, expect);
    }

    #[test]
    fn col_sum_acc_folds_rows_ascending(a in arb_mat(7, 6), base in arb_mat(1, 6)) {
        let mut out = base.clone();
        a.col_sum_acc_into(&mut out);
        let mut expect = base;
        for r in 0..a.rows {
            for (o, &v) in expect.data.iter_mut().zip(a.row(r)) {
                *o += v;
            }
        }
        prop_assert_eq!(out.data, expect.data);
        // And the allocating variant starts from zero.
        let mut zero_based = Mat::zeros(1, a.cols);
        a.col_sum_acc_into(&mut zero_based);
        prop_assert_eq!(a.col_sum().data, zero_based.data);
    }

    #[test]
    fn transpose_into_matches_transposed(a in arb_mat(6, 11)) {
        let mut out = Mat::zeros(11, 6);
        out.data.iter_mut().for_each(|v| *v = 42.0);
        a.transpose_into(&mut out);
        prop_assert_eq!(out.data.clone(), a.transposed().data.clone());
        for r in 0..a.rows {
            for c in 0..a.cols {
                prop_assert_eq!(a.get(r, c), out.get(c, r));
            }
        }
    }

    #[test]
    fn scratch_take_is_zeroed_and_reuses_capacity(rows in 1usize..10, cols in 1usize..10) {
        let mut scratch = Scratch::new();
        let mut m = scratch.take(rows, cols);
        prop_assert!(m.data.iter().all(|&v| v == 0.0));
        m.data.iter_mut().for_each(|v| *v = f32::INFINITY);
        scratch.put(m);
        let before = scratch.allocations();
        let again = scratch.take(rows, cols);
        prop_assert_eq!(scratch.allocations(), before);
        prop_assert!(again.data.iter().all(|&v| v == 0.0));
    }
}

/// Larger fixed shapes exercising full panels plus remainders in the same
/// call (n, k, m beyond one KU block and one PANEL).
#[test]
fn large_shapes_bit_match_naive() {
    let mk = |seed: usize, rows: usize, cols: usize| {
        Mat::from_fn(rows, cols, |r, c| ((seed * 37 + r * 13 + c * 29) % 41) as f32 * 0.11 - 2.2)
    };
    for &(n, k, m) in &[(40, 33, 19), (17, 8, 32), (9, 5, 8), (64, 32, 32)] {
        let a = mk(7, n, k);
        let b = mk(8, k, m);
        assert_eq!(a.matmul(&b).data, a.naive_matmul(&b).data, "matmul {n}x{k}x{m}");
        let at = mk(9, k, n);
        assert_eq!(at.matmul_tn(&b).data, at.naive_matmul_tn(&b).data, "matmul_tn {n}x{k}x{m}");
        let bt = mk(10, m, k);
        assert_eq!(a.matmul_nt(&bt).data, a.naive_matmul_nt(&bt).data, "matmul_nt {n}x{k}x{m}");
    }
}
