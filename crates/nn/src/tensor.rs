//! Minimal dense-matrix math for the neural stack.
//!
//! `f32`, row-major, no unsafe, no SIMD intrinsics — at Snowcat-scale graphs
//! (10²–10³ vertices, hidden dims ≤ 128) plain loops keep training and
//! inference comfortably fast, and the code stays auditable.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A row-major dense matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mat {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Row-major storage, `rows * cols` long.
    pub data: Vec<f32>,
}

impl Mat {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Xavier/Glorot-uniform initialized matrix.
    pub fn xavier<R: Rng>(rng: &mut R, rows: usize, cols: usize) -> Self {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        Self { rows, cols, data: (0..rows * cols).map(|_| rng.gen_range(-bound..bound)).collect() }
    }

    /// Build from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Immutable row slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// `self @ other` — (n×k)·(k×m) → n×m.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Mat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ @ other` — (k×n)ᵀ·(k×m) → n×m. Used for weight gradients.
    pub fn matmul_tn(&self, other: &Mat) -> Mat {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        let mut out = Mat::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ otherᵀ` — (n×k)·(m×k)ᵀ → n×m. Used for input gradients.
    pub fn matmul_nt(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        let mut out = Mat::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// Add `other` element-wise in place.
    pub fn add_assign(&mut self, other: &Mat) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Add a 1×cols row vector to every row.
    pub fn add_row_broadcast(&mut self, row: &Mat) {
        assert_eq!(row.rows, 1);
        assert_eq!(row.cols, self.cols);
        for r in 0..self.rows {
            for (a, b) in self.row_mut(r).iter_mut().zip(&row.data) {
                *a += b;
            }
        }
    }

    /// Column-wise sum as a 1×cols matrix (bias gradients).
    pub fn col_sum(&self) -> Mat {
        let mut out = Mat::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// ReLU in place; returns the pre-activation copy for backward.
    pub fn relu_inplace(&mut self) {
        for v in &mut self.data {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }

    /// Element-wise multiply by the ReLU mask of `pre` (1 where `pre` > 0).
    pub fn relu_backward_mask(&mut self, pre: &Mat) {
        assert_eq!((self.rows, self.cols), (pre.rows, pre.cols));
        for (g, &p) in self.data.iter_mut().zip(&pre.data) {
            if p <= 0.0 {
                *g = 0.0;
            }
        }
    }

    /// Scale all elements.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Frobenius norm (for gradient clipping).
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Zero all elements (gradient reset between steps).
    pub fn zero(&mut self) {
        for v in &mut self.data {
            *v = 0.0;
        }
    }
}

/// Numerically stable sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable binary cross-entropy from the *logit*, with an
/// optional positive-class weight: `w_pos * y * softplus(-z) + (1-y) *
/// softplus(z)`.
#[inline]
pub fn bce_with_logit(logit: f32, label: bool, pos_weight: f32) -> f32 {
    let softplus = |x: f32| {
        if x > 20.0 {
            x
        } else if x < -20.0 {
            0.0
        } else {
            (1.0 + x.exp()).ln()
        }
    };
    if label {
        pos_weight * softplus(-logit)
    } else {
        softplus(logit)
    }
}

/// Gradient of [`bce_with_logit`] with respect to the logit.
#[inline]
pub fn bce_grad(logit: f32, label: bool, pos_weight: f32) -> f32 {
    let p = sigmoid(logit);
    if label {
        pos_weight * (p - 1.0)
    } else {
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Mat {
        assert_eq!(v.len(), rows * cols);
        Mat { rows, cols, data: v.to_vec() }
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_equals_transpose_matmul() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]); // 3x2
        let b = m(3, 2, &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]); // 3x2
                                                          // aT (2x3) @ b (3x2) = 2x2
        let c = a.matmul_tn(&b);
        assert_eq!(c.rows, 2);
        assert_eq!(c.cols, 2);
        assert_eq!(c.data, vec![1.0 + 5.0, 3.0 + 5.0, 2.0 + 6.0, 4.0 + 6.0]);
    }

    #[test]
    fn matmul_nt_equals_matmul_with_transpose() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(2, 3, &[1.0, 1.0, 0.0, 0.0, 1.0, 1.0]); // treated as 3x2 transposed
        let c = a.matmul_nt(&b);
        assert_eq!(c.rows, 2);
        assert_eq!(c.cols, 2);
        assert_eq!(c.data, vec![3.0, 5.0, 9.0, 11.0]);
    }

    #[test]
    fn relu_and_mask() {
        let mut x = m(1, 4, &[-1.0, 2.0, 0.0, -3.0]);
        let pre = x.clone();
        x.relu_inplace();
        assert_eq!(x.data, vec![0.0, 2.0, 0.0, 0.0]);
        let mut g = m(1, 4, &[1.0, 1.0, 1.0, 1.0]);
        g.relu_backward_mask(&pre);
        assert_eq!(g.data, vec![0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn broadcast_and_colsum_are_adjoint() {
        let mut x = Mat::zeros(3, 2);
        let b = m(1, 2, &[1.0, -1.0]);
        x.add_row_broadcast(&b);
        assert_eq!(x.data, vec![1.0, -1.0, 1.0, -1.0, 1.0, -1.0]);
        let s = x.col_sum();
        assert_eq!(s.data, vec![3.0, -3.0]);
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert!((sigmoid(100.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn bce_matches_definition_midrange() {
        let z = 0.3f32;
        let p = sigmoid(z);
        let expect_pos = -(p.ln());
        let expect_neg = -((1.0 - p).ln());
        assert!((bce_with_logit(z, true, 1.0) - expect_pos).abs() < 1e-5);
        assert!((bce_with_logit(z, false, 1.0) - expect_neg).abs() < 1e-5);
    }

    #[test]
    fn bce_grad_is_finite_difference_of_loss() {
        let eps = 1e-3f32;
        for &z in &[-2.0f32, -0.5, 0.0, 0.7, 3.0] {
            for &y in &[true, false] {
                for &w in &[1.0f32, 3.0] {
                    let num = (bce_with_logit(z + eps, y, w) - bce_with_logit(z - eps, y, w))
                        / (2.0 * eps);
                    let ana = bce_grad(z, y, w);
                    assert!((num - ana).abs() < 1e-2, "z={z} y={y} w={w}: {num} vs {ana}");
                }
            }
        }
    }

    #[test]
    fn xavier_is_bounded_and_seeded() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let a = Mat::xavier(&mut rng, 10, 10);
        let bound = (6.0 / 20.0f32).sqrt();
        assert!(a.data.iter().all(|v| v.abs() <= bound));
        let mut rng2 = ChaCha8Rng::seed_from_u64(0);
        let b = Mat::xavier(&mut rng2, 10, 10);
        assert_eq!(a, b);
    }
}
