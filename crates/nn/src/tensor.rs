//! Dense-matrix math for the neural stack: register-tiled, autovectorizer-
//! friendly `f32` kernels, fused ops, and a scratch arena for allocation-free
//! steady-state inference.
//!
//! Everything is row-major, safe Rust (no `unsafe`, no intrinsics, no
//! nightly). The hot kernels are written so LLVM's autovectorizer emits SIMD
//! on stable:
//!
//! * the `matmul` core walks each output row in fixed-width column panels
//!   ([`PANEL_WIDE`] = 32, then [`PANEL`] = 8); each panel is copied into a
//!   `[f32; W]` accumulator that LLVM keeps in vector registers for the
//!   *entire* k loop, so per product there is exactly one `b`-row load and
//!   no output-row traffic (the naive axpy form reloads and restores the
//!   output row on every k step);
//! * the `matmul_tn` core does rank-[`KU`] (4) updates: four k steps share
//!   one pass over the output row, quartering its load/store traffic, with
//!   the panel bodies on compile-time trip counts via `chunks_exact`.
//!
//! # Summation-order contract
//!
//! Floating-point addition is not associative, so every kernel documents —
//! and tests pin — its exact reduction order. For all matmul-family ops the
//! contract is:
//!
//! * `matmul` / `matmul_into` / `matmul_acc_into`:
//!   `out[i][j] = fold_k (acc + a[i][k] * b[k][j])` with `k` strictly
//!   ascending, starting from `0.0` (or from the existing `out[i][j]` for
//!   the `acc` variants). The panel kernel folds every output element's
//!   products sequentially in k order inside its register accumulator, so
//!   it is bit-identical to the scalar [`Mat::naive_matmul`] loop.
//! * `matmul_tn` family: same contract with `a[k][i]` in place of
//!   `a[i][k]`; `k` ascending per output element.
//! * `matmul_nt` family: `out[i][j] = fold_k (acc + a[i][k] * b[j][k])`,
//!   `k` ascending (implemented by transposing `b` once and running the
//!   `matmul` kernel — same per-element order as the naive dot product).
//! * [`Mat::matmul_bias_relu_into`] initializes each output row with the
//!   bias row and *then* accumulates the products, i.e.
//!   `relu(bias[j] + Σ_k …)` with the sum folded left-to-right from
//!   `bias[j]`. Model code uses this bias-first order everywhere (also on
//!   the unfused path) so training and inference agree bitwise.
//! * [`Mat::col_sum_acc_into`] folds rows in ascending row order starting
//!   from the existing accumulator value.
//!
//! Rust never contracts `a * b + c` into an FMA and LLVM never reassociates
//! float adds without fast-math flags, so these orders are stable across
//! optimization levels.
//!
//! The `naive_*` functions are the scalar reference implementations: each
//! output element is a textbook k-ascending dot product, written in
//! element-wise `get`/`set` form. They compute exactly the same per-element
//! addition chains as the pre-optimization kernels (minus the old
//! `if a == 0.0 { continue }` early-exit: that branch pessimized dense
//! hidden-state matmuls, and the sparsity it silently exploited — zero rows
//! of aggregated messages, one-hot-ish embedding rows — is now handled
//! explicitly with gathers and the CSR-compacted message path in the model).
//! Because a strict-FP dot-product reduction cannot be vectorized without
//! reassociation, the references also stay honest scalar baselines for the
//! `tensor_kernels` bench. A proptest suite (`tests/kernel_equivalence.rs`)
//! pins every optimized kernel to its reference bit-for-bit.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// k-loop unroll factor of the rank-update (`matmul_tn`) kernel.
const KU: usize = 4;

/// Narrow column-panel width (axpy bodies and the register-panel cleanup).
const PANEL: usize = 8;

/// Wide column-panel width of the register-accumulator `matmul` kernel.
const PANEL_WIDE: usize = 32;

/// A row-major dense matrix.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Mat {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Row-major storage, `rows * cols` long.
    pub data: Vec<f32>,
}

/// `out[j] += a * b[j]` over a full row, panel-vectorized.
#[inline]
fn axpy1(out: &mut [f32], a: f32, b: &[f32]) {
    debug_assert_eq!(out.len(), b.len());
    for (o, &x) in out.iter_mut().zip(b) {
        *o += a * x;
    }
}

/// Four sequential axpys fused over one pass of the output row:
/// `out[j] += a[0]*b0[j]; out[j] += a[1]*b1[j]; …` — the adds for each `j`
/// happen in index order `0..4`, preserving the k-ascending summation
/// contract while quartering the output-row traffic.
#[inline]
fn axpy4(out: &mut [f32], a: [f32; KU], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) {
    let mut o_it = out.chunks_exact_mut(PANEL);
    let mut b0_it = b0.chunks_exact(PANEL);
    let mut b1_it = b1.chunks_exact(PANEL);
    let mut b2_it = b2.chunks_exact(PANEL);
    let mut b3_it = b3.chunks_exact(PANEL);
    for ((((po, p0), p1), p2), p3) in o_it
        .by_ref()
        .zip(b0_it.by_ref())
        .zip(b1_it.by_ref())
        .zip(b2_it.by_ref())
        .zip(b3_it.by_ref())
    {
        // Fixed trip count: LLVM unrolls and vectorizes this panel.
        for j in 0..PANEL {
            let mut acc = po[j];
            acc += a[0] * p0[j];
            acc += a[1] * p1[j];
            acc += a[2] * p2[j];
            acc += a[3] * p3[j];
            po[j] = acc;
        }
    }
    for ((((o, &x0), &x1), &x2), &x3) in o_it
        .into_remainder()
        .iter_mut()
        .zip(b0_it.remainder())
        .zip(b1_it.remainder())
        .zip(b2_it.remainder())
        .zip(b3_it.remainder())
    {
        let mut acc = *o;
        acc += a[0] * x0;
        acc += a[1] * x1;
        acc += a[2] * x2;
        acc += a[3] * x3;
        *o = acc;
    }
}

/// One register-resident output panel of the `matmul` core:
/// `out_panel[j] += Σ_k a_row[k] * b[k][jp + j]` with the accumulator held
/// in a `[f32; W]` (vector registers) across the whole k loop — one `b` load
/// per product, zero output traffic inside the loop. Adds per element are
/// sequential in ascending k, preserving the summation-order contract.
#[inline]
fn panel_acc<const W: usize>(out_panel: &mut [f32], a_row: &[f32], b: &Mat, jp: usize) {
    let mut acc = [0.0f32; W];
    acc.copy_from_slice(out_panel);
    for (k, &a) in a_row.iter().enumerate() {
        let b_panel = &b.row(k)[jp..jp + W];
        for (o, &x) in acc.iter_mut().zip(b_panel) {
            *o += a * x;
        }
    }
    out_panel.copy_from_slice(&acc);
}

/// `out_row += a_row @ b` for one output row: wide register panels, then
/// narrow ones, then a k-ascending axpy over the sub-[`PANEL`] tail.
#[inline]
fn accum_row(out_row: &mut [f32], a_row: &[f32], b: &Mat) {
    let m = out_row.len();
    let mut jp = 0;
    while jp + PANEL_WIDE <= m {
        panel_acc::<PANEL_WIDE>(&mut out_row[jp..jp + PANEL_WIDE], a_row, b, jp);
        jp += PANEL_WIDE;
    }
    while jp + PANEL <= m {
        panel_acc::<PANEL>(&mut out_row[jp..jp + PANEL], a_row, b, jp);
        jp += PANEL;
    }
    if jp < m {
        let tail = &mut out_row[jp..];
        for (k, &a) in a_row.iter().enumerate() {
            for (o, &x) in tail.iter_mut().zip(&b.row(k)[jp..]) {
                *o += a * x;
            }
        }
    }
}

impl Mat {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Xavier/Glorot-uniform initialized matrix.
    pub fn xavier<R: Rng>(rng: &mut R, rows: usize, cols: usize) -> Self {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        Self { rows, cols, data: (0..rows * cols).map(|_| rng.gen_range(-bound..bound)).collect() }
    }

    /// Build from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Immutable row slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// `self @ other` — (n×k)·(k×m) → n×m.
    pub fn matmul(&self, other: &Mat) -> Mat {
        let mut out = Mat::zeros(self.rows, other.cols);
        self.matmul_acc_into(other, &mut out);
        out
    }

    /// `out = self @ other`, overwriting `out` (which must be n×m).
    pub fn matmul_into(&self, other: &Mat, out: &mut Mat) {
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.cols),
            "matmul_into output shape mismatch"
        );
        out.data.fill(0.0);
        self.matmul_acc_into(other, out);
    }

    /// `out += self @ other` — the tiled core kernel. Per output element the
    /// products are added in ascending-k order starting from the existing
    /// `out` value (see the module doc's summation-order contract).
    pub fn matmul_acc_into(&self, other: &Mat, out: &mut Mat) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.cols),
            "matmul_acc_into output shape mismatch"
        );
        for i in 0..self.rows {
            accum_row(out.row_mut(i), self.row(i), other);
        }
    }

    /// `selfᵀ @ other` — (k×n)ᵀ·(k×m) → n×m. Used for weight gradients.
    pub fn matmul_tn(&self, other: &Mat) -> Mat {
        let mut out = Mat::zeros(self.cols, other.cols);
        self.matmul_tn_acc_into(other, &mut out);
        out
    }

    /// `out = selfᵀ @ other`, overwriting `out`.
    pub fn matmul_tn_into(&self, other: &Mat, out: &mut Mat) {
        assert_eq!(
            (out.rows, out.cols),
            (self.cols, other.cols),
            "matmul_tn_into output shape mismatch"
        );
        out.data.fill(0.0);
        self.matmul_tn_acc_into(other, out);
    }

    /// `out += selfᵀ @ other` — rank-[`KU`] updates; per output element the
    /// additions happen in ascending-k order. Gradient accumulation calls
    /// this directly to skip the temporary + add pass.
    pub fn matmul_tn_acc_into(&self, other: &Mat, out: &mut Mat) {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        assert_eq!(
            (out.rows, out.cols),
            (self.cols, other.cols),
            "matmul_tn_acc_into output shape mismatch"
        );
        let mut k = 0;
        while k + KU <= self.rows {
            let (b0, b1, b2, b3) =
                (other.row(k), other.row(k + 1), other.row(k + 2), other.row(k + 3));
            for i in 0..self.cols {
                let a =
                    [self.get(k, i), self.get(k + 1, i), self.get(k + 2, i), self.get(k + 3, i)];
                axpy4(out.row_mut(i), a, b0, b1, b2, b3);
            }
            k += KU;
        }
        while k < self.rows {
            for i in 0..self.cols {
                axpy1(out.row_mut(i), self.get(k, i), other.row(k));
            }
            k += 1;
        }
    }

    /// `self @ otherᵀ` — (n×k)·(m×k)ᵀ → n×m. Used for input gradients.
    pub fn matmul_nt(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        let t = other.transposed();
        self.matmul(&t)
    }

    /// `out = self @ otherᵀ`, overwriting `out`; transposes `other` into a
    /// scratch buffer so the tiled row kernel applies.
    pub fn matmul_nt_into(&self, other: &Mat, out: &mut Mat, scratch: &mut Scratch) {
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.rows),
            "matmul_nt_into output shape mismatch"
        );
        out.data.fill(0.0);
        self.matmul_nt_acc_into(other, out, scratch);
    }

    /// `out += self @ otherᵀ` via a scratch-buffered transpose of `other`.
    pub fn matmul_nt_acc_into(&self, other: &Mat, out: &mut Mat, scratch: &mut Scratch) {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        let mut t = scratch.take(other.cols, other.rows);
        other.transpose_into(&mut t);
        self.matmul_acc_into(&t, out);
        scratch.put(t);
    }

    /// Fused `relu(self @ w + bias)` (bias is 1×m). See
    /// [`Mat::matmul_bias_relu_into`] for the summation order.
    pub fn matmul_bias_relu(&self, w: &Mat, bias: &Mat) -> Mat {
        let mut out = Mat::zeros(self.rows, w.cols);
        self.matmul_bias_relu_into(w, bias, &mut out);
        out
    }

    /// Fused `out = relu(self @ w + bias)`: each output row is initialized
    /// with the bias row and the products accumulate on top (bias-first
    /// order), then ReLU is applied in place — no intermediate matrix.
    pub fn matmul_bias_relu_into(&self, w: &Mat, bias: &Mat, out: &mut Mat) {
        out.fill_row_broadcast(bias);
        self.matmul_acc_into(w, out);
        out.relu_inplace();
    }

    /// Transpose into a fresh matrix.
    pub fn transposed(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// `out = selfᵀ` (out must be cols×rows).
    pub fn transpose_into(&self, out: &mut Mat) {
        assert_eq!((out.rows, out.cols), (self.cols, self.rows), "transpose shape mismatch");
        for i in 0..self.rows {
            let row = self.row(i);
            for (j, &v) in row.iter().enumerate() {
                out.data[j * self.rows + i] = v;
            }
        }
    }

    /// Reference scalar `self @ other`: every output element is a textbook
    /// k-ascending dot product in element-wise `get`/`set` form. This is the
    /// definitional form of the summation-order contract — the per-element
    /// addition chains are exactly those of the pre-optimization kernel —
    /// and a strict-FP dot-product reduction cannot be vectorized, so it
    /// doubles as the honest scalar baseline in `tensor_kernels`.
    pub fn naive_matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Mat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for j in 0..other.cols {
                let mut acc = 0.0f32;
                for k in 0..self.cols {
                    acc += self.get(i, k) * other.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Reference scalar `selfᵀ @ other` (see [`Mat::naive_matmul`]).
    pub fn naive_matmul_tn(&self, other: &Mat) -> Mat {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        let mut out = Mat::zeros(self.cols, other.cols);
        for i in 0..self.cols {
            for j in 0..other.cols {
                let mut acc = 0.0f32;
                for k in 0..self.rows {
                    acc += self.get(k, i) * other.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Reference scalar `self @ otherᵀ` (see [`Mat::naive_matmul`]).
    pub fn naive_matmul_nt(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        let mut out = Mat::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            for j in 0..other.rows {
                let mut acc = 0.0f32;
                for k in 0..self.cols {
                    acc += self.get(i, k) * other.get(j, k);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Add `other` element-wise in place.
    pub fn add_assign(&mut self, other: &Mat) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Fused `self += s * other` element-wise (one pass, one rounding per
    /// element: `a + s*b`).
    pub fn add_scaled(&mut self, other: &Mat, s: f32) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Add a 1×cols row vector to every row.
    pub fn add_row_broadcast(&mut self, row: &Mat) {
        assert_eq!(row.rows, 1);
        assert_eq!(row.cols, self.cols);
        for r in 0..self.rows {
            for (a, b) in self.row_mut(r).iter_mut().zip(&row.data) {
                *a += b;
            }
        }
    }

    /// Overwrite every row with a 1×cols row vector (bias-first affine
    /// initialization; see [`Mat::matmul_bias_relu_into`]).
    pub fn fill_row_broadcast(&mut self, row: &Mat) {
        assert_eq!(row.rows, 1);
        assert_eq!(row.cols, self.cols);
        for r in 0..self.rows {
            self.row_mut(r).copy_from_slice(&row.data);
        }
    }

    /// Column-wise sum as a 1×cols matrix (bias gradients).
    pub fn col_sum(&self) -> Mat {
        let mut out = Mat::zeros(1, self.cols);
        self.col_sum_acc_into(&mut out);
        out
    }

    /// `out += column-wise sum of self`, rows folded in ascending order.
    pub fn col_sum_acc_into(&self, out: &mut Mat) {
        assert_eq!((out.rows, out.cols), (1, self.cols), "col_sum output shape mismatch");
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
    }

    /// ReLU in place; returns the pre-activation copy for backward.
    pub fn relu_inplace(&mut self) {
        for v in &mut self.data {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }

    /// Element-wise multiply by the ReLU mask of `pre` (1 where `pre` > 0).
    pub fn relu_backward_mask(&mut self, pre: &Mat) {
        assert_eq!((self.rows, self.cols), (pre.rows, pre.cols));
        for (g, &p) in self.data.iter_mut().zip(&pre.data) {
            if p <= 0.0 {
                *g = 0.0;
            }
        }
    }

    /// Scale all elements.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Frobenius norm (for gradient clipping).
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Zero all elements (gradient reset between steps).
    pub fn zero(&mut self) {
        self.data.fill(0.0);
    }
}

/// A pool of reusable `f32` buffers for intermediate matrices.
///
/// Lifetime rules: [`Scratch::take`] hands out a zeroed `Mat` of the
/// requested shape, reusing the capacity of a previously [`Scratch::put`]
/// buffer when one is large enough (most-recently-returned first, so the
/// cache-warm buffer wins). Once the pool has warmed up to a workload's
/// working set, `take`/`put` cycles perform **zero heap allocations** — the
/// [`Scratch::allocations`] counter only advances when a fresh buffer must
/// be created, which is what the steady-state zero-allocation tests assert.
#[derive(Debug, Default)]
pub struct Scratch {
    pool: Vec<Vec<f32>>,
    allocations: usize,
}

impl Scratch {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a zero-filled `rows`×`cols` matrix, reusing pooled capacity when
    /// possible.
    pub fn take(&mut self, rows: usize, cols: usize) -> Mat {
        let need = rows * cols;
        let mut data = match self.pool.iter().rposition(|b| b.capacity() >= need) {
            Some(i) => self.pool.swap_remove(i),
            None => {
                if need > 0 {
                    self.allocations += 1;
                }
                Vec::with_capacity(need)
            }
        };
        data.clear();
        data.resize(need, 0.0);
        Mat { rows, cols, data }
    }

    /// Return a matrix's buffer to the pool.
    pub fn put(&mut self, m: Mat) {
        self.pool.push(m.data);
    }

    /// Number of fresh buffer allocations performed so far. Stable across
    /// repeated same-shape workloads once warmed up.
    pub fn allocations(&self) -> usize {
        self.allocations
    }

    /// Number of buffers currently parked in the pool.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

/// Numerically stable sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable binary cross-entropy from the *logit*, with an
/// optional positive-class weight: `w_pos * y * softplus(-z) + (1-y) *
/// softplus(z)`.
#[inline]
pub fn bce_with_logit(logit: f32, label: bool, pos_weight: f32) -> f32 {
    let softplus = |x: f32| {
        if x > 20.0 {
            x
        } else if x < -20.0 {
            0.0
        } else {
            (1.0 + x.exp()).ln()
        }
    };
    if label {
        pos_weight * softplus(-logit)
    } else {
        softplus(logit)
    }
}

/// Gradient of [`bce_with_logit`] with respect to the logit.
#[inline]
pub fn bce_grad(logit: f32, label: bool, pos_weight: f32) -> f32 {
    let p = sigmoid(logit);
    if label {
        pos_weight * (p - 1.0)
    } else {
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Mat {
        assert_eq!(v.len(), rows * cols);
        Mat { rows, cols, data: v.to_vec() }
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
        assert_eq!(a.naive_matmul(&b).data, c.data);
    }

    #[test]
    fn matmul_tn_equals_transpose_matmul() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]); // 3x2
        let b = m(3, 2, &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]); // 3x2
                                                          // aT (2x3) @ b (3x2) = 2x2
        let c = a.matmul_tn(&b);
        assert_eq!(c.rows, 2);
        assert_eq!(c.cols, 2);
        assert_eq!(c.data, vec![1.0 + 5.0, 3.0 + 5.0, 2.0 + 6.0, 4.0 + 6.0]);
    }

    #[test]
    fn matmul_nt_equals_matmul_with_transpose() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(2, 3, &[1.0, 1.0, 0.0, 0.0, 1.0, 1.0]); // treated as 3x2 transposed
        let c = a.matmul_nt(&b);
        assert_eq!(c.rows, 2);
        assert_eq!(c.cols, 2);
        assert_eq!(c.data, vec![3.0, 5.0, 9.0, 11.0]);
    }

    #[test]
    fn fused_matmul_bias_relu_matches_unfused() {
        let a = m(3, 2, &[1.0, -2.0, 0.5, 4.0, -1.0, -1.0]);
        let w = m(2, 2, &[0.5, -1.0, 2.0, 0.25]);
        let bias = m(1, 2, &[0.1, -0.2]);
        let fused = a.matmul_bias_relu(&w, &bias);
        let mut unfused = Mat::zeros(3, 2);
        unfused.fill_row_broadcast(&bias);
        a.matmul_acc_into(&w, &mut unfused);
        unfused.relu_inplace();
        assert_eq!(fused, unfused);
        assert!(fused.data.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn add_scaled_is_single_rounding_axpy() {
        let mut a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[4.0, -5.0, 6.0]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.data, vec![1.0 + 0.5 * 4.0, 2.0 + 0.5 * -5.0, 3.0 + 0.5 * 6.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transposed();
        assert_eq!((t.rows, t.cols), (3, 2));
        assert_eq!(t.data, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(t.transposed(), a);
    }

    #[test]
    fn scratch_reuses_buffers() {
        let mut s = Scratch::new();
        let a = s.take(4, 8);
        assert_eq!(s.allocations(), 1);
        s.put(a);
        let b = s.take(2, 16); // same size, reuses
        assert_eq!(s.allocations(), 1);
        assert_eq!((b.rows, b.cols), (2, 16));
        assert!(b.data.iter().all(|&v| v == 0.0));
        s.put(b);
        let c = s.take(8, 8); // larger, fresh allocation
        assert_eq!(s.allocations(), 2);
        s.put(c);
        let d = s.take(1, 4); // small, reuses a big buffer
        assert_eq!(s.allocations(), 2);
        s.put(d);
        assert_eq!(s.pooled(), 2);
    }

    #[test]
    fn relu_and_mask() {
        let mut x = m(1, 4, &[-1.0, 2.0, 0.0, -3.0]);
        let pre = x.clone();
        x.relu_inplace();
        assert_eq!(x.data, vec![0.0, 2.0, 0.0, 0.0]);
        let mut g = m(1, 4, &[1.0, 1.0, 1.0, 1.0]);
        g.relu_backward_mask(&pre);
        assert_eq!(g.data, vec![0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn broadcast_and_colsum_are_adjoint() {
        let mut x = Mat::zeros(3, 2);
        let b = m(1, 2, &[1.0, -1.0]);
        x.add_row_broadcast(&b);
        assert_eq!(x.data, vec![1.0, -1.0, 1.0, -1.0, 1.0, -1.0]);
        let s = x.col_sum();
        assert_eq!(s.data, vec![3.0, -3.0]);
    }

    #[test]
    fn sigmoid_stable_at_extremes() {
        assert!((sigmoid(100.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn bce_matches_definition_midrange() {
        let z = 0.3f32;
        let p = sigmoid(z);
        let expect_pos = -(p.ln());
        let expect_neg = -((1.0 - p).ln());
        assert!((bce_with_logit(z, true, 1.0) - expect_pos).abs() < 1e-5);
        assert!((bce_with_logit(z, false, 1.0) - expect_neg).abs() < 1e-5);
    }

    #[test]
    fn bce_grad_is_finite_difference_of_loss() {
        let eps = 1e-3f32;
        for &z in &[-2.0f32, -0.5, 0.0, 0.7, 3.0] {
            for &y in &[true, false] {
                for &w in &[1.0f32, 3.0] {
                    let num = (bce_with_logit(z + eps, y, w) - bce_with_logit(z - eps, y, w))
                        / (2.0 * eps);
                    let ana = bce_grad(z, y, w);
                    assert!((num - ana).abs() < 1e-2, "z={z} y={y} w={w}: {num} vs {ana}");
                }
            }
        }
    }

    #[test]
    fn xavier_is_bounded_and_seeded() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let a = Mat::xavier(&mut rng, 10, 10);
        let bound = (6.0 / 20.0f32).sqrt();
        assert!(a.data.iter().all(|v| v.abs() <= bound));
        let mut rng2 = ChaCha8Rng::seed_from_u64(0);
        let b = Mat::xavier(&mut rng2, 10, 10);
        assert_eq!(a, b);
    }
}
