//! Masked-token pre-training of the assembly encoder.
//!
//! The paper pre-trains a RoBERTa encoder on all (numeric-elided) assembly
//! text in the kernel with a masked-language-model objective, once, and then
//! fine-tunes it during GNN training. Our encoder is a token-embedding table
//! (mean-pooled per block); this module gives it the same lifecycle: it is
//! pre-trained here by predicting a masked token from the mean embedding of
//! its block context, then handed to [`crate::model::PicModel`] whose
//! training continues to update it.

use crate::optim::{Adam, AdamConfig};
use crate::tensor::{Mat, Scratch};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use snowcat_graph::MASK_TOKEN;

/// Pre-training configuration.
#[derive(Debug, Clone, Copy)]
pub struct PretrainConfig {
    /// Embedding dimension (must match the PIC model's hidden size).
    pub dim: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Passes over the block corpus.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// RNG seed (mask positions, init).
    pub seed: u64,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        Self { dim: 32, vocab: snowcat_graph::VOCAB_SIZE, epochs: 3, lr: 5e-2, seed: 0xA5 }
    }
}

/// Pre-training outcome.
#[derive(Debug, Clone)]
pub struct PretrainReport {
    /// Trained token embedding table (vocab × dim).
    pub tok_emb: Mat,
    /// Mean cross-entropy per epoch.
    pub epoch_losses: Vec<f32>,
    /// Final masked-token top-1 accuracy on the corpus.
    pub accuracy: f64,
}

/// Writes `softmax(logits) - onehot(target)` into `grad` and returns the
/// cross-entropy loss. `grad` must have the same length as `logits`.
fn softmax_ce_backward_into(logits: &[f32], target: usize, grad: &mut [f32]) -> f32 {
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for (g, &z) in grad.iter_mut().zip(logits) {
        let e = (z - max).exp();
        *g = e;
        sum += e;
    }
    for g in grad.iter_mut() {
        *g /= sum;
    }
    let loss = -(grad[target].max(1e-12)).ln();
    grad[target] -= 1.0;
    loss
}

/// Pre-train token embeddings on the kernel's block token sequences.
pub fn pretrain(sequences: &[Vec<u32>], cfg: PretrainConfig) -> PretrainReport {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut tok_emb = Mat::xavier(&mut rng, cfg.vocab, cfg.dim);
    let mut dec_w = Mat::xavier(&mut rng, cfg.dim, cfg.vocab);
    let mut dec_b = Mat::zeros(1, cfg.vocab);
    let shapes = [(cfg.vocab, cfg.dim), (cfg.dim, cfg.vocab), (1, cfg.vocab)];
    let mut opt = Adam::new(AdamConfig { lr: cfg.lr, ..Default::default() }, &shapes);

    let usable: Vec<&Vec<u32>> = sequences.iter().filter(|s| s.len() >= 2).collect();
    let mut epoch_losses = Vec::new();
    // Gradient and activation buffers are allocated once and reused for
    // every step; the per-step cost is a zero-fill, not a realloc.
    let mut scratch = Scratch::default();
    let mut g_emb = Mat::zeros(cfg.vocab, cfg.dim);
    let mut g_dw = Mat::zeros(cfg.dim, cfg.vocab);
    let mut g_db = Mat::zeros(1, cfg.vocab);
    let mut ctx = Mat::zeros(1, cfg.dim);
    let mut logits = Mat::zeros(1, cfg.vocab);
    let mut dctx = Mat::zeros(1, cfg.dim);
    for _ in 0..cfg.epochs {
        let mut total = 0.0f32;
        let mut count = 0usize;
        for seq in &usable {
            let mask_at = rng.gen_range(0..seq.len());
            let target = seq[mask_at] as usize;
            // Context = mean embedding with the masked slot replaced by the
            // MASK embedding.
            let inv = 1.0 / seq.len() as f32;
            ctx.zero();
            for (i, &t) in seq.iter().enumerate() {
                let row = tok_emb.row(if i == mask_at { MASK_TOKEN as usize } else { t as usize });
                for (c, &e) in ctx.row_mut(0).iter_mut().zip(row) {
                    *c += e * inv;
                }
            }
            // Logits = bias + ctx @ dec_w, and loss.
            logits.fill_row_broadcast(&dec_b);
            ctx.matmul_acc_into(&dec_w, &mut logits);
            let loss = softmax_ce_backward_into(logits.row(0), target, &mut g_db.data);
            total += loss;
            count += 1;

            // g_dw = ctxᵀ @ dlogits; dctx = dlogits @ dec_wᵀ.
            ctx.matmul_tn_into(&g_db, &mut g_dw);
            g_db.matmul_nt_into(&dec_w, &mut dctx, &mut scratch);
            // Scatter dctx into embeddings.
            g_emb.zero();
            for (i, &t) in seq.iter().enumerate() {
                let row_idx = if i == mask_at { MASK_TOKEN as usize } else { t as usize };
                for (g, &d) in g_emb.row_mut(row_idx).iter_mut().zip(dctx.row(0)) {
                    *g += d * inv;
                }
            }
            opt.step(&mut [&mut tok_emb, &mut dec_w, &mut dec_b], &[&g_emb, &g_dw, &g_db]);
        }
        epoch_losses.push(if count == 0 { 0.0 } else { total / count as f32 });
    }

    // Final accuracy sweep (deterministic mask at position 0).
    let mut correct = 0usize;
    let mut total = 0usize;
    for seq in &usable {
        let target = seq[0] as usize;
        let inv = 1.0 / seq.len() as f32;
        ctx.zero();
        for (i, &t) in seq.iter().enumerate() {
            let row = tok_emb.row(if i == 0 { MASK_TOKEN as usize } else { t as usize });
            for (c, &e) in ctx.row_mut(0).iter_mut().zip(row) {
                *c += e * inv;
            }
        }
        logits.fill_row_broadcast(&dec_b);
        ctx.matmul_acc_into(&dec_w, &mut logits);
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (t, &acc) in logits.row(0).iter().enumerate() {
            if acc > best_v {
                best_v = acc;
                best = t;
            }
        }
        if best == target {
            correct += 1;
        }
        total += 1;
    }
    PretrainReport {
        tok_emb,
        epoch_losses,
        accuracy: if total == 0 { 0.0 } else { correct as f64 / total as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<Vec<u32>> {
        // Highly regular "assembly": token t is always followed by t+1, so a
        // masked token is predictable from context.
        let mut seqs = Vec::new();
        for start in 1u32..40 {
            seqs.push(vec![start, start + 1, start + 2, start + 3]);
        }
        // Repeat to give the optimizer enough steps.
        let mut all = Vec::new();
        for _ in 0..10 {
            all.extend(seqs.iter().cloned());
        }
        all
    }

    #[test]
    fn pretraining_reduces_loss() {
        let cfg = PretrainConfig { dim: 16, epochs: 4, seed: 1, ..Default::default() };
        let report = pretrain(&corpus(), cfg);
        let first = report.epoch_losses.first().copied().unwrap();
        let last = report.epoch_losses.last().copied().unwrap();
        assert!(last < first, "loss did not drop: {first} -> {last}");
    }

    #[test]
    fn pretraining_learns_regular_corpus() {
        let cfg = PretrainConfig { dim: 16, epochs: 8, lr: 5e-2, seed: 2, ..Default::default() };
        let report = pretrain(&corpus(), cfg);
        assert!(
            report.accuracy > 0.3,
            "masked-token accuracy too low on a regular corpus: {}",
            report.accuracy
        );
    }

    #[test]
    fn short_sequences_are_skipped() {
        let cfg = PretrainConfig { dim: 8, epochs: 1, seed: 3, ..Default::default() };
        let report = pretrain(&[vec![5u32]], cfg);
        assert_eq!(report.epoch_losses, vec![0.0]);
    }

    #[test]
    fn output_shape_matches_config() {
        let cfg = PretrainConfig { dim: 12, epochs: 1, seed: 4, ..Default::default() };
        let report = pretrain(&corpus(), cfg);
        assert_eq!(report.tok_emb.rows, cfg.vocab);
        assert_eq!(report.tok_emb.cols, 12);
    }
}
