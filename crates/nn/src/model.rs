//! The PIC (per-interleaving coverage) model: typed-edge relational GNN over
//! CT graphs with a token-embedding assembly encoder.
//!
//! Architecture (mirroring §3.2 of the paper at reproduction scale):
//!
//! * **assembly encoder** — mean of learned token embeddings over the
//!   block's numeric-elided assembly tokens (the BERT-substitute; it is
//!   pre-trained with a masked-token objective in [`crate::asmenc`] and
//!   fine-tuned during GNN training, matching the paper's lifecycle);
//! * **vertex/edge type embeddings** — learnable vectors per vertex type (2)
//!   and per edge type (handled as per-type weight matrices, the R-GCN
//!   formulation of "typed edges into a GCN");
//! * **L message-passing layers** — `h' = relu(W_self·h + Σ_r W_r·mean_r(h) +
//!   b) + h` with mean aggregation per edge type and residual connections
//!   (the paper found deeper GNNs help; depth is configurable);
//! * **head** — per-vertex logistic classifier → covered / not covered.
//!
//! Forward and backward passes are hand-derived (no autograd): activations
//! are cached per layer, gradients flow through the scatter/gather
//! aggregation exactly adjoint to the forward.
//!
//! # Compute path
//!
//! Message passing consumes the per-edge-type CSR adjacency built by
//! [`snowcat_graph::CsrAdj`] — forward aggregation gathers each
//! destination's sources (in edge-list order, so each row matches the flat
//! edge scan bitwise) and the backward pass gathers through the out-CSR
//! instead of scattering. Per edge type, only the *touched* destinations
//! (those with at least one incoming edge of that type — a small fraction
//! of the vertex set per kind) are materialized: aggregation fills a
//! compacted `touched × d` message matrix, the `W_r` transform runs on
//! those rows only, and the result is scatter-added row-wise into the
//! pre-activation. This recovers — explicitly and vectorizably — the
//! sparsity the old `if a == 0.0` kernel branch exploited by accident,
//! while skipping the untouched rows' gather *and* matmul cost entirely.
//!
//! The per-vertex reduction order is fixed and shared by the training and
//! inference paths, which therefore agree bit-for-bit: bias first, then the
//! `W_self` products in ascending-k order (see the summation-order contract
//! in [`crate::tensor`]), then one row-add of each completed per-kind
//! message transform, kinds in ascending kind order.
//!
//! Inference goes through a [`PicSession`], which owns a [`Scratch`] arena
//! and a reusable adjacency: after warmup, [`PicModel::forward_into`]
//! performs **zero heap allocations** per graph.

use crate::tensor::{bce_grad, bce_with_logit, sigmoid, Mat, Scratch};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use snowcat_graph::{CsrAdj, CtGraph, VertKind, NUM_SCHED_MARKS, VOCAB_SIZE};

/// Number of edge types (the paper's five plus shortcut edges).
pub const NUM_EDGE_TYPES: usize = snowcat_graph::NUM_EDGE_KINDS;
/// Number of vertex types (SCB / URB).
pub const NUM_VERT_TYPES: usize = 2;

/// Model hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PicConfig {
    /// Hidden dimension.
    pub hidden: usize,
    /// Message-passing layers.
    pub layers: usize,
    /// Token vocabulary size (fixed by the graph crate's hashing).
    pub vocab: usize,
    /// Positive-class weight in the BCE loss (labels are skewed: most URBs
    /// are not covered).
    pub pos_weight: f32,
    /// Extra loss weight on URB vertices. SCB labels are overwhelmingly
    /// positive and easy; URBs carry the signal the tester actually uses, so
    /// at reproduction scale (thousands of graphs instead of the paper's
    /// millions) they get emphasized in the objective.
    pub urb_weight: f32,
    /// Loss weight of the optional inter-thread-flow head (§6 future work:
    /// "training PIC to predict the inter-thread data flows"). Only used by
    /// [`PicModel::backward_with_flows`].
    pub flow_weight: f32,
    /// Initialization seed.
    pub seed: u64,
    /// Number of per-vertex *static* feature channels consumed from
    /// [`snowcat_graph::StaticFeats`] (alias-class density, must-lockset
    /// size, refined may-race degree). `0` reproduces the pre-static-channel
    /// model exactly; the serde default keeps old JSON configs loading as
    /// channel-free models.
    #[serde(default)]
    pub static_channels: usize,
}

impl Default for PicConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            layers: 5,
            vocab: VOCAB_SIZE,
            pos_weight: 4.0,
            urb_weight: 3.0,
            flow_weight: 1.0,
            seed: 0x91C,
            static_channels: snowcat_graph::STATIC_CHANNELS,
        }
    }
}

/// One message-passing layer's parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerParams {
    /// Self-transform.
    pub w_self: Mat,
    /// Per-edge-type transforms.
    pub w_rel: Vec<Mat>,
    /// Bias.
    pub b: Mat,
}

/// All learnable parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PicParams {
    /// Token embedding table (vocab × hidden) — the assembly encoder.
    pub tok_emb: Mat,
    /// Vertex-type embeddings (2 × hidden).
    pub type_emb: Mat,
    /// Schedule-mark embeddings (3 × hidden): none / yield-source /
    /// resume-target, the §6-style node-type enhancement.
    pub sched_emb: Mat,
    /// Input transform.
    pub w_in: Mat,
    /// Input bias.
    pub b_in: Mat,
    /// Message-passing layers.
    pub layers: Vec<LayerParams>,
    /// Output head weight (hidden × 1).
    pub w_out: Mat,
    /// Output head bias (1 × 1).
    pub b_out: Mat,
    /// Static-channel input projection (`static_channels × hidden`): each
    /// vertex's normalized static features add `Σ_c feat[c] · w_static[c]`
    /// to its input embedding. A `0 × hidden` matrix (channel-free model)
    /// reproduces the pre-static-channel forward bit-for-bit. Kept out of
    /// serde defaults on purpose: binary checkpoints route through
    /// [`crate::binser`], which versions the layout explicitly.
    #[serde(default)]
    pub w_static: Mat,
    /// Flow-head bilinear form (hidden × hidden): scores an inter-thread
    /// potential-flow edge (u→v) as `σ(h_u · W_flow h_v + b_flow)`.
    pub w_flow: Mat,
    /// Flow-head bias (1 × 1).
    pub b_flow: Mat,
}

impl PicParams {
    /// Randomly initialized parameters.
    pub fn init(cfg: &PicConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let d = cfg.hidden;
        Self {
            tok_emb: Mat::xavier(&mut rng, cfg.vocab, d),
            type_emb: Mat::xavier(&mut rng, NUM_VERT_TYPES, d),
            sched_emb: Mat::xavier(&mut rng, NUM_SCHED_MARKS, d),
            w_in: Mat::xavier(&mut rng, d, d),
            b_in: Mat::zeros(1, d),
            layers: (0..cfg.layers)
                .map(|_| LayerParams {
                    w_self: Mat::xavier(&mut rng, d, d),
                    w_rel: (0..NUM_EDGE_TYPES).map(|_| Mat::xavier(&mut rng, d, d)).collect(),
                    b: Mat::zeros(1, d),
                })
                .collect(),
            w_out: Mat::xavier(&mut rng, d, 1),
            b_out: Mat::zeros(1, 1),
            // Drawn from a *separate* stream derived from the seed, so
            // adding (or resizing) the static projection never shifts the
            // draws of any pre-existing tensor: a channel-free init is
            // bit-identical to the pre-static-channel model.
            w_static: {
                let mut srng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x57A7_1CFE);
                Mat::xavier(&mut srng, cfg.static_channels, d)
            },
            w_flow: Mat::xavier(&mut rng, d, d),
            b_flow: Mat::zeros(1, 1),
        }
    }

    /// Zeroed gradients with the same shapes.
    pub fn zeros_like(&self) -> Self {
        let z = |m: &Mat| Mat::zeros(m.rows, m.cols);
        Self {
            tok_emb: z(&self.tok_emb),
            type_emb: z(&self.type_emb),
            sched_emb: z(&self.sched_emb),
            w_in: z(&self.w_in),
            b_in: z(&self.b_in),
            layers: self
                .layers
                .iter()
                .map(|l| LayerParams {
                    w_self: z(&l.w_self),
                    w_rel: l.w_rel.iter().map(z).collect(),
                    b: z(&l.b),
                })
                .collect(),
            w_out: z(&self.w_out),
            b_out: z(&self.b_out),
            w_static: z(&self.w_static),
            w_flow: z(&self.w_flow),
            b_flow: z(&self.b_flow),
        }
    }

    /// Flat view of all tensors, in a stable order (aligned with
    /// [`Self::tensors_mut`] and the optimizer's state).
    pub fn tensors(&self) -> Vec<&Mat> {
        #[allow(clippy::vec_init_then_push)]
        let mut v = vec![&self.tok_emb, &self.type_emb, &self.sched_emb, &self.w_in, &self.b_in];
        for l in &self.layers {
            v.push(&l.w_self);
            for w in &l.w_rel {
                v.push(w);
            }
            v.push(&l.b);
        }
        v.push(&self.w_out);
        v.push(&self.b_out);
        v.push(&self.w_static);
        v.push(&self.w_flow);
        v.push(&self.b_flow);
        v
    }

    /// Flat mutable view, same order as [`Self::tensors`].
    #[allow(clippy::vec_init_then_push)]
    pub fn tensors_mut(&mut self) -> Vec<&mut Mat> {
        let mut v: Vec<&mut Mat> = Vec::new();
        v.push(&mut self.tok_emb);
        v.push(&mut self.type_emb);
        v.push(&mut self.sched_emb);
        v.push(&mut self.w_in);
        v.push(&mut self.b_in);
        for l in &mut self.layers {
            v.push(&mut l.w_self);
            for w in &mut l.w_rel {
                v.push(w);
            }
            v.push(&mut l.b);
        }
        v.push(&mut self.w_out);
        v.push(&mut self.b_out);
        v.push(&mut self.w_static);
        v.push(&mut self.w_flow);
        v.push(&mut self.b_flow);
        v
    }

    /// Shapes of all tensors (for optimizer construction).
    pub fn shapes(&self) -> Vec<(usize, usize)> {
        self.tensors().iter().map(|m| (m.rows, m.cols)).collect()
    }

    /// True when any parameter is NaN or ±Inf. A model in this state must
    /// never be deployed: every forward pass would poison its outputs. The
    /// serving layer's hot-swap gate checks this before installing a
    /// refreshed candidate.
    pub fn has_non_finite(&self) -> bool {
        self.tensors().iter().any(|m| m.data.iter().any(|x| !x.is_finite()))
    }

    /// Zero every tensor (gradient reset).
    pub fn zero_all(&mut self) {
        for t in self.tensors_mut() {
            t.zero();
        }
    }

    /// `self += other` tensor-wise. The data-parallel trainer reduces
    /// per-graph gradient shards through this in a fixed (shard-index)
    /// order, which is what makes training bit-identical across thread
    /// counts.
    pub fn add_assign(&mut self, other: &PicParams) {
        for (t, o) in self.tensors_mut().into_iter().zip(other.tensors()) {
            t.add_assign(o);
        }
    }
}

/// Mean-aggregate `h` along type-`r` edges into the *compacted* message
/// matrix: row `j` of `out` is `mean_{u→v} h[u]` for `v = touched[j]` (see
/// [`snowcat_graph::KindAdj::touched`]). Rows for vertices with no incoming
/// edge of this type — the vast majority, per kind — are simply not
/// materialized, so the downstream `W_r` matmul runs on `touched` rows
/// instead of all `n`.
///
/// A gather per destination through the in-CSR; per-destination accumulation
/// is in edge-list order (the CSR build is stable), so each computed row is
/// bit-identical to scanning the flat edge list. `out` must be a zeroed
/// `touched × hidden` matrix.
fn aggregate_compact_into(adj: &CsrAdj, r: usize, h: &Mat, out: &mut Mat) {
    let ka = adj.kind(r);
    debug_assert_eq!(out.rows, ka.touched().len());
    for (row, &v) in ka.touched().iter().enumerate() {
        let srcs = ka.in_sources(v as usize);
        let out_row = out.row_mut(row);
        for &u in srcs {
            for (o, s) in out_row.iter_mut().zip(h.row(u as usize)) {
                *o += s;
            }
        }
        if srcs.len() > 1 {
            let d = srcs.len() as f32;
            for o in out_row {
                *o /= d;
            }
        }
    }
}

/// Adjoint of [`aggregate_compact_into`]:
/// `grad_h[u] += Σ_{u→v} grad_m[compact(v)] / indeg[v]`, a gather per
/// source through the out-CSR (no scatter, no per-edge copies). `grad_m` is
/// the compacted message gradient (`touched × hidden`).
fn aggregate_backward_into(adj: &CsrAdj, r: usize, grad_m: &Mat, grad_h: &mut Mat) {
    let ka = adj.kind(r);
    for u in 0..grad_h.rows {
        let dsts = ka.out_dests(u);
        if dsts.is_empty() {
            continue;
        }
        let grad_row = grad_h.row_mut(u);
        for &v in dsts {
            let d = (ka.in_degree(v as usize).max(1)) as f32;
            let row = ka.compact_row(v as usize).expect("edge destination must be touched");
            for (o, &g) in grad_row.iter_mut().zip(grad_m.row(row)) {
                *o += g / d;
            }
        }
    }
}

/// Scatter-add the compacted per-kind message transform into `z`:
/// `z[touched[j]] += mw[j]` row-wise, `j` ascending. One (rounded) add per
/// element of the *completed* `W_r`-transformed message row — this row-add
/// order is part of the model's reduction contract (see the module doc) and
/// is shared by the training and inference paths.
fn scatter_add_rows(ka: &snowcat_graph::KindAdj, mw: &Mat, z: &mut Mat) {
    for (row, &v) in ka.touched().iter().enumerate() {
        for (o, &x) in z.row_mut(v as usize).iter_mut().zip(mw.row(row)) {
            *o += x;
        }
    }
}

/// Per-vertex head logit: `b_out + h · w_out`, k ascending.
#[inline]
fn head_logit(h_row: &[f32], w_out: &Mat, b_out: &Mat) -> f32 {
    let mut acc = b_out.data[0];
    for (hv, wv) in h_row.iter().zip(w_out.data.iter()) {
        acc += hv * wv;
    }
    acc
}

/// Cached activations from one forward pass (needed for backward).
pub struct ForwardCache {
    /// CSR adjacency of the graph (built once; backward reuses it).
    adj: CsrAdj,
    x: Mat,            // input features (type emb + asm emb), n×d
    z_in: Mat,         // pre-relu input transform
    layer_h: Vec<Mat>, // input H of each layer
    /// Compacted aggregated messages per layer per kind: `touched_r × d`
    /// (empty matrix for kinds with no edges).
    layer_m: Vec<Vec<Mat>>,
    layer_z: Vec<Mat>, // pre-relu per layer
    h_final: Mat,
    /// Per-vertex logits.
    pub logits: Vec<f32>,
}

/// Reusable per-session state for allocation-free inference: a [`Scratch`]
/// arena for intermediate matrices and a rebuildable [`CsrAdj`].
///
/// Create one per inference session (e.g. per predictor batch) and pass it
/// to [`PicModel::forward_into`] for every graph; after the first
/// warmup graph of each size class, forward passes perform no heap
/// allocation ([`PicSession::allocations`] stops advancing).
#[derive(Debug, Default)]
pub struct PicSession {
    scratch: Scratch,
    adj: CsrAdj,
}

impl PicSession {
    /// A fresh, empty session.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of scratch-buffer heap allocations performed so far (see
    /// [`Scratch::allocations`]) — stable once the session is warmed up.
    pub fn allocations(&self) -> usize {
        self.scratch.allocations()
    }
}

/// The PIC model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PicModel {
    /// Hyperparameters.
    pub cfg: PicConfig,
    /// Learnable parameters.
    pub params: PicParams,
}

impl PicModel {
    /// Freshly initialized model.
    pub fn new(cfg: PicConfig) -> Self {
        let params = PicParams::init(&cfg);
        Self { cfg, params }
    }

    /// Write input features into `x` (n×d, assumed zeroed): vertex-type and
    /// schedule-mark embeddings plus the mean token embedding, all explicit
    /// row gathers — no temporaries, no dense one-hot matmuls.
    fn input_features_into(&self, graph: &CtGraph, x: &mut Mat) {
        for (i, v) in graph.verts.iter().enumerate() {
            let trow = self.params.type_emb.row(match v.kind {
                VertKind::Scb => 0,
                VertKind::Urb => 1,
            });
            let srow = self.params.sched_emb.row(v.sched_mark.index());
            let row = x.row_mut(i);
            for ((o, &t), &m) in row.iter_mut().zip(trow).zip(srow) {
                *o = t + m;
            }
            if !v.tokens.is_empty() {
                let inv = 1.0 / v.tokens.len() as f32;
                for &tok in &v.tokens {
                    let e = self.params.tok_emb.row(tok as usize);
                    for (o, &t) in row.iter_mut().zip(e) {
                        *o += t * inv;
                    }
                }
            }
            if self.cfg.static_channels > 0 {
                let feats = v.static_feats.unit();
                for (c, &f) in feats.iter().take(self.cfg.static_channels).enumerate() {
                    if f != 0.0 {
                        let srow = self.params.w_static.row(c);
                        for (o, &s) in row.iter_mut().zip(srow) {
                            *o += f * s;
                        }
                    }
                }
            }
        }
    }

    fn input_features(&self, graph: &CtGraph) -> Mat {
        let mut x = Mat::zeros(graph.num_verts(), self.cfg.hidden);
        self.input_features_into(graph, &mut x);
        x
    }

    /// Forward pass returning probabilities and the activation cache.
    pub fn forward_cached(&self, graph: &CtGraph) -> (Vec<f32>, ForwardCache) {
        let adj = CsrAdj::build(graph);
        let n = graph.num_verts();
        let d = self.cfg.hidden;
        let x = self.input_features(graph);
        // Input transform, bias-first: z_in = b_in + x @ w_in.
        let mut z_in = Mat::zeros(n, d);
        z_in.fill_row_broadcast(&self.params.b_in);
        x.matmul_acc_into(&self.params.w_in, &mut z_in);
        let mut h = z_in.clone();
        h.relu_inplace();

        let mut layer_h = Vec::with_capacity(self.params.layers.len());
        let mut layer_m = Vec::with_capacity(self.params.layers.len());
        let mut layer_z = Vec::with_capacity(self.params.layers.len());
        for layer in &self.params.layers {
            let h_in = h;
            let mut z = Mat::zeros(n, d);
            z.fill_row_broadcast(&layer.b);
            h_in.matmul_acc_into(&layer.w_self, &mut z);
            let mut ms = Vec::with_capacity(NUM_EDGE_TYPES);
            for (r, w_rel) in layer.w_rel.iter().enumerate() {
                let ka = adj.kind(r);
                let t = ka.touched().len();
                let mut m = Mat::zeros(t, d);
                if t > 0 {
                    aggregate_compact_into(&adj, r, &h_in, &mut m);
                    let mut mw = Mat::zeros(t, d);
                    m.matmul_into(w_rel, &mut mw);
                    scatter_add_rows(ka, &mw, &mut z);
                }
                ms.push(m);
            }
            let mut h_out = z.clone();
            h_out.relu_inplace();
            h_out.add_assign(&h_in); // residual
            layer_h.push(h_in);
            layer_m.push(ms);
            layer_z.push(z);
            h = h_out;
        }

        let logits: Vec<f32> =
            (0..n).map(|i| head_logit(h.row(i), &self.params.w_out, &self.params.b_out)).collect();
        let probs = logits.iter().map(|&z| sigmoid(z)).collect();
        let cache = ForwardCache { adj, x, z_in, layer_h, layer_m, layer_z, h_final: h, logits };
        (probs, cache)
    }

    /// Inference forward pass into a caller-owned probability buffer, using
    /// the session's scratch arena and reusable adjacency. Bit-identical to
    /// [`PicModel::forward_cached`]'s probabilities; performs zero heap
    /// allocations once the session is warmed up.
    pub fn forward_into(&self, graph: &CtGraph, session: &mut PicSession, probs: &mut Vec<f32>) {
        let n = graph.num_verts();
        let d = self.cfg.hidden;
        probs.clear();
        let PicSession { scratch, adj } = session;
        adj.rebuild(graph);
        let mut x = scratch.take(n, d);
        self.input_features_into(graph, &mut x);
        // Fused input transform: h0 = relu(b_in + x @ w_in).
        let mut h = scratch.take(n, d);
        x.matmul_bias_relu_into(&self.params.w_in, &self.params.b_in, &mut h);
        scratch.put(x);

        let mut z = scratch.take(n, d);
        for layer in &self.params.layers {
            z.fill_row_broadcast(&layer.b);
            h.matmul_acc_into(&layer.w_self, &mut z);
            for (r, w_rel) in layer.w_rel.iter().enumerate() {
                let ka = adj.kind(r);
                let t = ka.touched().len();
                if t == 0 {
                    continue;
                }
                let mut m = scratch.take(t, d);
                aggregate_compact_into(adj, r, &h, &mut m);
                let mut mw = scratch.take(t, d);
                m.matmul_into(w_rel, &mut mw);
                scatter_add_rows(ka, &mw, &mut z);
                scratch.put(m);
                scratch.put(mw);
            }
            // h_out = relu(z) + h_in, then the old h buffer becomes next z.
            z.relu_inplace();
            z.add_assign(&h);
            std::mem::swap(&mut h, &mut z);
        }
        scratch.put(z);

        probs.extend(
            (0..n).map(|i| sigmoid(head_logit(h.row(i), &self.params.w_out, &self.params.b_out))),
        );
        session.scratch.put(h);
    }

    /// Forward pass returning only probabilities (one-shot inference; for
    /// repeated inference hold a [`PicSession`] and use
    /// [`PicModel::forward_into`]).
    pub fn forward(&self, graph: &CtGraph) -> Vec<f32> {
        let mut session = PicSession::new();
        let mut probs = Vec::new();
        self.forward_into(graph, &mut session, &mut probs);
        probs
    }

    /// Thresholded prediction.
    pub fn predict(&self, graph: &CtGraph, threshold: f32) -> Vec<bool> {
        self.forward(graph).into_iter().map(|p| p >= threshold).collect()
    }

    /// Backward pass: accumulates gradients into `grads` and returns the
    /// mean per-vertex BCE loss of this graph. Intermediate matrices come
    /// from `scratch`, so a reused arena makes training steps
    /// allocation-free too.
    #[allow(clippy::needless_range_loop)]
    pub fn backward(
        &self,
        graph: &CtGraph,
        cache: &ForwardCache,
        labels: &[bool],
        grads: &mut PicParams,
        scratch: &mut Scratch,
    ) -> f32 {
        let n = graph.num_verts();
        assert_eq!(labels.len(), n, "label count mismatch");
        if n == 0 {
            return 0.0;
        }
        let w = self.cfg.pos_weight;
        let inv_n = 1.0 / n as f32;
        let vw = |i: usize| {
            if graph.verts[i].kind == VertKind::Urb {
                self.cfg.urb_weight
            } else {
                1.0
            }
        };
        let loss: f32 = cache
            .logits
            .iter()
            .zip(labels)
            .enumerate()
            .map(|(i, (&z, &y))| vw(i) * bce_with_logit(z, y, w))
            .sum::<f32>()
            * inv_n;

        // Head gradients.
        let mut dh = scratch.take(n, self.cfg.hidden);
        for i in 0..n {
            let dz = vw(i) * bce_grad(cache.logits[i], labels[i], w) * inv_n;
            grads.b_out.data[0] += dz;
            for (gw, hv) in grads.w_out.data.iter_mut().zip(cache.h_final.row(i)) {
                *gw += dz * hv;
            }
            for (g, wv) in dh.row_mut(i).iter_mut().zip(&self.params.w_out.data) {
                *g += dz * wv;
            }
        }

        self.backward_from_dh(graph, cache, dh, grads, scratch);
        loss
    }

    /// Joint backward for the vertex-coverage head *and* the inter-thread
    /// flow head (§6 future work). `flow_labels` is aligned with
    /// `graph.edges`; only `InterFlow` edges contribute. Returns
    /// `(vertex_loss, flow_loss)`.
    #[allow(clippy::needless_range_loop)]
    pub fn backward_with_flows(
        &self,
        graph: &CtGraph,
        cache: &ForwardCache,
        labels: &[bool],
        flow_labels: &[bool],
        grads: &mut PicParams,
        scratch: &mut Scratch,
    ) -> (f32, f32) {
        let n = graph.num_verts();
        assert_eq!(labels.len(), n, "label count mismatch");
        assert_eq!(flow_labels.len(), graph.edges.len(), "flow label count mismatch");
        if n == 0 {
            return (0.0, 0.0);
        }
        let w = self.cfg.pos_weight;
        let inv_n = 1.0 / n as f32;
        let vw = |i: usize| {
            if graph.verts[i].kind == VertKind::Urb {
                self.cfg.urb_weight
            } else {
                1.0
            }
        };
        let vertex_loss: f32 = cache
            .logits
            .iter()
            .zip(labels)
            .enumerate()
            .map(|(i, (&z, &y))| vw(i) * bce_with_logit(z, y, w))
            .sum::<f32>()
            * inv_n;

        let mut dh = scratch.take(n, self.cfg.hidden);
        for i in 0..n {
            let dz = vw(i) * bce_grad(cache.logits[i], labels[i], w) * inv_n;
            grads.b_out.data[0] += dz;
            for (gw, hv) in grads.w_out.data.iter_mut().zip(cache.h_final.row(i)) {
                *gw += dz * hv;
            }
            for (g, wv) in dh.row_mut(i).iter_mut().zip(&self.params.w_out.data) {
                *g += dz * wv;
            }
        }

        // Flow head: z_e = h_u · (W_flow h_v) + b_flow on InterFlow edges.
        let inter: Vec<usize> = graph
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.kind == snowcat_graph::EdgeKind::InterFlow)
            .map(|(i, _)| i)
            .collect();
        let mut flow_loss = 0.0f32;
        if !inter.is_empty() {
            let inv_e = self.cfg.flow_weight / inter.len() as f32;
            let d = self.cfg.hidden;
            let mut wv_ = scratch.take(1, d);
            let mut wtu = scratch.take(1, d);
            for &ei in &inter {
                let e = graph.edges[ei];
                let (u, v) = (e.from as usize, e.to as usize);
                let hu = cache.h_final.row(u);
                let hv = cache.h_final.row(v);
                // wv_ = W_flow @ h_v ; z = h_u · wv_ + b.
                for (o, wrow) in wv_.data.iter_mut().zip(self.params.w_flow.data.chunks(d)) {
                    let mut acc = 0.0;
                    for (w_, hvv) in wrow.iter().zip(hv) {
                        acc += w_ * hvv;
                    }
                    *o = acc;
                }
                let z: f32 = hu.iter().zip(&wv_.data).map(|(a, b)| a * b).sum::<f32>()
                    + self.params.b_flow.data[0];
                let y = flow_labels[ei];
                flow_loss += bce_with_logit(z, y, 1.0) * inv_e;
                let dz = bce_grad(z, y, 1.0) * inv_e;
                grads.b_flow.data[0] += dz;
                // dW[r][c] += dz * hu[r] * hv[c]; dh_u += dz * W hv; dh_v += dz * Wᵀ hu.
                for r_i in 0..d {
                    let gr = &mut grads.w_flow.data[r_i * d..(r_i + 1) * d];
                    let hur = hu[r_i];
                    for (g, &hvv) in gr.iter_mut().zip(hv) {
                        *g += dz * hur * hvv;
                    }
                }
                for (g, wvv) in dh.row_mut(u).iter_mut().zip(&wv_.data) {
                    *g += dz * wvv;
                }
                // Wᵀ hu
                wtu.data.fill(0.0);
                for r_i in 0..d {
                    let wrow = &self.params.w_flow.data[r_i * d..(r_i + 1) * d];
                    let hur = hu[r_i];
                    for (o, w_) in wtu.data.iter_mut().zip(wrow) {
                        *o += hur * w_;
                    }
                }
                for (g, t) in dh.row_mut(v).iter_mut().zip(&wtu.data) {
                    *g += dz * t;
                }
            }
            scratch.put(wv_);
            scratch.put(wtu);
        }

        self.backward_from_dh(graph, cache, dh, grads, scratch);
        (vertex_loss, flow_loss)
    }

    /// Predicted inter-thread-flow probabilities, aligned with
    /// `graph.edges` (0.0 for non-InterFlow edges).
    pub fn forward_flows(&self, graph: &CtGraph, cache: &ForwardCache) -> Vec<f32> {
        let d = self.cfg.hidden;
        graph
            .edges
            .iter()
            .map(|e| {
                if e.kind != snowcat_graph::EdgeKind::InterFlow {
                    return 0.0;
                }
                let hu = cache.h_final.row(e.from as usize);
                let hv = cache.h_final.row(e.to as usize);
                let mut z = self.params.b_flow.data[0];
                for (r_i, wrow) in (0..d).zip(self.params.w_flow.data.chunks(d)) {
                    let mut acc = 0.0;
                    for (w_, hvv) in wrow.iter().zip(hv) {
                        acc += w_ * hvv;
                    }
                    z += hu[r_i] * acc;
                }
                sigmoid(z)
            })
            .collect()
    }

    /// Shared trunk backward: given the gradient at the final hidden state,
    /// propagate through layers, input transform and embeddings. `dh` must
    /// come from `scratch` (its buffer is returned to the pool).
    fn backward_from_dh(
        &self,
        graph: &CtGraph,
        cache: &ForwardCache,
        mut dh: Mat,
        grads: &mut PicParams,
        scratch: &mut Scratch,
    ) {
        let adj = &cache.adj;
        let (n, d) = (dh.rows, dh.cols);
        let mut dz = scratch.take(n, d);
        let mut dm = scratch.take(n, d);
        // Layers, in reverse. `dh` doubles as dh_in: the residual path means
        // dh_in starts as a copy of dh, so we accumulate into it directly.
        for (li, layer) in self.params.layers.iter().enumerate().rev() {
            let h_in = &cache.layer_h[li];
            let z = &cache.layer_z[li];
            // h_out = relu(z) + h_in  →  dz = dh ⊙ relu'(z); dh_in = dh.
            dz.data.copy_from_slice(&dh.data);
            dz.relu_backward_mask(z);
            // Self path.
            h_in.matmul_tn_acc_into(&dz, &mut grads.layers[li].w_self);
            dz.matmul_nt_acc_into(&layer.w_self, &mut dh, scratch);
            // Relational paths, on the compacted message rows: gather the
            // touched rows of dz, push gradients through the t×d message
            // matmul, then gather back through the out-CSR.
            for (r, w_rel) in layer.w_rel.iter().enumerate() {
                let ka = adj.kind(r);
                let t = ka.touched().len();
                if t == 0 {
                    continue;
                }
                let m = &cache.layer_m[li][r];
                let mut dzc = scratch.take(t, d);
                for (row, &v) in ka.touched().iter().enumerate() {
                    dzc.row_mut(row).copy_from_slice(dz.row(v as usize));
                }
                m.matmul_tn_acc_into(&dzc, &mut grads.layers[li].w_rel[r]);
                let mut dmc = scratch.take(t, d);
                dzc.matmul_nt_into(w_rel, &mut dmc, scratch);
                aggregate_backward_into(adj, r, &dmc, &mut dh);
                scratch.put(dzc);
                scratch.put(dmc);
            }
            dz.col_sum_acc_into(&mut grads.layers[li].b);
        }

        // Input transform: h0 = relu(z_in), z_in = b_in + x @ w_in.
        dz.data.copy_from_slice(&dh.data);
        dz.relu_backward_mask(&cache.z_in);
        cache.x.matmul_tn_acc_into(&dz, &mut grads.w_in);
        dz.col_sum_acc_into(&mut grads.b_in);
        let dx = &mut dm;
        dz.matmul_nt_into(&self.params.w_in, dx, scratch);

        // Embedding gradients: explicit row gathers (grads and the cache are
        // distinct structs, so no per-vertex copies are needed).
        for (i, v) in graph.verts.iter().enumerate() {
            let trow = match v.kind {
                VertKind::Scb => 0,
                VertKind::Urb => 1,
            };
            let dxr = dx.row(i);
            for (g, &dv) in grads.type_emb.row_mut(trow).iter_mut().zip(dxr) {
                *g += dv;
            }
            for (g, &dv) in grads.sched_emb.row_mut(v.sched_mark.index()).iter_mut().zip(dxr) {
                *g += dv;
            }
            if !v.tokens.is_empty() {
                let inv = 1.0 / v.tokens.len() as f32;
                for &tok in &v.tokens {
                    for (g, &dv) in grads.tok_emb.row_mut(tok as usize).iter_mut().zip(dxr) {
                        *g += dv * inv;
                    }
                }
            }
            if self.cfg.static_channels > 0 {
                let feats = v.static_feats.unit();
                for (c, &f) in feats.iter().take(self.cfg.static_channels).enumerate() {
                    if f != 0.0 {
                        for (g, &dv) in grads.w_static.row_mut(c).iter_mut().zip(dxr) {
                            *g += f * dv;
                        }
                    }
                }
            }
        }
        scratch.put(dz);
        scratch.put(dm);
        scratch.put(dh);
    }

    /// Count of parameters (for reporting).
    pub fn num_params(&self) -> usize {
        self.params.tensors().iter().map(|t| t.data.len()).sum()
    }
}

/// The three naive baseline predictors from Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BaselinePredictor {
    /// Predict every block positive ("a simple static analysis approach").
    AllPos,
    /// Fair coin: positive with p = 0.5.
    FairCoin,
    /// Biased coin: positive with the training-set URB base rate.
    BiasedCoin(f64),
}

impl BaselinePredictor {
    /// Produce predictions for a graph.
    pub fn predict<R: Rng>(&self, rng: &mut R, n: usize) -> Vec<bool> {
        match *self {
            BaselinePredictor::AllPos => vec![true; n],
            BaselinePredictor::FairCoin => (0..n).map(|_| rng.gen_bool(0.5)).collect(),
            BaselinePredictor::BiasedCoin(p) => {
                (0..n).map(|_| rng.gen_bool(p.clamp(0.0, 1.0))).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowcat_graph::{Edge, EdgeKind, Vertex};
    use snowcat_kernel::{BlockId, ThreadId};

    fn toy_graph(n: usize) -> CtGraph {
        let verts = (0..n)
            .map(|i| Vertex {
                block: BlockId(i as u32),
                thread: ThreadId((i % 2) as u8),
                kind: if i % 3 == 0 { VertKind::Urb } else { VertKind::Scb },
                sched_mark: if i % 5 == 0 {
                    snowcat_graph::SchedMark::YieldSource
                } else {
                    snowcat_graph::SchedMark::None
                },
                may_race: false,
                tokens: vec![(1 + i as u32 % 50), (1 + (i as u32 * 7) % 50)],
                static_feats: Default::default(),
            })
            .collect();
        let edges = (0..n.saturating_sub(1))
            .map(|i| Edge {
                from: i as u32,
                to: (i + 1) as u32,
                kind: EdgeKind::ALL[i % NUM_EDGE_TYPES],
            })
            .collect();
        CtGraph { verts, edges }
    }

    #[test]
    fn forward_shapes_and_range() {
        let m = PicModel::new(PicConfig::default());
        let g = toy_graph(17);
        let p = m.forward(&g);
        assert_eq!(p.len(), 17);
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn forward_is_deterministic() {
        let m = PicModel::new(PicConfig::default());
        let g = toy_graph(9);
        assert_eq!(m.forward(&g), m.forward(&g));
    }

    #[test]
    fn session_forward_matches_cached_forward_bitwise() {
        let m = PicModel::new(PicConfig::default());
        let mut session = PicSession::new();
        let mut probs = Vec::new();
        for n in [1, 2, 9, 17, 40] {
            let g = toy_graph(n);
            m.forward_into(&g, &mut session, &mut probs);
            let (cached, _) = m.forward_cached(&g);
            assert_eq!(probs, cached, "session vs cached mismatch at n={n}");
        }
    }

    #[test]
    fn session_forward_is_allocation_free_after_warmup() {
        let m = PicModel::new(PicConfig::default());
        let g = toy_graph(33);
        let mut session = PicSession::new();
        let mut probs = Vec::new();
        m.forward_into(&g, &mut session, &mut probs); // warmup
        let warm = session.allocations();
        assert!(warm > 0);
        for _ in 0..5 {
            m.forward_into(&g, &mut session, &mut probs);
        }
        assert_eq!(session.allocations(), warm, "steady-state forward allocated");
        // Smaller graphs fit in the warmed pool too.
        m.forward_into(&toy_graph(8), &mut session, &mut probs);
        assert_eq!(session.allocations(), warm);
    }

    #[test]
    fn csr_aggregate_matches_edge_list_reference() {
        // The CSR gather must reproduce the flat edge-list scan bit-for-bit.
        let g = toy_graph(23);
        let adj = CsrAdj::build(&g);
        let h = Mat::from_fn(23, 5, |r, c| ((r * 31 + c * 7) % 13) as f32 * 0.37 - 1.9);
        for r in 0..NUM_EDGE_TYPES {
            let ka = adj.kind(r);
            let t = ka.touched().len();
            let mut out = Mat::zeros(t, 5);
            aggregate_compact_into(&adj, r, &h, &mut out);
            // Reference: flat edge scan, then mean, over the full vertex set.
            let mut expect = Mat::zeros(23, 5);
            let mut indeg = [0.0f32; 23];
            for e in g.edges.iter().filter(|e| e.kind.index() == r) {
                indeg[e.to as usize] += 1.0;
                for (o, s) in expect.row_mut(e.to as usize).iter_mut().zip(h.row(e.from as usize)) {
                    *o += s;
                }
            }
            for (v, &d) in indeg.iter().enumerate() {
                if d > 1.0 {
                    for o in expect.row_mut(v) {
                        *o /= d;
                    }
                }
            }
            // Compact rows match their vertices; untouched vertices are the
            // ones with an all-zero (never materialized) reference row.
            for (v, &d) in indeg.iter().enumerate() {
                match ka.compact_row(v) {
                    Some(row) => assert_eq!(out.row(row), expect.row(v), "kind {r} vertex {v}"),
                    None => assert_eq!(d, 0.0, "kind {r} vertex {v} untouched but has edges"),
                }
            }
        }
    }

    #[test]
    fn empty_graph_forward_and_backward() {
        let m = PicModel::new(PicConfig::default());
        let g = CtGraph { verts: vec![], edges: vec![] };
        let (p, cache) = m.forward_cached(&g);
        assert!(p.is_empty());
        assert!(m.forward(&g).is_empty());
        let mut grads = m.params.zeros_like();
        let mut scratch = Scratch::new();
        let loss = m.backward(&g, &cache, &[], &mut grads, &mut scratch);
        assert_eq!(loss, 0.0);
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        // Numerical gradient check on a tiny model — the canonical test that
        // the hand-derived backward is correct.
        let cfg =
            PicConfig { hidden: 6, layers: 2, pos_weight: 1.7, seed: 5, ..Default::default() };
        let mut model = PicModel::new(cfg);
        let g = toy_graph(7);
        let labels: Vec<bool> = (0..7).map(|i| i % 2 == 0).collect();

        let loss_of = |m: &PicModel| {
            let (_, cache) = m.forward_cached(&g);
            let mut tmp = m.params.zeros_like();
            let mut scratch = Scratch::new();
            m.backward(&g, &cache, &labels, &mut tmp, &mut scratch)
        };

        let mut grads = model.params.zeros_like();
        let (_, cache) = model.forward_cached(&g);
        let mut scratch = Scratch::new();
        model.backward(&g, &cache, &labels, &mut grads, &mut scratch);

        // Probe a handful of coordinates in several tensors.
        let eps = 3e-3f32;
        let probes: Vec<(usize, usize)> = vec![(0, 0), (2, 1), (3, 0), (4, 3), (12, 2)];
        let flat_grads: Vec<Mat> = grads.tensors().into_iter().cloned().collect();
        for (ti, ei) in probes {
            let shapes = model.params.shapes();
            if ti >= shapes.len() {
                continue;
            }
            let len = shapes[ti].0 * shapes[ti].1;
            let ei = ei.min(len - 1);
            let orig = model.params.tensors()[ti].data[ei];
            model.params.tensors_mut()[ti].data[ei] = orig + eps;
            let lp = loss_of(&model);
            model.params.tensors_mut()[ti].data[ei] = orig - eps;
            let lm = loss_of(&model);
            model.params.tensors_mut()[ti].data[ei] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = flat_grads[ti].data[ei];
            assert!(
                (num - ana).abs() < 2e-2 + 0.15 * num.abs().max(ana.abs()),
                "tensor {ti} elem {ei}: numerical {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn training_reduces_loss_on_fixed_graph() {
        use crate::optim::{Adam, AdamConfig};
        let cfg = PicConfig { hidden: 8, layers: 2, ..Default::default() };
        let mut model = PicModel::new(cfg);
        let g = toy_graph(12);
        let labels: Vec<bool> = (0..12).map(|i| i % 4 == 0).collect();
        let mut opt =
            Adam::new(AdamConfig { lr: 0.02, ..Default::default() }, &model.params.shapes());
        let mut scratch = Scratch::new();
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            let (_, cache) = model.forward_cached(&g);
            let mut grads = model.params.zeros_like();
            let loss = model.backward(&g, &cache, &labels, &mut grads, &mut scratch);
            let gl: Vec<&Mat> = grads.tensors();
            let mut pl = model.params.tensors_mut();
            opt.step(&mut pl, &gl);
            if first.is_none() {
                first = Some(loss);
            }
            last = loss;
        }
        assert!(last < first.unwrap() * 0.5, "loss {first:?} -> {last}");
    }

    #[test]
    fn flow_head_gradient_check() {
        // Finite-difference check of the flow-head backward (trunk included).
        let cfg = PicConfig {
            hidden: 6,
            layers: 1,
            pos_weight: 1.0,
            urb_weight: 1.0,
            flow_weight: 1.3,
            seed: 9,
            ..Default::default()
        };
        let mut model = PicModel::new(cfg);
        let g = {
            let mut g = toy_graph(8);
            // Force a couple of InterFlow edges.
            g.edges.push(Edge { from: 0, to: 5, kind: EdgeKind::InterFlow });
            g.edges.push(Edge { from: 3, to: 6, kind: EdgeKind::InterFlow });
            g
        };
        let labels: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
        let flows: Vec<bool> =
            g.edges.iter().map(|e| e.kind == EdgeKind::InterFlow && e.from == 0).collect();

        let loss_of = |m: &PicModel| {
            let (_, cache) = m.forward_cached(&g);
            let mut tmp = m.params.zeros_like();
            let mut scratch = Scratch::new();
            let (lv, lf) =
                m.backward_with_flows(&g, &cache, &labels, &flows, &mut tmp, &mut scratch);
            lv + lf
        };
        let mut grads = model.params.zeros_like();
        let (_, cache) = model.forward_cached(&g);
        let mut scratch = Scratch::new();
        model.backward_with_flows(&g, &cache, &labels, &flows, &mut grads, &mut scratch);
        let flat: Vec<Mat> = grads.tensors().into_iter().cloned().collect();
        let eps = 3e-3f32;
        // Probe the flow tensors (last two) and a trunk tensor.
        let n_tensors = model.params.shapes().len();
        for (ti, ei) in [(n_tensors - 2, 3usize), (n_tensors - 1, 0), (2, 1), (4, 2)] {
            let len = {
                let sh = model.params.shapes()[ti];
                sh.0 * sh.1
            };
            let ei = ei.min(len - 1);
            let orig = model.params.tensors()[ti].data[ei];
            model.params.tensors_mut()[ti].data[ei] = orig + eps;
            let lp = loss_of(&model);
            model.params.tensors_mut()[ti].data[ei] = orig - eps;
            let lm = loss_of(&model);
            model.params.tensors_mut()[ti].data[ei] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = flat[ti].data[ei];
            assert!(
                (num - ana).abs() < 2e-2 + 0.15 * num.abs().max(ana.abs()),
                "flow grad tensor {ti} elem {ei}: numerical {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn forward_flows_scores_only_interflow_edges() {
        let m = PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() });
        let mut g = toy_graph(6);
        g.edges.push(Edge { from: 1, to: 4, kind: EdgeKind::InterFlow });
        let (_, cache) = m.forward_cached(&g);
        let flows = m.forward_flows(&g, &cache);
        assert_eq!(flows.len(), g.edges.len());
        for (e, &f) in g.edges.iter().zip(&flows) {
            if e.kind == EdgeKind::InterFlow {
                assert!((0.0..=1.0).contains(&f) && f > 0.0);
            } else {
                assert_eq!(f, 0.0);
            }
        }
    }

    /// `toy_graph` with deterministic non-zero static feature channels.
    fn toy_graph_with_feats(n: usize) -> CtGraph {
        let mut g = toy_graph(n);
        for (i, v) in g.verts.iter_mut().enumerate() {
            v.static_feats = snowcat_graph::StaticFeats {
                alias_density: (i % 7) as u8,
                lockset: (i % 3) as u8,
                race_degree: (i % 11) as u8,
            };
        }
        g
    }

    #[test]
    fn zero_channel_model_ignores_static_feats() {
        // A channel-free model (old checkpoints decode to this) must be
        // bit-identical on feature-stamped and feature-less graphs.
        let m = PicModel::new(PicConfig { static_channels: 0, ..Default::default() });
        assert_eq!(m.params.w_static.rows, 0);
        assert_eq!(m.forward(&toy_graph_with_feats(13)), m.forward(&toy_graph(13)));
    }

    #[test]
    fn static_channels_change_predictions() {
        let m = PicModel::new(PicConfig::default());
        assert_eq!(m.cfg.static_channels, snowcat_graph::STATIC_CHANNELS);
        assert_ne!(m.forward(&toy_graph_with_feats(13)), m.forward(&toy_graph(13)));
    }

    #[test]
    fn static_channels_do_not_shift_existing_init_draws() {
        // The w_static draw comes from a derived stream: every other tensor
        // of a channel-full init must equal its channel-free counterpart.
        let with = PicParams::init(&PicConfig::default());
        let without = PicParams::init(&PicConfig { static_channels: 0, ..Default::default() });
        assert_eq!(with.tok_emb, without.tok_emb);
        assert_eq!(with.w_in, without.w_in);
        assert_eq!(with.layers, without.layers);
        assert_eq!(with.w_out, without.w_out);
        assert_eq!(with.w_flow, without.w_flow);
    }

    #[test]
    fn static_channel_gradient_check() {
        // Finite-difference check of the w_static backward path.
        let cfg =
            PicConfig { hidden: 6, layers: 2, pos_weight: 1.4, seed: 3, ..Default::default() };
        let mut model = PicModel::new(cfg);
        let g = toy_graph_with_feats(9);
        let labels: Vec<bool> = (0..9).map(|i| i % 2 == 0).collect();
        let loss_of = |m: &PicModel| {
            let (_, cache) = m.forward_cached(&g);
            let mut tmp = m.params.zeros_like();
            let mut scratch = Scratch::new();
            m.backward(&g, &cache, &labels, &mut tmp, &mut scratch)
        };
        let mut grads = model.params.zeros_like();
        let (_, cache) = model.forward_cached(&g);
        let mut scratch = Scratch::new();
        model.backward(&g, &cache, &labels, &mut grads, &mut scratch);
        let flat: Vec<Mat> = grads.tensors().into_iter().cloned().collect();
        // w_static sits third from the end (before w_flow, b_flow).
        let ti = model.params.shapes().len() - 3;
        assert_eq!(model.params.tensors()[ti].rows, snowcat_graph::STATIC_CHANNELS);
        let eps = 3e-3f32;
        for ei in 0..model.params.shapes()[ti].0 * model.params.shapes()[ti].1 {
            let orig = model.params.tensors()[ti].data[ei];
            model.params.tensors_mut()[ti].data[ei] = orig + eps;
            let lp = loss_of(&model);
            model.params.tensors_mut()[ti].data[ei] = orig - eps;
            let lm = loss_of(&model);
            model.params.tensors_mut()[ti].data[ei] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = flat[ti].data[ei];
            assert!(
                (num - ana).abs() < 2e-2 + 0.15 * num.abs().max(ana.abs()),
                "w_static elem {ei}: numerical {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn baselines_predict_expected_shapes() {
        use rand::SeedableRng;
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(BaselinePredictor::AllPos.predict(&mut rng, 5), vec![true; 5]);
        let biased: Vec<bool> = BaselinePredictor::BiasedCoin(0.0).predict(&mut rng, 100);
        assert!(biased.iter().all(|&b| !b));
        let fair: Vec<bool> = BaselinePredictor::FairCoin.predict(&mut rng, 1000);
        let pos = fair.iter().filter(|&&b| b).count();
        assert!((300..700).contains(&pos));
    }

    #[test]
    fn tensors_and_tensors_mut_are_aligned() {
        let m = PicModel::new(PicConfig::default());
        let shapes_a = m.params.shapes();
        let mut p = m.params.clone();
        let shapes_b: Vec<(usize, usize)> =
            p.tensors_mut().iter().map(|t| (t.rows, t.cols)).collect();
        assert_eq!(shapes_a, shapes_b);
    }

    #[test]
    fn params_add_assign_sums_tensorwise() {
        let m = PicModel::new(PicConfig { hidden: 4, layers: 1, ..Default::default() });
        let mut a = m.params.zeros_like();
        let mut b = m.params.zeros_like();
        a.w_in.data[0] = 1.5;
        b.w_in.data[0] = 2.0;
        b.b_out.data[0] = -1.0;
        a.add_assign(&b);
        assert_eq!(a.w_in.data[0], 3.5);
        assert_eq!(a.b_out.data[0], -1.0);
    }
}
