//! The Adam optimizer with global-norm gradient clipping.

use crate::tensor::Mat;

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Epsilon for numerical stability.
    pub eps: f32,
    /// Global gradient-norm clip (0 disables).
    pub clip: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self { lr: 1e-2, beta1: 0.9, beta2: 0.999, eps: 1e-8, clip: 5.0 }
    }
}

/// Adam state for a list of parameter tensors (aligned by index).
#[derive(Debug)]
pub struct Adam {
    cfg: AdamConfig,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    t: u64,
}

/// Complete serializable Adam state: hyperparameters, both moment vectors
/// and the step counter. Restoring a snapshot and continuing produces the
/// exact update stream of the uninterrupted optimizer — the moments are
/// `f32` and the counter is integral, so the round-trip is bit-exact.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamSnapshot {
    /// Hyperparameters at capture time.
    pub cfg: AdamConfig,
    /// First-moment estimates, aligned with the parameter tensors.
    pub m: Vec<Vec<f32>>,
    /// Second-moment estimates, aligned with the parameter tensors.
    pub v: Vec<Vec<f32>>,
    /// Completed step count (drives bias correction).
    pub t: u64,
}

impl Adam {
    /// Initialize for parameters with the given shapes.
    pub fn new(cfg: AdamConfig, shapes: &[(usize, usize)]) -> Self {
        Self {
            cfg,
            m: shapes.iter().map(|&(r, c)| vec![0.0; r * c]).collect(),
            v: shapes.iter().map(|&(r, c)| vec![0.0; r * c]).collect(),
            t: 0,
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.cfg.lr
    }

    /// Override the learning rate (fine-tuning uses a smaller one).
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }

    /// Capture the complete optimizer state.
    pub fn snapshot(&self) -> AdamSnapshot {
        AdamSnapshot { cfg: self.cfg, m: self.m.clone(), v: self.v.clone(), t: self.t }
    }

    /// Rebuild an optimizer at a captured state.
    pub fn from_snapshot(s: &AdamSnapshot) -> Self {
        Self { cfg: s.cfg, m: s.m.clone(), v: s.v.clone(), t: s.t }
    }

    /// Apply one update step. `params` and `grads` must be aligned with the
    /// shapes passed at construction.
    ///
    /// # Panics
    /// Panics on any shape mismatch — that is always a harness bug.
    pub fn step(&mut self, params: &mut [&mut Mat], grads: &[&Mat]) {
        assert_eq!(params.len(), self.m.len(), "param count mismatch");
        assert_eq!(grads.len(), self.m.len(), "grad count mismatch");
        self.t += 1;
        // Global-norm clipping.
        let mut scale = 1.0f32;
        if self.cfg.clip > 0.0 {
            let total: f32 = grads.iter().map(|g| g.data.iter().map(|x| x * x).sum::<f32>()).sum();
            let norm = total.sqrt();
            if norm > self.cfg.clip {
                scale = self.cfg.clip / norm;
            }
        }
        let bc1 = 1.0 - self.cfg.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.cfg.beta2.powi(self.t as i32);
        for ((p, g), (m, v)) in
            params.iter_mut().zip(grads).zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            assert_eq!(p.data.len(), g.data.len(), "tensor shape mismatch");
            assert_eq!(p.data.len(), m.len(), "state shape mismatch");
            // Lockstep iterators keep the inner loop free of bounds checks
            // so it autovectorizes.
            for (((pi, &gd), mi), vi) in
                p.data.iter_mut().zip(&g.data).zip(m.iter_mut()).zip(v.iter_mut())
            {
                let gi = gd * scale;
                *mi = self.cfg.beta1 * *mi + (1.0 - self.cfg.beta1) * gi;
                *vi = self.cfg.beta2 * *vi + (1.0 - self.cfg.beta2) * gi * gi;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                *pi -= self.cfg.lr * mhat / (vhat.sqrt() + self.cfg.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimizes_quadratic() {
        // minimize f(x) = (x - 3)^2 over a 1x1 "matrix".
        let mut x = Mat::zeros(1, 1);
        let mut opt = Adam::new(AdamConfig { lr: 0.1, ..AdamConfig::default() }, &[(1, 1)]);
        for _ in 0..500 {
            let g = Mat { rows: 1, cols: 1, data: vec![2.0 * (x.data[0] - 3.0)] };
            opt.step(&mut [&mut x], &[&g]);
        }
        assert!((x.data[0] - 3.0).abs() < 1e-2, "x = {}", x.data[0]);
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut x = Mat::zeros(1, 2);
        let cfg = AdamConfig { lr: 1.0, clip: 1.0, ..AdamConfig::default() };
        let mut opt = Adam::new(cfg, &[(1, 2)]);
        let g = Mat { rows: 1, cols: 2, data: vec![1e6, -1e6] };
        opt.step(&mut [&mut x], &[&g]);
        // Post-clip gradient has norm 1; Adam's first step is ~lr in each
        // coordinate direction.
        assert!(x.data.iter().all(|v| v.abs() <= 1.1));
    }

    #[test]
    fn snapshot_resumes_update_stream_bit_exactly() {
        let grad = |x: &Mat| Mat {
            rows: 1,
            cols: 3,
            data: x.data.iter().map(|v| 2.0 * (v - 1.0)).collect(),
        };
        let mut x = Mat::zeros(1, 3);
        let mut opt = Adam::new(AdamConfig { lr: 0.05, ..AdamConfig::default() }, &[(1, 3)]);
        for _ in 0..7 {
            let g = grad(&x);
            opt.step(&mut [&mut x], &[&g]);
        }
        let snap = opt.snapshot();
        let mut y = x.clone();
        let mut opt2 = Adam::from_snapshot(&snap);
        assert_eq!(opt2.snapshot(), snap);
        for _ in 0..9 {
            let g = grad(&x);
            opt.step(&mut [&mut x], &[&g]);
            let g = grad(&y);
            opt2.step(&mut [&mut y], &[&g]);
        }
        let bits = |m: &Mat| m.data.iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
        assert_eq!(bits(&x), bits(&y));
    }

    #[test]
    #[should_panic(expected = "param count mismatch")]
    fn misaligned_params_panic() {
        let mut x = Mat::zeros(1, 1);
        let mut opt = Adam::new(AdamConfig::default(), &[(1, 1), (2, 2)]);
        let g = Mat::zeros(1, 1);
        opt.step(&mut [&mut x], &[&g]);
    }
}
