//! # snowcat-nn — the learned coverage predictor, from scratch
//!
//! A small, dependency-free (beyond `rand`/`serde`) neural stack implementing
//! the paper's PIC model family:
//!
//! * [`tensor`] — dense `f32` matrices and stable sigmoid/BCE primitives,
//! * [`optim`] — Adam with global-norm clipping,
//! * [`asmenc`] — masked-token pre-training for the assembly encoder (the
//!   RoBERTa substitute; see DESIGN.md for the substitution argument),
//! * [`model`] — the relational message-passing GNN with per-edge-type
//!   weights, residual layers, a per-vertex sigmoid head, and hand-derived
//!   backward passes (validated by finite-difference tests),
//! * [`metrics`] — precision/recall/F1/F2/accuracy/balanced-accuracy/AP,
//! * [`train`] — training loop with best-validation-AP checkpointing,
//!   F2-based threshold tuning, evaluation helpers and JSON checkpoints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asmenc;
pub mod metrics;
pub mod model;
pub mod optim;
pub mod tensor;
pub mod train;

pub use asmenc::{pretrain, PretrainConfig, PretrainReport};
pub use metrics::{average_precision, Confusion, MeanMetrics, PerGraphAverager};
pub use model::{BaselinePredictor, PicConfig, PicModel, PicParams};
pub use optim::{Adam, AdamConfig};
pub use tensor::Mat;
pub use train::{
    evaluate, evaluate_pooled, evaluate_predictions, evaluate_predictions_pooled,
    flow_average_precision, train, train_with_flows, tune_threshold_f2, tune_threshold_f2_pooled,
    urb_average_precision, Checkpoint, FlowLabeledGraph, LabeledGraph, TrainConfig, TrainReport,
};
