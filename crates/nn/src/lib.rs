//! # snowcat-nn — the learned coverage predictor, from scratch
//!
//! A small, dependency-free (beyond `rand`/`serde`) neural stack implementing
//! the paper's PIC model family:
//!
//! * [`tensor`] — dense `f32` matrices with register-tiled, autovectorizer-
//!   friendly kernels, fused ops, a documented summation-order contract,
//!   `naive_*` reference kernels, and the [`tensor::Scratch`] arena for
//!   allocation-free steady-state compute,
//! * [`optim`] — Adam with global-norm clipping,
//! * [`asmenc`] — masked-token pre-training for the assembly encoder (the
//!   RoBERTa substitute; see DESIGN.md for the substitution argument),
//! * [`model`] — the relational message-passing GNN with per-edge-type
//!   weights, residual layers, a per-vertex sigmoid head, hand-derived
//!   backward passes (validated by finite-difference tests), CSR-based
//!   message passing and the [`model::PicSession`] zero-allocation
//!   inference path,
//! * [`metrics`] — precision/recall/F1/F2/accuracy/balanced-accuracy/AP,
//! * [`train`] — data-parallel training loop (bit-identical across thread
//!   counts) with best-validation-AP checkpointing, F2-based threshold
//!   tuning, evaluation helpers, panic-contained workers and the
//!   [`train::EpochRunner`] seam supervised trainers build on,
//! * [`binser`] — bit-exact little-endian binary serialization for model
//!   and optimizer state (IEEE bit patterns, no decimal round-trip).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asmenc;
pub mod binser;
pub mod metrics;
pub mod model;
pub mod optim;
pub mod tensor;
pub mod train;

pub use asmenc::{pretrain, PretrainConfig, PretrainReport};
pub use binser::{
    decode_model_checkpoint, decode_model_checkpoint_legacy, encode_model_checkpoint, BinError,
    Dec, Enc,
};
pub use metrics::{average_precision, Confusion, MeanMetrics, PerGraphAverager};
pub use model::{BaselinePredictor, PicConfig, PicModel, PicParams, PicSession};
pub use optim::{Adam, AdamConfig, AdamSnapshot};
pub use tensor::{Mat, Scratch};
pub use train::{
    dataset_fingerprint, evaluate, evaluate_pooled, evaluate_predictions,
    evaluate_predictions_pooled, flow_average_precision, train, train_with_flows,
    tune_threshold_f2, tune_threshold_f2_pooled, urb_average_precision, Checkpoint, EpochError,
    EpochFault, EpochOutcome, EpochRunner, FlowLabeledGraph, LabeledGraph, StepInfo, StepObserver,
    TrainConfig, TrainReport,
};
