//! Binary-classification metrics used throughout the evaluation:
//! precision, recall, F1/F2, accuracy, balanced accuracy (Table 1) and
//! average precision (model selection, §5.1.2).

use serde::{Deserialize, Serialize};

/// Confusion-matrix counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Accumulate predictions against labels.
    pub fn from_preds(preds: &[bool], labels: &[bool]) -> Self {
        assert_eq!(preds.len(), labels.len());
        let mut c = Confusion::default();
        for (&p, &y) in preds.iter().zip(labels) {
            match (p, y) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Merge another confusion matrix.
    pub fn add(&mut self, o: &Confusion) {
        self.tp += o.tp;
        self.fp += o.fp;
        self.tn += o.tn;
        self.fn_ += o.fn_;
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Precision = TP / (TP + FP); 0 when no positive predictions.
    pub fn precision(&self) -> f64 {
        let d = self.tp + self.fp;
        if d == 0 {
            0.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// Recall = TP / (TP + FN); 1 when there are no positives to find.
    pub fn recall(&self) -> f64 {
        let d = self.tp + self.fn_;
        if d == 0 {
            1.0
        } else {
            self.tp as f64 / d as f64
        }
    }

    /// True-negative rate; 1 when there are no negatives.
    pub fn specificity(&self) -> f64 {
        let d = self.tn + self.fp;
        if d == 0 {
            1.0
        } else {
            self.tn as f64 / d as f64
        }
    }

    /// F-beta score.
    pub fn fbeta(&self, beta: f64) -> f64 {
        let p = self.precision();
        let r = self.recall();
        let b2 = beta * beta;
        if p == 0.0 && r == 0.0 {
            0.0
        } else {
            (1.0 + b2) * p * r / (b2 * p + r)
        }
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        self.fbeta(1.0)
    }

    /// F2 score (recall-weighted; the paper tunes its threshold on F2).
    pub fn f2(&self) -> f64 {
        self.fbeta(2.0)
    }

    /// Plain accuracy.
    pub fn accuracy(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / t as f64
        }
    }

    /// Balanced accuracy = (recall + specificity) / 2.
    pub fn balanced_accuracy(&self) -> f64 {
        0.5 * (self.recall() + self.specificity())
    }
}

/// Average Precision: mean precision over recall steps, computed by sorting
/// scores descending and averaging precision at each true-positive rank.
pub fn average_precision(scores: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let total_pos = labels.iter().filter(|&&l| l).count();
    if total_pos == 0 {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal));
    let mut tp = 0usize;
    let mut ap = 0.0f64;
    for (rank, &i) in order.iter().enumerate() {
        if labels[i] {
            tp += 1;
            ap += tp as f64 / (rank + 1) as f64;
        }
    }
    ap / total_pos as f64
}

/// Metric row averaged over graphs (the paper's Table 1 reports "average
/// metrics across all graphs").
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MeanMetrics {
    /// Mean F1 across graphs.
    pub f1: f64,
    /// Mean precision.
    pub precision: f64,
    /// Mean recall.
    pub recall: f64,
    /// Mean accuracy.
    pub accuracy: f64,
    /// Mean balanced accuracy.
    pub balanced_accuracy: f64,
    /// Graphs averaged over.
    pub graphs: usize,
}

/// Accumulates per-graph confusions and averages the derived metrics.
#[derive(Debug, Default, Clone)]
pub struct PerGraphAverager {
    sums: MeanMetrics,
}

impl PerGraphAverager {
    /// Fresh averager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one graph's confusion (skips graphs with no samples).
    pub fn push(&mut self, c: &Confusion) {
        if c.total() == 0 {
            return;
        }
        self.sums.f1 += c.f1();
        self.sums.precision += c.precision();
        self.sums.recall += c.recall();
        self.sums.accuracy += c.accuracy();
        self.sums.balanced_accuracy += c.balanced_accuracy();
        self.sums.graphs += 1;
    }

    /// The averaged row.
    pub fn finish(&self) -> MeanMetrics {
        let n = self.sums.graphs.max(1) as f64;
        MeanMetrics {
            f1: self.sums.f1 / n,
            precision: self.sums.precision / n,
            recall: self.sums.recall / n,
            accuracy: self.sums.accuracy / n,
            balanced_accuracy: self.sums.balanced_accuracy / n,
            graphs: self.sums.graphs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_from_preds() {
        let c = Confusion::from_preds(&[true, true, false, false], &[true, false, true, false]);
        assert_eq!(c, Confusion { tp: 1, fp: 1, tn: 1, fn_: 1 });
        assert!((c.precision() - 0.5).abs() < 1e-12);
        assert!((c.recall() - 0.5).abs() < 1e-12);
        assert!((c.f1() - 0.5).abs() < 1e-12);
        assert!((c.accuracy() - 0.5).abs() < 1e-12);
        assert!((c.balanced_accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn f2_weights_recall() {
        // High recall, low precision → F2 > F1.
        let c = Confusion { tp: 9, fp: 18, tn: 0, fn_: 1 };
        assert!(c.f2() > c.f1());
    }

    #[test]
    fn perfect_predictor_metrics() {
        let c = Confusion::from_preds(&[true, false, true], &[true, false, true]);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.balanced_accuracy(), 1.0);
    }

    #[test]
    fn average_precision_perfect_ranking_is_one() {
        let scores = [0.9f32, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert!((average_precision(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn average_precision_worst_ranking() {
        let scores = [0.9f32, 0.8, 0.2, 0.1];
        let labels = [false, false, true, true];
        // Precision at ranks 3 and 4: 1/3 and 2/4; AP = (1/3 + 1/2)/2.
        let expect = (1.0 / 3.0 + 0.5) / 2.0;
        assert!((average_precision(&scores, &labels) - expect).abs() < 1e-12);
    }

    #[test]
    fn averager_means_per_graph() {
        let mut avg = PerGraphAverager::new();
        avg.push(&Confusion { tp: 1, fp: 0, tn: 1, fn_: 0 }); // perfect
        avg.push(&Confusion { tp: 0, fp: 1, tn: 0, fn_: 1 }); // all wrong
        let m = avg.finish();
        assert_eq!(m.graphs, 2);
        assert!((m.accuracy - 0.5).abs() < 1e-12);
    }

    #[test]
    fn skewed_labels_make_all_pos_accuracy_tiny() {
        // The Table 1 phenomenon: with ~1% positives, All-pos accuracy ≈ 1%.
        let labels: Vec<bool> = (0..1000).map(|i| i % 100 == 0).collect();
        let preds = vec![true; 1000];
        let c = Confusion::from_preds(&preds, &labels);
        assert!(c.accuracy() < 0.02);
        assert_eq!(c.recall(), 1.0);
        assert!(c.precision() < 0.02);
    }
}
