//! Training, evaluation, threshold tuning and checkpointing for PIC models.
//!
//! Training is data-parallel: each minibatch is sharded contiguously across
//! [`TrainConfig::threads`] scoped worker threads, every graph's gradient
//! lands in its own pooled [`PicParams`] buffer, and the buffers are reduced
//! in fixed (shard-index) order. Because the reduction order never depends
//! on the thread count, training with `threads = N` is **bit-identical** to
//! `threads = 1` — the single-threaded path runs the exact same per-graph
//! structure, just without spawning.

use crate::metrics::{average_precision, Confusion, MeanMetrics, PerGraphAverager};
use crate::model::{PicConfig, PicModel, PicParams, PicSession};
use crate::optim::{Adam, AdamConfig};
use crate::tensor::{Mat, Scratch};
use rand::{seq::SliceRandom, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use snowcat_graph::CtGraph;

/// A borrowed (graph, labels) training/evaluation pair.
pub type LabeledGraph<'a> = (&'a CtGraph, &'a [bool]);

/// A borrowed (graph, vertex labels, edge flow labels) triple for joint
/// coverage + inter-thread-flow training (§6 future work).
pub type FlowLabeledGraph<'a> = (&'a CtGraph, &'a [bool], &'a [bool]);

/// Training configuration.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Epochs over the training set.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Graphs per optimizer step (gradient accumulation).
    pub batch: usize,
    /// Shuffling seed.
    pub seed: u64,
    /// Worker threads per minibatch. Results are bit-identical for any
    /// value (fixed-order gradient reduction); values above the batch size
    /// are clamped.
    pub threads: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 5, lr: 2e-3, batch: 4, seed: 0x7EA1, threads: 1 }
    }
}

/// Pooled per-graph gradient buffers, scratch arenas and loss slots, sized
/// to the largest batch seen and reused for the whole training run — no
/// per-step allocation once warmed up.
#[derive(Default)]
struct ShardPool {
    grads: Vec<PicParams>,
    scratch: Vec<Scratch>,
    losses: Vec<f32>,
}

impl ShardPool {
    fn ensure(&mut self, model: &PicModel, n: usize) {
        while self.grads.len() < n {
            self.grads.push(model.params.zeros_like());
            self.scratch.push(Scratch::new());
        }
        if self.losses.len() < n {
            self.losses.resize(n, 0.0);
        }
    }
}

/// Render a panic payload as text (worker panics become typed errors).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Compute each batch item's gradient into its own pooled buffer —
/// contiguously sharded across `threads` scoped workers — then reduce the
/// buffers into `grads` in ascending item order and return the loss sum
/// (also folded in item order). The per-item work and both folds are
/// independent of the sharding, which is the determinism contract.
///
/// A panicking worker is contained (on both the threaded and the inline
/// path) and surfaced as `Err(panic message)` with `grads` untouched, so a
/// caller can fail the step without poisoning the process.
fn batch_gradients<T: Sync>(
    model: &PicModel,
    batch: &[T],
    pool: &mut ShardPool,
    threads: usize,
    grads: &mut PicParams,
    per_item: &(dyn Fn(&PicModel, &T, &mut PicParams, &mut Scratch) -> f32 + Sync),
) -> Result<f32, String> {
    pool.ensure(model, batch.len());
    let gbufs = &mut pool.grads[..batch.len()];
    let scratches = &mut pool.scratch[..batch.len()];
    let losses = &mut pool.losses[..batch.len()];
    let threads = threads.clamp(1, batch.len().max(1));
    if threads == 1 {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for (((item, gb), sc), l) in
                batch.iter().zip(gbufs.iter_mut()).zip(scratches.iter_mut()).zip(losses.iter_mut())
            {
                gb.zero_all();
                *l = per_item(model, item, gb, sc);
            }
        }))
        .map_err(panic_message)?;
    } else {
        let chunk = batch.len().div_ceil(threads);
        crossbeam::thread::scope(|s| {
            for (((items, gbs), scs), ls) in batch
                .chunks(chunk)
                .zip(gbufs.chunks_mut(chunk))
                .zip(scratches.chunks_mut(chunk))
                .zip(losses.chunks_mut(chunk))
            {
                s.spawn(move |_| {
                    for (((item, gb), sc), l) in
                        items.iter().zip(gbs.iter_mut()).zip(scs.iter_mut()).zip(ls.iter_mut())
                    {
                        gb.zero_all();
                        *l = per_item(model, item, gb, sc);
                    }
                });
            }
        })
        .map_err(panic_message)?;
    }
    for gb in pool.grads[..batch.len()].iter() {
        grads.add_assign(gb);
    }
    Ok(pool.losses[..batch.len()].iter().sum())
}

/// Result of a training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Validation AP (URBs only) per epoch, if a validation set was given.
    pub val_ap: Vec<f64>,
    /// Wall-clock seconds spent training.
    pub train_seconds: f64,
}

/// Per-step observation handed to an epoch observer after gradients are
/// reduced and **before** the optimizer applies them — an observer that
/// rejects the step therefore keeps poisoned gradients out of the model.
#[derive(Debug, Clone, Copy)]
pub struct StepInfo {
    /// Optimizer step index within the epoch (0-based).
    pub step: usize,
    /// Sum of per-graph losses over the batch.
    pub loss_sum: f32,
    /// Graphs in the batch.
    pub batch_len: usize,
    /// Global L2 norm of the accumulated (un-scaled) batch gradient. Only
    /// computed when an observer is installed — the plain training path
    /// pays nothing for it.
    pub grad_norm: f32,
}

/// Why an epoch stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EpochError {
    /// A training worker panicked; the panic was contained and the
    /// optimizer state is unchanged for this step.
    WorkerPanicked {
        /// The worker's panic message.
        message: String,
    },
    /// The step observer rejected the step (anomaly guard tripped) before
    /// the optimizer applied its gradients.
    Aborted {
        /// Optimizer step index that was rejected.
        step: usize,
        /// Observer-provided reason.
        reason: String,
    },
}

/// A per-step observer hook: sees each [`StepInfo`] after gradient
/// reduction and may reject the step with a reason, aborting the epoch
/// (see [`EpochError::Aborted`]).
pub type StepObserver<'a> = &'a mut dyn FnMut(&StepInfo) -> Result<(), String>;

impl std::fmt::Display for EpochError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EpochError::WorkerPanicked { message } => {
                write!(f, "training worker panicked: {message}")
            }
            EpochError::Aborted { step, reason } => {
                write!(f, "epoch aborted at step {step}: {reason}")
            }
        }
    }
}

impl std::error::Error for EpochError {}

/// Deterministic fault injected into an epoch's first optimizer step —
/// the seam the robustness harness uses to prove the anomaly guards fire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EpochFault {
    /// Overwrite one accumulated gradient entry with NaN.
    NanGrads,
    /// Scale the accumulated gradients by this factor (norm spike).
    SpikeGrads(f32),
    /// Make the first batch's workers panic.
    WorkerPanic,
}

/// What a completed epoch produced.
#[derive(Debug, Clone, Copy)]
pub struct EpochOutcome {
    /// Mean per-graph training loss.
    pub mean_loss: f32,
    /// Graphs processed (empty graphs are skipped).
    pub graphs: usize,
    /// Optimizer steps taken.
    pub steps: usize,
}

/// Reusable epoch executor: owns the pooled gradient buffers and runs one
/// epoch of the exact loop [`train`] uses — same batch assembly, same
/// reduction order, same float operation sequence — so a supervised trainer
/// built on it is bit-identical to the plain path when no observer or fault
/// intervenes.
pub struct EpochRunner {
    pool: ShardPool,
    grads: PicParams,
}

impl EpochRunner {
    /// Allocate buffers shaped like `model`'s parameters.
    pub fn new(model: &PicModel) -> Self {
        Self { pool: ShardPool::default(), grads: model.params.zeros_like() }
    }

    /// Run one coverage-training epoch over `train[order]`.
    #[allow(clippy::too_many_arguments)]
    pub fn run_coverage_epoch(
        &mut self,
        model: &mut PicModel,
        train: &[LabeledGraph<'_>],
        order: &[usize],
        batch: usize,
        threads: usize,
        opt: &mut Adam,
        fault: Option<EpochFault>,
        observer: Option<StepObserver<'_>>,
    ) -> Result<EpochOutcome, EpochError> {
        let per_item = |m: &PicModel,
                        &(g, labels): &LabeledGraph<'_>,
                        gb: &mut PicParams,
                        sc: &mut Scratch| {
            let (_, cache) = m.forward_cached(g);
            m.backward(g, &cache, labels, gb, sc)
        };
        self.run_epoch_generic(
            model,
            train,
            order,
            batch,
            threads,
            opt,
            fault,
            observer,
            &|&(g, _)| g.num_verts() == 0,
            &per_item,
        )
    }

    /// Run one joint coverage+flow training epoch over `train[order]`.
    #[allow(clippy::too_many_arguments)]
    pub fn run_flow_epoch(
        &mut self,
        model: &mut PicModel,
        train: &[FlowLabeledGraph<'_>],
        order: &[usize],
        batch: usize,
        threads: usize,
        opt: &mut Adam,
        fault: Option<EpochFault>,
        observer: Option<StepObserver<'_>>,
    ) -> Result<EpochOutcome, EpochError> {
        let per_item = |m: &PicModel,
                        &(g, labels, flows): &FlowLabeledGraph<'_>,
                        gb: &mut PicParams,
                        sc: &mut Scratch| {
            let (_, cache) = m.forward_cached(g);
            let (lv, lf) = m.backward_with_flows(g, &cache, labels, flows, gb, sc);
            lv + lf
        };
        self.run_epoch_generic(
            model,
            train,
            order,
            batch,
            threads,
            opt,
            fault,
            observer,
            &|&(g, _, _)| g.num_verts() == 0,
            &per_item,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn run_epoch_generic<T: Sync + Copy>(
        &mut self,
        model: &mut PicModel,
        train: &[T],
        order: &[usize],
        batch: usize,
        threads: usize,
        opt: &mut Adam,
        fault: Option<EpochFault>,
        mut observer: Option<StepObserver<'_>>,
        is_empty: &dyn Fn(&T) -> bool,
        per_item: &(dyn Fn(&PicModel, &T, &mut PicParams, &mut Scratch) -> f32 + Sync),
    ) -> Result<EpochOutcome, EpochError> {
        let mut batch_buf: Vec<T> = Vec::with_capacity(batch);
        let mut total_loss = 0.0f32;
        let mut graphs = 0usize;
        let mut steps = 0usize;
        for &i in order {
            let item = train[i];
            if is_empty(&item) {
                continue;
            }
            batch_buf.push(item);
            if batch_buf.len() == batch {
                total_loss += self.step_batch(
                    model,
                    &batch_buf,
                    threads,
                    opt,
                    steps,
                    fault,
                    &mut observer,
                    per_item,
                )?;
                graphs += batch_buf.len();
                steps += 1;
                batch_buf.clear();
            }
        }
        if !batch_buf.is_empty() {
            total_loss += self.step_batch(
                model,
                &batch_buf,
                threads,
                opt,
                steps,
                fault,
                &mut observer,
                per_item,
            )?;
            graphs += batch_buf.len();
            steps += 1;
            batch_buf.clear();
        }
        Ok(EpochOutcome {
            mean_loss: if graphs == 0 { 0.0 } else { total_loss / graphs as f32 },
            graphs,
            steps,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn step_batch<T: Sync>(
        &mut self,
        model: &mut PicModel,
        batch_buf: &[T],
        threads: usize,
        opt: &mut Adam,
        step: usize,
        fault: Option<EpochFault>,
        observer: &mut Option<StepObserver<'_>>,
        per_item: &(dyn Fn(&PicModel, &T, &mut PicParams, &mut Scratch) -> f32 + Sync),
    ) -> Result<f32, EpochError> {
        let inject = if step == 0 { fault } else { None };
        let loss_sum = if matches!(inject, Some(EpochFault::WorkerPanic)) {
            let panicking = |_m: &PicModel, _item: &T, _gb: &mut PicParams, _sc: &mut Scratch| {
                panic!("injected training-worker panic")
            };
            batch_gradients(model, batch_buf, &mut self.pool, threads, &mut self.grads, &panicking)
        } else {
            batch_gradients(model, batch_buf, &mut self.pool, threads, &mut self.grads, per_item)
        }
        .map_err(|message| EpochError::WorkerPanicked { message })?;
        match inject {
            Some(EpochFault::NanGrads) => {
                if let Some(t) = self.grads.tensors_mut().into_iter().next() {
                    if let Some(x) = t.data.first_mut() {
                        *x = f32::NAN;
                    }
                }
            }
            Some(EpochFault::SpikeGrads(factor)) => {
                for t in self.grads.tensors_mut() {
                    t.scale(factor);
                }
            }
            _ => {}
        }
        if let Some(obs) = observer {
            let sq: f32 = self
                .grads
                .tensors()
                .iter()
                .map(|t| t.data.iter().map(|x| x * x).sum::<f32>())
                .sum();
            let info =
                StepInfo { step, loss_sum, batch_len: batch_buf.len(), grad_norm: sq.sqrt() };
            if let Err(reason) = obs(&info) {
                // Leave the buffers clean for the next (retried) epoch; the
                // model and optimizer were not touched by this step.
                self.grads.zero_all();
                return Err(EpochError::Aborted { step, reason });
            }
        }
        apply(opt, model, &mut self.grads, batch_buf.len());
        Ok(loss_sum)
    }
}

/// Order-insensitive-to-nothing structural fingerprint of a training set:
/// FNV-1a folded over example count, per-graph vertex/edge counts, vertex
/// tokens and positive-label indices. Resume validation compares it to the
/// one stored in the training checkpoint — continuing a run on different
/// data cannot silently produce a "resumed" model.
pub fn dataset_fingerprint(examples: &[LabeledGraph<'_>]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mix = |h: &mut u64, x: u64| {
        for b in x.to_le_bytes() {
            *h ^= u64::from(b);
            *h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    mix(&mut h, examples.len() as u64);
    for &(g, labels) in examples {
        mix(&mut h, g.num_verts() as u64);
        mix(&mut h, g.edges.len() as u64);
        for v in &g.verts {
            mix(&mut h, u64::from(v.block.0));
            for &t in &v.tokens {
                mix(&mut h, u64::from(t));
            }
        }
        for (i, &l) in labels.iter().enumerate() {
            if l {
                mix(&mut h, i as u64);
            }
        }
    }
    h
}

/// Train `model` on `train`, tracking URB average precision on `valid` after
/// each epoch. Keeps the checkpoint (parameters) with the best validation AP
/// — the paper's model-selection rule ("chose the model training checkpoint
/// with the highest Average Precision … over URBs only").
pub fn train(
    model: &mut PicModel,
    train: &[LabeledGraph<'_>],
    valid: &[LabeledGraph<'_>],
    cfg: TrainConfig,
) -> TrainReport {
    let started = std::time::Instant::now();
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut opt =
        Adam::new(AdamConfig { lr: cfg.lr, ..Default::default() }, &model.params.shapes());
    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut epoch_losses = Vec::new();
    let mut val_ap = Vec::new();
    let mut best_ap = f64::NEG_INFINITY;
    let mut best_params: Option<PicParams> = None;

    let mut runner = EpochRunner::new(model);
    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let outcome = runner
            .run_coverage_epoch(model, train, &order, cfg.batch, cfg.threads, &mut opt, None, None)
            .unwrap_or_else(|e| panic!("{e}"));
        epoch_losses.push(outcome.mean_loss);

        if !valid.is_empty() {
            let ap = urb_average_precision(model, valid);
            val_ap.push(ap);
            if ap > best_ap {
                best_ap = ap;
                best_params = Some(model.params.clone());
            }
        }
    }
    if let Some(p) = best_params {
        model.params = p;
    }
    TrainReport { epoch_losses, val_ap, train_seconds: started.elapsed().as_secs_f64() }
}

fn apply(opt: &mut Adam, model: &mut PicModel, grads: &mut PicParams, batch: usize) {
    let scale = 1.0 / batch as f32;
    for t in grads.tensors_mut() {
        t.scale(scale);
    }
    {
        let gl: Vec<&Mat> = grads.tensors();
        let mut pl = model.params.tensors_mut();
        opt.step(&mut pl, &gl);
    }
    grads.zero_all();
}

/// Jointly train the coverage head and the inter-thread-flow head.
/// Model selection still follows validation URB AP (coverage remains the
/// primary task; the flow head is auxiliary).
pub fn train_with_flows(
    model: &mut PicModel,
    train: &[FlowLabeledGraph<'_>],
    valid: &[LabeledGraph<'_>],
    cfg: TrainConfig,
) -> TrainReport {
    let started = std::time::Instant::now();
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut opt =
        Adam::new(AdamConfig { lr: cfg.lr, ..Default::default() }, &model.params.shapes());
    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut epoch_losses = Vec::new();
    let mut val_ap = Vec::new();
    let mut best_ap = f64::NEG_INFINITY;
    let mut best_params: Option<PicParams> = None;

    let mut runner = EpochRunner::new(model);
    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let outcome = runner
            .run_flow_epoch(model, train, &order, cfg.batch, cfg.threads, &mut opt, None, None)
            .unwrap_or_else(|e| panic!("{e}"));
        epoch_losses.push(outcome.mean_loss);
        if !valid.is_empty() {
            let ap = urb_average_precision(model, valid);
            val_ap.push(ap);
            if ap > best_ap {
                best_ap = ap;
                best_params = Some(model.params.clone());
            }
        }
    }
    if let Some(p) = best_params {
        model.params = p;
    }
    TrainReport { epoch_losses, val_ap, train_seconds: started.elapsed().as_secs_f64() }
}

/// Average precision of the flow head over InterFlow edges pooled across
/// graphs.
pub fn flow_average_precision(model: &PicModel, examples: &[FlowLabeledGraph<'_>]) -> f64 {
    let mut scores = Vec::new();
    let mut labels = Vec::new();
    for (g, _, flows) in examples {
        if g.num_verts() == 0 {
            continue;
        }
        let (_, cache) = model.forward_cached(g);
        let probs = model.forward_flows(g, &cache);
        for (i, e) in g.edges.iter().enumerate() {
            if e.kind == snowcat_graph::EdgeKind::InterFlow {
                scores.push(probs[i]);
                labels.push(flows[i]);
            }
        }
    }
    average_precision(&scores, &labels)
}

/// Average precision over URB vertices pooled across graphs.
pub fn urb_average_precision(model: &PicModel, examples: &[LabeledGraph<'_>]) -> f64 {
    let mut scores = Vec::new();
    let mut labels = Vec::new();
    let mut session = PicSession::new();
    let mut probs = Vec::new();
    for (g, y) in examples {
        if g.num_verts() == 0 {
            continue;
        }
        model.forward_into(g, &mut session, &mut probs);
        for i in g.urb_indices() {
            scores.push(probs[i]);
            labels.push(y[i]);
        }
    }
    average_precision(&scores, &labels)
}

/// Tune the classification threshold to maximize mean per-graph F2 on URBs
/// over the validation set (§5.1.2: "chose the threshold with the highest
/// mean F2 score on graph URBs").
pub fn tune_threshold_f2(model: &PicModel, valid: &[LabeledGraph<'_>]) -> f32 {
    let mut cached: Vec<(Vec<f32>, Vec<usize>, &[bool])> = Vec::new();
    for (g, y) in valid {
        if g.num_verts() == 0 {
            continue;
        }
        cached.push((model.forward(g), g.urb_indices(), y));
    }
    let mut best_t = 0.5f32;
    let mut best_f2 = f64::NEG_INFINITY;
    for step in 1..20 {
        let t = step as f32 * 0.05;
        let mut avg = 0.0f64;
        let mut n = 0usize;
        for (probs, urbs, labels) in &cached {
            if urbs.is_empty() {
                continue;
            }
            let preds: Vec<bool> = urbs.iter().map(|&i| probs[i] >= t).collect();
            let truth: Vec<bool> = urbs.iter().map(|&i| labels[i]).collect();
            avg += Confusion::from_preds(&preds, &truth).f2();
            n += 1;
        }
        if n > 0 {
            let mean = avg / n as f64;
            if mean > best_f2 {
                best_f2 = mean;
                best_t = t;
            }
        }
    }
    best_t
}

/// Tune the classification threshold to maximize *pooled* F2 on URBs over
/// the validation set. At reproduction scale CT graphs are small (tens of
/// vertices, often zero positive URBs), which degenerates per-graph F2; the
/// pooled variant is the faithful analogue of the paper's tuning on its
/// ~10k-vertex graphs and is what the pipeline uses.
pub fn tune_threshold_f2_pooled(model: &PicModel, valid: &[LabeledGraph<'_>]) -> f32 {
    let mut scores = Vec::new();
    let mut labels = Vec::new();
    let mut session = PicSession::new();
    let mut probs = Vec::new();
    for (g, y) in valid {
        if g.num_verts() == 0 {
            continue;
        }
        model.forward_into(g, &mut session, &mut probs);
        for i in g.urb_indices() {
            scores.push(probs[i]);
            labels.push(y[i]);
        }
    }
    let mut best_t = 0.5f32;
    let mut best_f2 = f64::NEG_INFINITY;
    for step in 1..20 {
        let t = step as f32 * 0.05;
        let preds: Vec<bool> = scores.iter().map(|&p| p >= t).collect();
        let f2 = Confusion::from_preds(&preds, &labels).f2();
        if f2 > best_f2 {
            best_f2 = f2;
            best_t = t;
        }
    }
    best_t
}

/// Pooled (micro) confusion over all vertices of all graphs at a threshold.
/// With `urb_only`, restricted to URB vertices.
pub fn evaluate_pooled(
    model: &PicModel,
    examples: &[LabeledGraph<'_>],
    threshold: f32,
    urb_only: bool,
) -> Confusion {
    let mut c = Confusion::default();
    let mut session = PicSession::new();
    let mut probs = Vec::new();
    for (g, y) in examples {
        if g.num_verts() == 0 {
            continue;
        }
        model.forward_into(g, &mut session, &mut probs);
        let idx: Vec<usize> = if urb_only { g.urb_indices() } else { (0..g.num_verts()).collect() };
        let preds: Vec<bool> = idx.iter().map(|&i| probs[i] >= threshold).collect();
        let truth: Vec<bool> = idx.iter().map(|&i| y[i]).collect();
        c.add(&Confusion::from_preds(&preds, &truth));
    }
    c
}

/// Pooled confusion for an arbitrary prediction function (baseline rows).
pub fn evaluate_predictions_pooled<F>(
    examples: &[LabeledGraph<'_>],
    urb_only: bool,
    mut predict: F,
) -> Confusion
where
    F: FnMut(&CtGraph) -> Vec<bool>,
{
    let mut c = Confusion::default();
    for (g, y) in examples {
        if g.num_verts() == 0 {
            continue;
        }
        let preds_all = predict(g);
        let idx: Vec<usize> = if urb_only { g.urb_indices() } else { (0..g.num_verts()).collect() };
        let preds: Vec<bool> = idx.iter().map(|&i| preds_all[i]).collect();
        let truth: Vec<bool> = idx.iter().map(|&i| y[i]).collect();
        c.add(&Confusion::from_preds(&preds, &truth));
    }
    c
}

/// Evaluate a model at a threshold, per-graph-averaged (Table 1 style).
/// With `urb_only`, metrics are restricted to URB vertices.
pub fn evaluate(
    model: &PicModel,
    examples: &[LabeledGraph<'_>],
    threshold: f32,
    urb_only: bool,
) -> MeanMetrics {
    let mut avg = PerGraphAverager::new();
    let mut session = PicSession::new();
    let mut probs = Vec::new();
    for (g, y) in examples {
        if g.num_verts() == 0 {
            continue;
        }
        model.forward_into(g, &mut session, &mut probs);
        let idx: Vec<usize> = if urb_only { g.urb_indices() } else { (0..g.num_verts()).collect() };
        if idx.is_empty() {
            continue;
        }
        let preds: Vec<bool> = idx.iter().map(|&i| probs[i] >= threshold).collect();
        let truth: Vec<bool> = idx.iter().map(|&i| y[i]).collect();
        avg.push(&Confusion::from_preds(&preds, &truth));
    }
    avg.finish()
}

/// Evaluate an arbitrary prediction function (used for the Table 1 baseline
/// rows, which do not involve the model).
pub fn evaluate_predictions<F>(
    examples: &[LabeledGraph<'_>],
    urb_only: bool,
    mut predict: F,
) -> MeanMetrics
where
    F: FnMut(&CtGraph) -> Vec<bool>,
{
    let mut avg = PerGraphAverager::new();
    for (g, y) in examples {
        if g.num_verts() == 0 {
            continue;
        }
        let preds_all = predict(g);
        let idx: Vec<usize> = if urb_only { g.urb_indices() } else { (0..g.num_verts()).collect() };
        if idx.is_empty() {
            continue;
        }
        let preds: Vec<bool> = idx.iter().map(|&i| preds_all[i]).collect();
        let truth: Vec<bool> = idx.iter().map(|&i| y[i]).collect();
        avg.push(&Confusion::from_preds(&preds, &truth));
    }
    avg.finish()
}

/// A serializable model checkpoint: config, parameters, tuned threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Model hyperparameters.
    pub cfg: PicConfig,
    /// Trained parameters.
    pub params: PicParams,
    /// Tuned classification threshold.
    pub threshold: f32,
    /// Free-form provenance tag (e.g. `"PIC-5"`, `"PIC-6.ft.sml"`).
    pub name: String,
}

impl Checkpoint {
    /// Bundle a trained model.
    pub fn new(model: &PicModel, threshold: f32, name: &str) -> Self {
        Self { cfg: model.cfg, params: model.params.clone(), threshold, name: name.to_string() }
    }

    /// Restore the model.
    pub fn restore(&self) -> PicModel {
        PicModel { cfg: self.cfg, params: self.params.clone() }
    }

    /// Validate that this snapshot is deployable: the threshold must be a
    /// probability and every parameter finite. The serving layer calls this
    /// before hot-swapping a refreshed model in; loaders can call it after
    /// deserialization to catch corrupted-but-well-framed snapshots.
    pub fn sanity_check(&self) -> Result<(), String> {
        if !self.threshold.is_finite() || !(0.0..=1.0).contains(&self.threshold) {
            return Err(format!("threshold {} is not a probability", self.threshold));
        }
        if self.params.has_non_finite() {
            return Err("model parameters contain NaN or infinite values".into());
        }
        Ok(())
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> serde_json::Result<Self> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowcat_graph::{Edge, EdgeKind, VertKind, Vertex};
    use snowcat_kernel::{BlockId, ThreadId};

    /// Synthetic task: a URB vertex is covered iff it has an incoming
    /// Schedule edge — learnable purely from structure.
    fn synthetic_example(seed: u64, n: usize) -> (CtGraph, Vec<bool>) {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let verts: Vec<Vertex> = (0..n)
            .map(|i| Vertex {
                block: BlockId(i as u32),
                thread: ThreadId((i % 2) as u8),
                kind: if i % 2 == 0 { VertKind::Scb } else { VertKind::Urb },
                sched_mark: snowcat_graph::SchedMark::None,
                may_race: false,
                tokens: vec![1 + rng.gen_range(0..40u32)],
                static_feats: Default::default(),
            })
            .collect();
        let mut edges = Vec::new();
        let mut labels = vec![false; n];
        for i in 0..n {
            if i + 1 < n {
                edges.push(Edge { from: i as u32, to: (i + 1) as u32, kind: EdgeKind::ScbFlow });
            }
            if verts[i].kind == VertKind::Urb {
                if rng.gen_bool(0.3) {
                    let src = rng.gen_range(0..n as u32);
                    edges.push(Edge { from: src, to: i as u32, kind: EdgeKind::Schedule });
                    labels[i] = true;
                }
            } else {
                labels[i] = true; // SCBs covered
            }
        }
        (CtGraph { verts, edges }, labels)
    }

    fn dataset(seeds: std::ops::Range<u64>) -> Vec<(CtGraph, Vec<bool>)> {
        seeds.map(|s| synthetic_example(s, 24)).collect()
    }

    #[test]
    fn model_learns_structural_rule() {
        let train_data = dataset(0..60);
        let valid_data = dataset(100..110);
        let train_refs: Vec<LabeledGraph> =
            train_data.iter().map(|(g, y)| (g, y.as_slice())).collect();
        let valid_refs: Vec<LabeledGraph> =
            valid_data.iter().map(|(g, y)| (g, y.as_slice())).collect();
        let mut model = PicModel::new(PicConfig {
            hidden: 16,
            layers: 2,
            pos_weight: 1.0,
            seed: 3,
            ..Default::default()
        });
        let before = urb_average_precision(&model, &valid_refs);
        let report = train(
            &mut model,
            &train_refs,
            &valid_refs,
            TrainConfig { epochs: 8, lr: 1e-2, batch: 4, seed: 1, ..Default::default() },
        );
        let after = urb_average_precision(&model, &valid_refs);
        assert!(
            after > before.max(0.6),
            "model failed to learn: AP {before} -> {after}, losses {:?}",
            report.epoch_losses
        );
    }

    #[test]
    fn threshold_tuning_returns_sane_value() {
        let data = dataset(0..10);
        let refs: Vec<LabeledGraph> = data.iter().map(|(g, y)| (g, y.as_slice())).collect();
        let model = PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() });
        let t = tune_threshold_f2(&model, &refs);
        assert!((0.05..=0.95).contains(&t));
    }

    #[test]
    fn evaluate_handles_empty_and_urb_only() {
        let data = dataset(0..5);
        let refs: Vec<LabeledGraph> = data.iter().map(|(g, y)| (g, y.as_slice())).collect();
        let model = PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() });
        let m_all = evaluate(&model, &refs, 0.5, false);
        let m_urb = evaluate(&model, &refs, 0.5, true);
        assert_eq!(m_all.graphs, 5);
        assert_eq!(m_urb.graphs, 5);
    }

    #[test]
    fn checkpoint_roundtrip_preserves_predictions() {
        let data = dataset(0..3);
        let model = PicModel::new(PicConfig { hidden: 8, layers: 2, ..Default::default() });
        let ck = Checkpoint::new(&model, 0.4, "test");
        let json = ck.to_json().unwrap();
        let back = Checkpoint::from_json(&json).unwrap();
        let restored = back.restore();
        for (g, _) in &data {
            assert_eq!(model.forward(g), restored.forward(g));
        }
        assert_eq!(back.threshold, 0.4);
        assert_eq!(back.name, "test");
    }

    #[test]
    fn sanity_check_rejects_poisoned_snapshots() {
        let model = PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() });
        let ck = Checkpoint::new(&model, 0.4, "ok");
        assert!(ck.sanity_check().is_ok());
        assert!(!ck.params.has_non_finite());

        let mut nan = ck.clone();
        nan.params.w_out.data[0] = f32::NAN;
        assert!(nan.params.has_non_finite());
        assert!(nan.sanity_check().unwrap_err().contains("NaN"));

        let mut inf = ck.clone();
        *inf.params.layers[0].w_rel[0].data.last_mut().unwrap() = f32::INFINITY;
        assert!(inf.sanity_check().is_err());

        let mut bad_t = ck;
        bad_t.threshold = 1.5;
        assert!(bad_t.sanity_check().unwrap_err().contains("threshold"));
    }

    #[test]
    fn pooled_evaluation_counts_all_urbs() {
        let data = dataset(0..6);
        let refs: Vec<LabeledGraph> = data.iter().map(|(g, y)| (g, y.as_slice())).collect();
        let model = PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() });
        let c = evaluate_pooled(&model, &refs, 0.5, true);
        let total_urbs: usize = data.iter().map(|(g, _)| g.urb_indices().len()).sum();
        assert_eq!(c.total(), total_urbs);
        let t = tune_threshold_f2_pooled(&model, &refs);
        assert!((0.05..=0.95).contains(&t));
    }

    #[test]
    fn worker_panic_is_contained_not_propagated() {
        let data = dataset(0..8);
        let refs: Vec<LabeledGraph> = data.iter().map(|(g, y)| (g, y.as_slice())).collect();
        for threads in [1, 3] {
            let mut model = PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() });
            let frozen = model.params.clone();
            let mut opt = Adam::new(AdamConfig::default(), &model.params.shapes());
            let mut runner = EpochRunner::new(&model);
            let order: Vec<usize> = (0..refs.len()).collect();
            let err = runner
                .run_coverage_epoch(
                    &mut model,
                    &refs,
                    &order,
                    4,
                    threads,
                    &mut opt,
                    Some(EpochFault::WorkerPanic),
                    None,
                )
                .unwrap_err();
            match err {
                // The inline path preserves the worker's message; the
                // threaded path surfaces std's generic scoped-thread payload.
                EpochError::WorkerPanicked { message } => assert!(
                    message.contains("injected") || message.contains("panicked"),
                    "unexpected message: {message}"
                ),
                other => panic!("expected WorkerPanicked, got {other:?}"),
            }
            // The failed step never reached the optimizer.
            assert_eq!(model.params, frozen, "threads={threads}");
        }
    }

    #[test]
    fn observer_abort_keeps_model_and_buffers_clean() {
        let data = dataset(0..8);
        let refs: Vec<LabeledGraph> = data.iter().map(|(g, y)| (g, y.as_slice())).collect();
        let mut model = PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() });
        let frozen = model.params.clone();
        let mut opt = Adam::new(AdamConfig::default(), &model.params.shapes());
        let mut runner = EpochRunner::new(&model);
        let order: Vec<usize> = (0..refs.len()).collect();
        let mut seen = Vec::new();
        let mut obs = |info: &StepInfo| {
            seen.push(info.grad_norm);
            if info.step == 1 {
                Err("synthetic anomaly".into())
            } else {
                Ok(())
            }
        };
        let err = runner
            .run_coverage_epoch(&mut model, &refs, &order, 4, 1, &mut opt, None, Some(&mut obs))
            .unwrap_err();
        assert_eq!(err, EpochError::Aborted { step: 1, reason: "synthetic anomaly".into() });
        // Step 0 applied, step 1 did not; grad norms were observed finite.
        assert_ne!(model.params, frozen);
        assert_eq!(seen.len(), 2);
        assert!(seen.iter().all(|n| n.is_finite() && *n > 0.0));
        // The runner stays usable: a fresh epoch with no observer succeeds
        // (a dirty gradient buffer from the aborted step would corrupt it).
        let outcome = runner
            .run_coverage_epoch(&mut model, &refs, &order, 4, 1, &mut opt, None, None)
            .unwrap();
        assert_eq!(outcome.graphs, 8);
        assert_eq!(outcome.steps, 2);
    }

    #[test]
    fn injected_faults_are_visible_to_the_observer() {
        let data = dataset(0..4);
        let refs: Vec<LabeledGraph> = data.iter().map(|(g, y)| (g, y.as_slice())).collect();
        let order: Vec<usize> = (0..refs.len()).collect();
        // Baseline first-step gradient norm without faults.
        let norm_at_step0 = |fault: Option<EpochFault>| {
            let mut model = PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() });
            let mut opt = Adam::new(AdamConfig::default(), &model.params.shapes());
            let mut runner = EpochRunner::new(&model);
            let mut first = None;
            let mut obs = |info: &StepInfo| {
                if info.step == 0 {
                    first = Some(info.grad_norm);
                }
                Ok(())
            };
            runner
                .run_coverage_epoch(
                    &mut model,
                    &refs,
                    &order,
                    4,
                    1,
                    &mut opt,
                    fault,
                    Some(&mut obs),
                )
                .unwrap();
            first.unwrap()
        };
        let clean = norm_at_step0(None);
        let spiked = norm_at_step0(Some(EpochFault::SpikeGrads(64.0)));
        assert!(spiked > clean * 32.0, "spike not visible: {clean} vs {spiked}");
        assert!(norm_at_step0(Some(EpochFault::NanGrads)).is_nan());
    }

    #[test]
    fn fingerprint_discriminates_data_and_labels() {
        let data = dataset(0..6);
        let refs: Vec<LabeledGraph> = data.iter().map(|(g, y)| (g, y.as_slice())).collect();
        let base = dataset_fingerprint(&refs);
        assert_eq!(base, dataset_fingerprint(&refs), "fingerprint is deterministic");
        assert_ne!(base, dataset_fingerprint(&refs[..5]), "dropping an example changes it");
        let mut flipped = data.clone();
        let pos = flipped[0].1.iter().position(|&l| l).expect("synthetic data has positive labels");
        flipped[0].1[pos] = false;
        let flipped_refs: Vec<LabeledGraph> =
            flipped.iter().map(|(g, y)| (g, y.as_slice())).collect();
        assert_ne!(base, dataset_fingerprint(&flipped_refs), "label flip changes it");
    }

    #[test]
    fn training_report_has_epoch_entries() {
        let data = dataset(0..8);
        let refs: Vec<LabeledGraph> = data.iter().map(|(g, y)| (g, y.as_slice())).collect();
        let mut model = PicModel::new(PicConfig { hidden: 8, layers: 1, ..Default::default() });
        let report =
            train(&mut model, &refs, &refs, TrainConfig { epochs: 3, ..Default::default() });
        assert_eq!(report.epoch_losses.len(), 3);
        assert_eq!(report.val_ap.len(), 3);
        assert!(report.train_seconds >= 0.0);
    }
}
