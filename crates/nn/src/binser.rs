//! Bit-exact binary serialization for model state.
//!
//! JSON checkpoints round-trip floats through decimal text — exact for
//! finite values under the shortest-representation printer, but silently
//! lossy for non-finite values (the vendored `serde_json` writes them as
//! `null`). Training state (optimizer moments, RNG positions) additionally
//! needs *bit*-identity, not value-identity, for resumed runs to continue
//! exactly. This module therefore encodes every `f32`/`f64` as its IEEE bit
//! pattern in little-endian order: `decode(encode(x))` reproduces `x`
//! bit-for-bit, including NaN payloads, infinities and signed zeros.
//!
//! The encoding is a plain field-ordered concatenation with explicit
//! lengths — no self-description, no framing. Callers wrap payloads in the
//! corpus crate's checksummed envelope (`magic | version | length | crc32`)
//! so corruption is detected before this decoder runs; the decoder still
//! validates every length against the remaining input, so even unframed
//! garbage yields a typed [`BinError`], never a panic or an absurd
//! allocation.

use crate::model::{LayerParams, PicConfig, PicParams};
use crate::optim::AdamSnapshot;
use crate::tensor::Mat;
use crate::train::Checkpoint;

/// Typed decode failure (encode cannot fail).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinError {
    /// The input ended before the announced field.
    Truncated,
    /// A structurally invalid field (impossible length, bad tag, …).
    Invalid(&'static str),
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinError::Truncated => write!(f, "binary payload truncated"),
            BinError::Invalid(what) => write!(f, "invalid binary payload: {what}"),
        }
    }
}

impl std::error::Error for BinError {}

/// Little-endian field encoder. Append-only; `finish` yields the buffer.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the encoder, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Append a `u8`.
    pub fn put_u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Append an `f32` as its IEEE-754 bit pattern.
    pub fn put_f32(&mut self, x: f32) {
        self.put_u32(x.to_bits());
    }

    /// Append an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, x: f64) {
        self.put_u64(x.to_bits());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a length-prefixed `f32` slice (bit patterns).
    pub fn put_f32s(&mut self, xs: &[f32]) {
        self.put_u32(xs.len() as u32);
        self.put_f32_raw(xs);
    }

    /// Append a length-prefixed `f64` slice (bit patterns).
    pub fn put_f64s(&mut self, xs: &[f64]) {
        self.put_u32(xs.len() as u32);
        let start = self.buf.len();
        self.buf.resize(start + xs.len() * 8, 0);
        for (dst, &x) in self.buf[start..].chunks_exact_mut(8).zip(xs) {
            dst.copy_from_slice(&x.to_bits().to_le_bytes());
        }
    }

    /// Append a matrix: rows, cols, then the row-major bit patterns.
    pub fn put_mat(&mut self, m: &Mat) {
        self.put_u32(m.rows as u32);
        self.put_u32(m.cols as u32);
        self.put_f32_raw(&m.data);
    }

    /// Bulk-append `f32` bit patterns without a length prefix. Resizing
    /// once and filling fixed-width chunks keeps large tensors on a
    /// memcpy-like path instead of a per-element `extend_from_slice`.
    fn put_f32_raw(&mut self, xs: &[f32]) {
        let start = self.buf.len();
        self.buf.resize(start + xs.len() * 4, 0);
        for (dst, &x) in self.buf[start..].chunks_exact_mut(4).zip(xs) {
            dst.copy_from_slice(&x.to_bits().to_le_bytes());
        }
    }
}

/// Little-endian field decoder over a byte slice.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decode from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless the whole input was consumed (trailing garbage check).
    pub fn expect_end(&self) -> Result<(), BinError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(BinError::Invalid("trailing bytes after payload"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        if self.remaining() < n {
            return Err(BinError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn take_u8(&mut self) -> Result<u8, BinError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, BinError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Read a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, BinError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read an `f32` bit pattern.
    pub fn take_f32(&mut self) -> Result<f32, BinError> {
        Ok(f32::from_bits(self.take_u32()?))
    }

    /// Read an `f64` bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, BinError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Read a `u32` length that must be coverable by `elem_size`-byte
    /// elements in the remaining input — the anti-allocation-bomb guard.
    fn take_len(&mut self, elem_size: usize) -> Result<usize, BinError> {
        let n = self.take_u32()? as usize;
        if n.saturating_mul(elem_size) > self.remaining() {
            return Err(BinError::Truncated);
        }
        Ok(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, BinError> {
        let n = self.take_len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| BinError::Invalid("string is not UTF-8"))
    }

    /// Read a length-prefixed `f32` vector.
    pub fn take_f32s(&mut self) -> Result<Vec<f32>, BinError> {
        let n = self.take_len(4)?;
        (0..n).map(|_| self.take_f32()).collect()
    }

    /// Read a length-prefixed `f64` vector.
    pub fn take_f64s(&mut self) -> Result<Vec<f64>, BinError> {
        let n = self.take_len(8)?;
        (0..n).map(|_| self.take_f64()).collect()
    }

    /// Read a matrix written by [`Enc::put_mat`].
    pub fn take_mat(&mut self) -> Result<Mat, BinError> {
        let rows = self.take_u32()? as usize;
        let cols = self.take_u32()? as usize;
        let n = rows.saturating_mul(cols);
        if n.saturating_mul(4) > self.remaining() {
            return Err(BinError::Truncated);
        }
        let data = (0..n).map(|_| self.take_f32()).collect::<Result<Vec<f32>, _>>()?;
        Ok(Mat { rows, cols, data })
    }
}

/// Encode model hyperparameters (current layout: trailing
/// `static_channels` field after the seed).
pub fn put_pic_config(e: &mut Enc, cfg: &PicConfig) {
    e.put_u32(cfg.hidden as u32);
    e.put_u32(cfg.layers as u32);
    e.put_u32(cfg.vocab as u32);
    e.put_f32(cfg.pos_weight);
    e.put_f32(cfg.urb_weight);
    e.put_f32(cfg.flow_weight);
    e.put_u64(cfg.seed);
    e.put_u32(cfg.static_channels as u32);
}

/// Decode model hyperparameters (current layout).
pub fn take_pic_config(d: &mut Dec<'_>) -> Result<PicConfig, BinError> {
    let mut cfg = take_pic_config_legacy(d)?;
    cfg.static_channels = d.take_u32()? as usize;
    Ok(cfg)
}

/// Decode the pre-static-channel (SCMC v1) hyperparameter layout: no
/// `static_channels` field — the decoded model is channel-free.
pub fn take_pic_config_legacy(d: &mut Dec<'_>) -> Result<PicConfig, BinError> {
    Ok(PicConfig {
        hidden: d.take_u32()? as usize,
        layers: d.take_u32()? as usize,
        vocab: d.take_u32()? as usize,
        pos_weight: d.take_f32()?,
        urb_weight: d.take_f32()?,
        flow_weight: d.take_f32()?,
        seed: d.take_u64()?,
        static_channels: 0,
    })
}

/// Encode the full parameter set in stable field order.
pub fn put_params(e: &mut Enc, p: &PicParams) {
    e.put_mat(&p.tok_emb);
    e.put_mat(&p.type_emb);
    e.put_mat(&p.sched_emb);
    e.put_mat(&p.w_in);
    e.put_mat(&p.b_in);
    e.put_u32(p.layers.len() as u32);
    for layer in &p.layers {
        e.put_mat(&layer.w_self);
        e.put_u32(layer.w_rel.len() as u32);
        for w in &layer.w_rel {
            e.put_mat(w);
        }
        e.put_mat(&layer.b);
    }
    e.put_mat(&p.w_out);
    e.put_mat(&p.b_out);
    e.put_mat(&p.w_static);
    e.put_mat(&p.w_flow);
    e.put_mat(&p.b_flow);
}

/// Decode a parameter set written by [`put_params`].
pub fn take_params(d: &mut Dec<'_>) -> Result<PicParams, BinError> {
    take_params_at(d, true)
}

/// Decode the pre-static-channel (SCMC v1) parameter layout: no `w_static`
/// tensor between the output head and the flow head.
pub fn take_params_legacy(d: &mut Dec<'_>) -> Result<PicParams, BinError> {
    take_params_at(d, false)
}

fn take_params_at(d: &mut Dec<'_>, has_static: bool) -> Result<PicParams, BinError> {
    let tok_emb = d.take_mat()?;
    let type_emb = d.take_mat()?;
    let sched_emb = d.take_mat()?;
    let w_in = d.take_mat()?;
    let b_in = d.take_mat()?;
    let n_layers = d.take_len(1)?;
    let mut layers = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        let w_self = d.take_mat()?;
        let n_rel = d.take_len(1)?;
        let w_rel = (0..n_rel).map(|_| d.take_mat()).collect::<Result<Vec<Mat>, _>>()?;
        let b = d.take_mat()?;
        layers.push(LayerParams { w_self, w_rel, b });
    }
    Ok(PicParams {
        tok_emb,
        type_emb,
        sched_emb,
        w_in,
        b_in,
        layers,
        w_out: d.take_mat()?,
        b_out: d.take_mat()?,
        w_static: if has_static { d.take_mat()? } else { Mat::default() },
        w_flow: d.take_mat()?,
        b_flow: d.take_mat()?,
    })
}

/// Encode Adam optimizer state (hyperparameters, moments, step count).
pub fn put_adam(e: &mut Enc, s: &AdamSnapshot) {
    e.put_f32(s.cfg.lr);
    e.put_f32(s.cfg.beta1);
    e.put_f32(s.cfg.beta2);
    e.put_f32(s.cfg.eps);
    e.put_f32(s.cfg.clip);
    e.put_u64(s.t);
    e.put_u32(s.m.len() as u32);
    for (m, v) in s.m.iter().zip(&s.v) {
        e.put_f32s(m);
        e.put_f32s(v);
    }
}

/// Decode Adam optimizer state written by [`put_adam`].
pub fn take_adam(d: &mut Dec<'_>) -> Result<AdamSnapshot, BinError> {
    let cfg = crate::optim::AdamConfig {
        lr: d.take_f32()?,
        beta1: d.take_f32()?,
        beta2: d.take_f32()?,
        eps: d.take_f32()?,
        clip: d.take_f32()?,
    };
    let t = d.take_u64()?;
    let n = d.take_len(1)?;
    let mut m = Vec::with_capacity(n);
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        m.push(d.take_f32s()?);
        v.push(d.take_f32s()?);
    }
    Ok(AdamSnapshot { cfg, m, v, t })
}

/// Encode a deployable model checkpoint (config, parameters, threshold,
/// name) as an unframed binary payload. Callers add the checksummed
/// envelope.
pub fn encode_model_checkpoint(ck: &Checkpoint) -> Vec<u8> {
    let mut e = Enc::new();
    put_pic_config(&mut e, &ck.cfg);
    put_params(&mut e, &ck.params);
    e.put_f32(ck.threshold);
    e.put_str(&ck.name);
    e.finish()
}

/// Decode a payload written by [`encode_model_checkpoint`].
pub fn decode_model_checkpoint(bytes: &[u8]) -> Result<Checkpoint, BinError> {
    let mut d = Dec::new(bytes);
    let cfg = take_pic_config(&mut d)?;
    let params = take_params(&mut d)?;
    let threshold = d.take_f32()?;
    let name = d.take_str()?;
    d.expect_end()?;
    Ok(Checkpoint { cfg, params, threshold, name })
}

/// Decode a pre-static-channel (SCMC v1) checkpoint payload. The result is
/// a channel-free model (`static_channels = 0`, empty `w_static`) whose
/// forward pass is bit-identical to what the old decoder produced.
pub fn decode_model_checkpoint_legacy(bytes: &[u8]) -> Result<Checkpoint, BinError> {
    let mut d = Dec::new(bytes);
    let cfg = take_pic_config_legacy(&mut d)?;
    let params = take_params_legacy(&mut d)?;
    let threshold = d.take_f32()?;
    let name = d.take_str()?;
    d.expect_end()?;
    Ok(Checkpoint { cfg, params, threshold, name })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PicModel;

    #[test]
    fn primitives_roundtrip_bit_exactly() {
        let mut e = Enc::new();
        e.put_u8(7);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(u64::MAX);
        e.put_f32(-0.0);
        e.put_f32(f32::NAN);
        e.put_f64(f64::NEG_INFINITY);
        e.put_str("snow–cat");
        e.put_f32s(&[f32::MIN_POSITIVE, 1e-45, f32::MAX]);
        e.put_f64s(&[core::f64::consts::PI]);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.take_u8().unwrap(), 7);
        assert_eq!(d.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.take_u64().unwrap(), u64::MAX);
        assert_eq!(d.take_f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(d.take_f32().unwrap().to_bits(), f32::NAN.to_bits());
        assert_eq!(d.take_f64().unwrap(), f64::NEG_INFINITY);
        assert_eq!(d.take_str().unwrap(), "snow–cat");
        assert_eq!(
            d.take_f32s().unwrap().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            [f32::MIN_POSITIVE, 1e-45, f32::MAX].iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(d.take_f64s().unwrap(), vec![core::f64::consts::PI]);
        d.expect_end().unwrap();
    }

    #[test]
    fn model_checkpoint_roundtrips() {
        let model = PicModel::new(PicConfig { hidden: 6, layers: 2, ..Default::default() });
        let ck = Checkpoint::new(&model, 0.35, "bin-rt");
        let bytes = encode_model_checkpoint(&ck);
        let back = decode_model_checkpoint(&bytes).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn legacy_v1_payloads_decode_to_channel_free_models() {
        // Hand-encode the exact pre-static-channel layout (no
        // static_channels field, no w_static tensor) and decode it through
        // the legacy path.
        let cfg = PicConfig { hidden: 5, layers: 1, static_channels: 0, ..Default::default() };
        let model = PicModel::new(cfg);
        let ck = Checkpoint::new(&model, 0.4, "legacy");
        let mut e = Enc::new();
        e.put_u32(ck.cfg.hidden as u32);
        e.put_u32(ck.cfg.layers as u32);
        e.put_u32(ck.cfg.vocab as u32);
        e.put_f32(ck.cfg.pos_weight);
        e.put_f32(ck.cfg.urb_weight);
        e.put_f32(ck.cfg.flow_weight);
        e.put_u64(ck.cfg.seed);
        e.put_mat(&ck.params.tok_emb);
        e.put_mat(&ck.params.type_emb);
        e.put_mat(&ck.params.sched_emb);
        e.put_mat(&ck.params.w_in);
        e.put_mat(&ck.params.b_in);
        e.put_u32(ck.params.layers.len() as u32);
        for layer in &ck.params.layers {
            e.put_mat(&layer.w_self);
            e.put_u32(layer.w_rel.len() as u32);
            for w in &layer.w_rel {
                e.put_mat(w);
            }
            e.put_mat(&layer.b);
        }
        e.put_mat(&ck.params.w_out);
        e.put_mat(&ck.params.b_out);
        e.put_mat(&ck.params.w_flow);
        e.put_mat(&ck.params.b_flow);
        e.put_f32(ck.threshold);
        e.put_str(&ck.name);
        let legacy_bytes = e.finish();
        let back = decode_model_checkpoint_legacy(&legacy_bytes).unwrap();
        assert_eq!(back.cfg.static_channels, 0);
        assert_eq!(back.params.w_static, Mat::default());
        assert_eq!(back.params.w_flow, ck.params.w_flow);
        assert_eq!(back.threshold, ck.threshold);
        // The current decoder must reject the old layout (version routing
        // in snowcat-core picks the right one from the SCMC frame).
        assert!(decode_model_checkpoint(&legacy_bytes).is_err());
    }

    #[test]
    fn truncation_and_garbage_are_typed_errors() {
        let model = PicModel::new(PicConfig { hidden: 4, layers: 1, ..Default::default() });
        let bytes = encode_model_checkpoint(&Checkpoint::new(&model, 0.5, "t"));
        for cut in [0, 1, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_model_checkpoint(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // A huge announced length must not allocate — the guard rejects it.
        let mut e = Enc::new();
        e.put_u32(u32::MAX);
        let huge = e.finish();
        assert_eq!(Dec::new(&huge).take_f32s(), Err(BinError::Truncated));
        // Trailing garbage is rejected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_model_checkpoint(&padded).is_err());
    }
}
