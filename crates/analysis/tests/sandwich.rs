//! The may-race sandwich: `dynamic ⊆ refined ⊆ coarse`.
//!
//! The alias-refined may-race set must sit *between* the dynamic race set
//! and the alias-blind (PR 3) set on **arbitrary** generated kernels:
//!
//! 1. **refined ⊆ coarse** — every refined pair is also a coarse pair, so
//!    switching the prefilter to the refined set can only veto more,
//! 2. **dynamic ⊆ refined** — no dynamically observable race is ever
//!    refined away, so the extra vetoes are all sound,
//! 3. **planted coverage** — every planted bug keeps at least one
//!    cross-carrier racing pair inside the refined set (the bug is still
//!    findable after refinement).
//!
//! Property 2 is also exercised (on a fixed kernel, against richer
//! schedules) by `soundness.rs`; here the kernel itself is the random
//! variable: shape, seed and bundled version all vary per case.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use snowcat_analysis::{analyze, Analysis};
use snowcat_cfg::KernelCfg;
use snowcat_kernel::{generate, GenConfig, InstrLoc, Kernel, KernelVersion, ThreadId};
use snowcat_race::{RaceDetector, RaceKey};
use snowcat_vm::{run_ct, Cti, ScheduleHints, Sti, SwitchPoint, SyscallInvocation, VmConfig};

/// Static half of the sandwich plus planted-bug coverage.
fn check_static_sandwich(k: &Kernel, what: &str) -> Result<Analysis, TestCaseError> {
    let cfg = KernelCfg::build(k);
    let analysis = analyze(k, &cfg);
    for key in analysis.may_race.iter() {
        prop_assert!(
            analysis.may_race_coarse.contains(key),
            "{what}: refined pair {key:?} missing from the coarse set"
        );
    }
    prop_assert!(
        analysis.may_race.len() <= analysis.may_race_coarse.len(),
        "{what}: refined set larger than coarse"
    );
    let covered = analysis.covered_planted_bugs(k);
    for bug in &k.bugs {
        prop_assert!(covered.contains(&bug.id), "{what}: planted bug {} was refined away", bug.id);
    }
    Ok(analysis)
}

/// Dynamic half: race every planted bug's carrier pair under one schedule
/// and check each detected race is still a refined may-race pair.
fn check_dynamic_inside_refined(
    k: &Kernel,
    analysis: &Analysis,
    x: u64,
    y: u64,
    what: &str,
) -> Result<(), TestCaseError> {
    for bug in &k.bugs {
        let (sc_a, sc_b) = bug.syscalls;
        let sa = Sti::new(vec![SyscallInvocation { syscall: sc_a, args: [0, 0, 0] }]);
        let sb = Sti::new(vec![SyscallInvocation { syscall: sc_b, args: [0, 0, 0] }]);
        let hints = ScheduleHints {
            first: ThreadId(0),
            switches: vec![
                SwitchPoint { thread: ThreadId(0), after: x },
                SwitchPoint { thread: ThreadId(1), after: y },
            ],
        };
        let r = run_ct(k, &Cti::new(sa, sb), hints, VmConfig::default());
        for report in RaceDetector::new(u64::MAX).detect(k, &r) {
            prop_assert!(
                analysis.may_race.contains(&report.key),
                "{what}: dynamic race {:?} missing from the refined set",
                report.key
            );
        }
    }
    Ok(())
}

/// Cross-carrier racing pairs of one planted bug, as may-race keys.
fn planted_pairs(k: &Kernel, bug: &snowcat_kernel::BugSpec) -> Vec<RaceKey> {
    let func_of = |loc: InstrLoc| k.block(loc.block).func;
    let fa = k.syscall(bug.syscalls.0).func;
    let mem: Vec<InstrLoc> = bug
        .racing_instrs
        .iter()
        .copied()
        .filter(|&l| k.instr(l).is_some_and(|i| i.is_mem_access()))
        .collect();
    let mut keys = Vec::new();
    for &a in &mem {
        for &b in &mem {
            if func_of(a) == fa && func_of(b) != fa {
                keys.push(RaceKey::new(a, b));
            }
        }
    }
    keys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sandwich_holds_on_arbitrary_kernel_shapes(
        seed in any::<u64>(),
        num_subsystems in 1usize..6,
        syscalls_per_subsystem in 2usize..6,
        helpers_per_subsystem in 0usize..3,
        x in 1u64..200, y in 1u64..200,
    ) {
        let cfg = GenConfig {
            seed,
            num_subsystems,
            syscalls_per_subsystem,
            helpers_per_subsystem,
            ..GenConfig::default()
        };
        let k = generate(&cfg);
        let what = format!("shape {num_subsystems}/{syscalls_per_subsystem}/{helpers_per_subsystem} seed {seed}");
        let analysis = check_static_sandwich(&k, &what)?;
        check_dynamic_inside_refined(&k, &analysis, x, y, &what)?;
    }

    #[test]
    fn sandwich_holds_on_bundled_kernel_versions(
        seed in any::<u64>(),
        x in 1u64..200, y in 1u64..200,
    ) {
        for version in [KernelVersion::V5_12, KernelVersion::V5_13, KernelVersion::V6_1] {
            let k = version.spec(seed).build();
            let what = format!("{} seed {seed}", version.tag());
            let analysis = check_static_sandwich(&k, &what)?;
            check_dynamic_inside_refined(&k, &analysis, x, y, &what)?;
        }
    }
}

/// Deterministic belt-and-braces variant of the planted-coverage claim:
/// every individual cross-carrier racing *pair* (not just one per bug)
/// present in the coarse set also survives in the refined set, on both CI
/// kernel versions.
#[test]
fn planted_pairs_survive_refinement_exactly() {
    for version in [KernelVersion::V5_12, KernelVersion::V6_1] {
        let k = version.spec(42).build();
        let cfg = KernelCfg::build(&k);
        let analysis = analyze(&k, &cfg);
        for bug in &k.bugs {
            for key in planted_pairs(&k, bug) {
                if analysis.may_race_coarse.contains(&key) {
                    assert!(
                        analysis.may_race.contains(&key),
                        "{}: planted pair {key:?} of bug {} lost in refinement",
                        version.tag(),
                        bug.id
                    );
                }
            }
        }
    }
}
