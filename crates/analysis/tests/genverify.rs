//! Generator verification: the lock-discipline lints double as a test
//! oracle for the kernel generator itself. Outside the deliberately
//! planted bugs, every generated kernel — any config, any seed, any
//! version — must use locks cleanly: no double-lock, no unlock of a
//! free lock, no leak at function exit, no lock-order cycle, and no
//! inconsistently protected word. A non-allowlisted finding here is a
//! generator bug, not an analysis bug.

use snowcat_analysis::{analyze, Allowlist, LintKind};
use snowcat_cfg::KernelCfg;
use snowcat_kernel::{generate, BugKind, GenConfig, Kernel, KernelVersion};

fn assert_clean(k: &Kernel, what: &str) {
    let cfg = KernelCfg::build(k);
    let analysis = analyze(k, &cfg);
    let allowlist = Allowlist::from_planted_bugs(k);
    let unexpected: Vec<_> = analysis.unexpected_findings(&allowlist).collect();
    assert!(
        unexpected.is_empty(),
        "{what}: generator emitted non-allowlisted lock misuse: {unexpected:#?}"
    );
    // Hard discipline violations never occur, allowlisted or not: the
    // planted bugs break *protection consistency* (shared-word lints),
    // never lock pairing or ordering.
    for f in &analysis.findings {
        assert!(
            matches!(
                f.kind,
                LintKind::InconsistentProtection
                    | LintKind::StoreConstConflict
                    | LintKind::GuardedByViolation
            ),
            "{what}: generator emitted a lock-pairing defect: {f:#?}"
        );
    }
}

#[test]
fn default_config_is_clean() {
    let k = generate(&GenConfig::default());
    assert_clean(&k, "default config");
}

#[test]
fn seed_sweep_is_clean() {
    for seed in 0..6u64 {
        let k = generate(&GenConfig { seed, ..GenConfig::default() });
        assert_clean(&k, &format!("seed {seed}"));
    }
}

#[test]
fn shape_sweep_is_clean() {
    let shapes = [
        GenConfig { num_subsystems: 1, syscalls_per_subsystem: 2, ..GenConfig::default() },
        GenConfig { num_subsystems: 2, helpers_per_subsystem: 0, ..GenConfig::default() },
        GenConfig { num_subsystems: 12, syscalls_per_subsystem: 10, ..GenConfig::default() },
        GenConfig { locks: 4, ..GenConfig::default() },
        GenConfig { segments_per_syscall: (1, 3), ..GenConfig::default() },
    ];
    for (i, cfg) in shapes.iter().enumerate() {
        let k = generate(cfg);
        assert_clean(&k, &format!("shape {i}"));
    }
}

#[test]
fn every_kernel_version_is_clean() {
    for v in [KernelVersion::V5_12, KernelVersion::V5_13, KernelVersion::V6_1] {
        let k = v.spec(42).build();
        assert_clean(&k, v.tag());
    }
}

#[test]
fn planted_lock_misuse_is_always_visible() {
    // The converse guarantee: the lints are strong enough that the planted
    // lock-misuse bugs (locked writer vs. raw reader) never slip through.
    for seed in [0u64, 7, 42] {
        let k = generate(&GenConfig { seed, ..GenConfig::default() });
        let cfg = KernelCfg::build(&k);
        let analysis = analyze(&k, &cfg);
        let flagged = analysis.flagged_lock_misuse_bugs(&k);
        for bug in &k.bugs {
            if matches!(bug.kind, BugKind::DataRace | BugKind::MultiOrder) {
                assert!(
                    flagged.contains(&bug.id),
                    "seed {seed}: planted {:?} bug {} not flagged",
                    bug.kind,
                    bug.id
                );
            }
        }
    }
}
