//! Soundness of the static analysis against the dynamic substrate.
//!
//! Two containment properties, checked over randomized concurrent
//! executions:
//!
//! 1. **must ⊆ dynamic**: the must-hold lockset computed for a static
//!    instruction is a subset of the lockset the VM observed every time
//!    that instruction executed (must-analysis under-approximates).
//! 2. **dynamic ⊆ may-race**: every potential data race the dynamic
//!    detector reports — any window, any schedule — is already in the
//!    static may-race set (the static pass over-approximates).
//!
//! Together these justify using [`snowcat_analysis::MayRace`] as a
//! pre-filter: dropping pairs outside it can never lose a dynamic race.

use std::sync::OnceLock;

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use snowcat_analysis::{analyze, Analysis};
use snowcat_cfg::KernelCfg;
use snowcat_kernel::{generate, GenConfig, Kernel, SyscallId, ThreadId};
use snowcat_race::RaceDetector;
use snowcat_vm::{
    run_ct, Cti, ExecResult, ScheduleHints, Sti, SwitchPoint, SyscallInvocation, VmConfig,
};

/// Kernel small enough for fast proptest cases but with every bug class.
fn setup() -> &'static (Kernel, KernelCfg, Analysis) {
    static CELL: OnceLock<(Kernel, KernelCfg, Analysis)> = OnceLock::new();
    CELL.get_or_init(|| {
        let k = generate(&GenConfig {
            num_subsystems: 4,
            syscalls_per_subsystem: 4,
            helpers_per_subsystem: 2,
            ..GenConfig::default()
        });
        let cfg = KernelCfg::build(&k);
        let analysis = analyze(&k, &cfg);
        (k, cfg, analysis)
    })
}

/// Check both containment properties on one execution.
fn check_execution(k: &Kernel, analysis: &Analysis, r: &ExecResult) -> Result<(), TestCaseError> {
    // 1. must ⊆ dynamic, for every access the VM recorded.
    for a in &r.accesses {
        let stat = analysis.locksets.access_lockset(a.loc).ok_or_else(|| {
            TestCaseError::fail(format!("executed access at {} unknown to analysis", a.loc))
        })?;
        prop_assert!(
            stat & a.lockset == stat,
            "must-lockset {:#b} at {} not ⊆ dynamic {:#b}",
            stat,
            a.loc,
            a.lockset
        );
    }
    // 2. dynamic ⊆ may-race, with the widest detector window.
    for report in RaceDetector::new(u64::MAX).detect(k, r) {
        prop_assert!(
            analysis.may_race.contains(&report.key),
            "dynamic race {:?} missing from static may-race set",
            report.key
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn random_schedules_stay_inside_static_approximations(
        ia in 0usize..16, ib in 0usize..16,
        arg_a in 0i64..4, arg_b in 0i64..4,
        x in 1u64..300, y in 1u64..300,
    ) {
        let (k, _cfg, analysis) = setup();
        let sa = Sti::new(vec![SyscallInvocation {
            syscall: SyscallId((ia % k.syscalls.len()) as u32),
            args: [arg_a, 0, 0],
        }]);
        let sb = Sti::new(vec![SyscallInvocation {
            syscall: SyscallId((ib % k.syscalls.len()) as u32),
            args: [arg_b, 0, 0],
        }]);
        let hints = ScheduleHints {
            first: ThreadId(0),
            switches: vec![
                SwitchPoint { thread: ThreadId(0), after: x },
                SwitchPoint { thread: ThreadId(1), after: y },
            ],
        };
        let r = run_ct(k, &Cti::new(sa, sb), hints, VmConfig::default());
        check_execution(k, analysis, &r)?;
    }

    #[test]
    fn planted_bug_carriers_stay_inside_static_approximations(
        bug_idx in 0usize..16, x in 1u64..200, y in 1u64..200, flip in proptest::bool::ANY,
    ) {
        let (k, _cfg, analysis) = setup();
        // Drive the two carrier syscalls of a planted bug directly — these
        // schedules produce the densest racy access streams.
        let bug = &k.bugs[bug_idx % k.bugs.len()];
        let (mut sc_a, mut sc_b) = bug.syscalls;
        if flip {
            std::mem::swap(&mut sc_a, &mut sc_b);
        }
        let sa = Sti::new(vec![SyscallInvocation { syscall: sc_a, args: [0, 0, 0] }]);
        let sb = Sti::new(vec![SyscallInvocation { syscall: sc_b, args: [0, 0, 0] }]);
        let hints = ScheduleHints {
            first: ThreadId(0),
            switches: vec![
                SwitchPoint { thread: ThreadId(0), after: x },
                SwitchPoint { thread: ThreadId(1), after: y },
            ],
        };
        let r = run_ct(k, &Cti::new(sa, sb), hints, VmConfig::default());
        check_execution(k, analysis, &r)?;
    }
}
