//! Lock-discipline lints over the must-hold lockset and value-flow passes.
//!
//! Seven lints, in the LockDoc tradition of deriving locking rules from the
//! program itself rather than annotations:
//!
//! * **double-lock** — re-acquiring a mutex definitely already held,
//! * **unlock-without-lock** — releasing a mutex not in the must-held set,
//! * **lock-leak** — returning from a function still holding a lock the
//!   function itself acquired,
//! * **lock-order-cycle** — a cycle in the static lock-order graph (a
//!   deadlock candidate). The graph is *interprocedural*: besides direct
//!   `Lock`-under-lock edges it contains, for every call site, edges from
//!   each definitely-held lock to every lock the callee's bottom-up
//!   may-acquire summary names — so an ABBA split across call boundaries
//!   is still a cycle,
//! * **inconsistent-protection** — a fixed shared word accessed both under
//!   a lock and, elsewhere, with a disjoint must-lockset including at least
//!   one write (the static shadow of a data race),
//! * **store-const-conflict** — a fixed word receiving two *different*
//!   statically-constant values from stores with disjoint must-locksets
//!   (the shape of an unprotected claim/tag conflict: last writer silently
//!   wins), powered by the value-flow pass's constant store detection,
//! * **guarded-by** — LockDoc-style guard inference: when at least two
//!   accesses of a word agree on a common protecting lock, any conflicting
//!   access (disjoint lockset, ≥1 write) that bypasses the inferred guard
//!   is flagged, naming the guard.
//!
//! Findings carry [`InstrLoc`]s, a severity and a stable dedup key. The
//! generator is expected to be discipline-clean except at *planted* bugs;
//! [`Allowlist::from_planted_bugs`] captures those, so any non-allowlisted
//! finding on a generated kernel is a generator defect (enforced by a test).

use crate::lockset::{AccessInfo, LockEvent, LocksetAnalysis};
use crate::valueflow::ValueFlow;
use serde::{Deserialize, Serialize};
use snowcat_kernel::{Addr, AddrExpr, InstrLoc, Kernel, LockId};
use std::collections::{BTreeMap, HashSet};

/// Which lint produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LintKind {
    /// Re-acquisition of a definitely-held mutex.
    DoubleLock,
    /// Release of a mutex not in the must-held set.
    UnlockWithoutLock,
    /// Function exit while holding a self-acquired lock.
    LockLeak,
    /// Cycle in the static lock-order graph (deadlock candidate).
    LockOrderCycle,
    /// Shared word protected by a lock at some accesses but not others.
    InconsistentProtection,
    /// A word receiving two different statically-constant values from
    /// stores with disjoint must-locksets.
    StoreConstConflict,
    /// Access bypassing the word's inferred protecting lock.
    GuardedByViolation,
}

impl LintKind {
    /// Short stable code used in dedup keys and reports.
    pub fn code(self) -> &'static str {
        match self {
            LintKind::DoubleLock => "double-lock",
            LintKind::UnlockWithoutLock => "unlock-without-lock",
            LintKind::LockLeak => "lock-leak",
            LintKind::LockOrderCycle => "lock-order-cycle",
            LintKind::InconsistentProtection => "inconsistent-protection",
            LintKind::StoreConstConflict => "store-const-conflict",
            LintKind::GuardedByViolation => "guarded-by",
        }
    }
}

/// Finding severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Heuristic or deadlock-candidate finding.
    Warning,
    /// Definite discipline violation on every reaching path.
    Error,
}

/// A structured static-analysis finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticFinding {
    /// Producing lint.
    pub kind: LintKind,
    /// Severity.
    pub severity: Severity,
    /// Instruction locations involved (at least one, primary first).
    pub locs: Vec<InstrLoc>,
    /// Locks involved, ascending (empty for pure data findings).
    pub locks: Vec<LockId>,
    /// The shared word at issue, for address-centric lints.
    pub addr: Option<Addr>,
    /// Human-readable one-liner.
    pub message: String,
}

impl StaticFinding {
    /// Stable deduplication key: two findings with the same key describe
    /// the same defect. Also the deterministic report sort key.
    pub fn dedup_key(&self) -> String {
        let mut key = String::from(self.kind.code());
        if let Some(a) = self.addr {
            key.push_str(&format!(":a{}", a.0));
        }
        for l in &self.locks {
            key.push_str(&format!(":L{}", l.0));
        }
        for loc in &self.locs {
            key.push_str(&format!(":b{}.{}", loc.block.0, loc.idx));
        }
        key
    }
}

/// Locations and addresses excused from lint findings because they belong
/// to *planted* bugs — the generator deliberately emits broken locking
/// there.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    locs: HashSet<InstrLoc>,
    addrs: HashSet<Addr>,
}

impl Allowlist {
    /// An empty allowlist (nothing is excused).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Allowlist derived from the kernel's planted-bug registry: every
    /// recorded racing instruction, plus every fixed address those
    /// instructions touch.
    pub fn from_planted_bugs(kernel: &Kernel) -> Self {
        let mut locs = HashSet::new();
        let mut addrs = HashSet::new();
        for bug in &kernel.bugs {
            for &loc in &bug.racing_instrs {
                locs.insert(loc);
                if let Some(a) = kernel.instr(loc).and_then(|i| i.fixed_addr()) {
                    addrs.insert(a);
                }
            }
        }
        Self { locs, addrs }
    }

    /// Whether a finding is excused: address-centric findings match by
    /// address, location-centric ones require every involved location to be
    /// planted.
    pub fn permits(&self, finding: &StaticFinding) -> bool {
        if let Some(a) = finding.addr {
            return self.addrs.contains(&a);
        }
        !finding.locs.is_empty() && finding.locs.iter().all(|l| self.locs.contains(l))
    }
}

/// Run every lint and return findings sorted by [`StaticFinding::dedup_key`].
pub fn lint(_kernel: &Kernel, locksets: &LocksetAnalysis, vf: &ValueFlow) -> Vec<StaticFinding> {
    let mut findings = Vec::new();
    let mut order_edges: BTreeMap<(LockId, LockId), InstrLoc> = BTreeMap::new();

    for e in &locksets.events {
        match *e {
            LockEvent::DoubleLock { loc, lock } => findings.push(StaticFinding {
                kind: LintKind::DoubleLock,
                severity: Severity::Error,
                locs: vec![loc],
                locks: vec![lock],
                addr: None,
                message: format!("{lock} acquired at {loc} while already held"),
            }),
            LockEvent::UnlockNotHeld { loc, lock } => findings.push(StaticFinding {
                kind: LintKind::UnlockWithoutLock,
                severity: Severity::Error,
                locs: vec![loc],
                locks: vec![lock],
                addr: None,
                message: format!("{lock} released at {loc} but not held on every path"),
            }),
            LockEvent::Leak { loc, lock } => findings.push(StaticFinding {
                kind: LintKind::LockLeak,
                severity: Severity::Error,
                locs: vec![loc],
                locks: vec![lock],
                addr: None,
                message: format!("function returns at {loc} still holding {lock}"),
            }),
            LockEvent::Order { held, acquired, loc } => {
                order_edges.entry((held, acquired)).or_insert(loc);
            }
        }
    }

    findings.extend(lock_order_cycles(&order_edges));
    findings.extend(inconsistent_protection(&locksets.accesses));
    findings.extend(store_const_conflicts(&locksets.accesses, vf));
    findings.extend(guarded_by(&locksets.accesses));

    findings.sort_by_key(|a| a.dedup_key());
    findings.dedup_by(|a, b| a.dedup_key() == b.dedup_key());
    findings
}

/// Cycle detection over the lock-order graph: one finding per strongly
/// connected component with more than one lock (a self-edge is already the
/// double-lock lint's business).
fn lock_order_cycles(edges: &BTreeMap<(LockId, LockId), InstrLoc>) -> Vec<StaticFinding> {
    let locks: Vec<LockId> = {
        let mut s: Vec<LockId> = edges.keys().flat_map(|&(a, b)| [a, b]).collect();
        s.sort_unstable();
        s.dedup();
        s
    };
    let idx_of = |l: LockId| locks.binary_search(&l).unwrap();
    let n = locks.len();
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in edges.keys() {
        if a != b {
            succ[idx_of(a)].push(idx_of(b));
        }
    }
    // Iterative Tarjan SCC.
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut counter = 0usize;
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        // (node, next-successor position)
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut pos)) = call.last_mut() {
            if *pos == 0 {
                index[v] = counter;
                low[v] = counter;
                counter += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *pos < succ[v].len() {
                let w = succ[v][*pos];
                *pos += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().unwrap();
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    if comp.len() > 1 {
                        sccs.push(comp);
                    }
                }
                call.pop();
                if let Some(&mut (p, _)) = call.last_mut() {
                    low[p] = low[p].min(low[v]);
                }
            }
        }
    }
    sccs.into_iter()
        .map(|comp| {
            let mut cycle_locks: Vec<LockId> = comp.iter().map(|&i| locks[i]).collect();
            cycle_locks.sort_unstable();
            let locs: Vec<InstrLoc> = edges
                .iter()
                .filter(|((a, b), _)| cycle_locks.contains(a) && cycle_locks.contains(b))
                .map(|(_, &loc)| loc)
                .collect();
            let names: Vec<String> = cycle_locks.iter().map(|l| l.to_string()).collect();
            StaticFinding {
                kind: LintKind::LockOrderCycle,
                severity: Severity::Warning,
                locs,
                locks: cycle_locks,
                addr: None,
                message: format!("lock-order cycle between {{{}}}", names.join(", ")),
            }
        })
        .collect()
}

/// LockDoc-style inconsistent-protection lint on fixed addresses: a word is
/// flagged when some access holds a lock, yet a conflicting pair (disjoint
/// must-locksets, at least one write) also exists.
fn inconsistent_protection(accesses: &[AccessInfo]) -> Vec<StaticFinding> {
    let mut by_addr: BTreeMap<Addr, Vec<&AccessInfo>> = BTreeMap::new();
    for a in accesses {
        if let AddrExpr::Fixed(addr) = a.addr {
            by_addr.entry(addr).or_default().push(a);
        }
    }
    let mut out = Vec::new();
    for (addr, accs) in by_addr {
        if !accs.iter().any(|a| a.lockset != 0) {
            continue;
        }
        // Find a conflicting pair: disjoint locksets, at least one write,
        // at least one side locked (so a locking convention exists and is
        // violated). Accesses are in deterministic order; take the first.
        let mut witness: Option<(&AccessInfo, &AccessInfo)> = None;
        'search: for (i, x) in accs.iter().enumerate() {
            for y in accs.iter().skip(i) {
                if (x.lockset & y.lockset) == 0
                    && (x.is_write || y.is_write)
                    && (x.lockset != 0 || y.lockset != 0)
                {
                    witness = Some((x, y));
                    break 'search;
                }
            }
        }
        if let Some((x, y)) = witness {
            let mut locks: Vec<LockId> =
                (0..64).filter(|i| (x.lockset | y.lockset) & (1 << i) != 0).map(LockId).collect();
            locks.sort_unstable();
            let mut locs = vec![x.loc, y.loc];
            locs.dedup();
            out.push(StaticFinding {
                kind: LintKind::InconsistentProtection,
                severity: Severity::Warning,
                locs,
                locks,
                addr: Some(addr),
                message: format!(
                    "word {addr} is lock-protected at some accesses but reachable with a \
                     disjoint lockset at {} (≥1 write)",
                    y.loc
                ),
            });
        }
    }
    out
}

/// Store-to-constant-address conflict lint: a fixed word that two stores
/// with *disjoint* must-locksets set to two *different* statically-known
/// constants — the shape of an unprotected claim/tag conflict where the
/// last writer silently wins.
fn store_const_conflicts(accesses: &[AccessInfo], vf: &ValueFlow) -> Vec<StaticFinding> {
    let mut by_addr: BTreeMap<Addr, Vec<(&AccessInfo, i64)>> = BTreeMap::new();
    for (i, a) in accesses.iter().enumerate() {
        if !a.is_write {
            continue;
        }
        if let (AddrExpr::Fixed(addr), Some(v)) = (a.addr, vf.store_value(i)) {
            by_addr.entry(addr).or_default().push((a, v));
        }
    }
    let mut out = Vec::new();
    for (addr, stores) in by_addr {
        let mut witness: Option<(usize, usize)> = None;
        'search: for (i, x) in stores.iter().enumerate() {
            for (j, y) in stores.iter().enumerate().skip(i + 1) {
                if x.1 != y.1 && (x.0.lockset & y.0.lockset) == 0 {
                    witness = Some((i, j));
                    break 'search;
                }
            }
        }
        if let Some((wi, wj)) = witness {
            let ((x, vx), (y, vy)) = (stores[wi], stores[wj]);
            let mut locks: Vec<LockId> =
                (0..64).filter(|i| (x.lockset | y.lockset) & (1 << i) != 0).map(LockId).collect();
            locks.sort_unstable();
            let mut locs = vec![x.loc, y.loc];
            locs.dedup();
            out.push(StaticFinding {
                kind: LintKind::StoreConstConflict,
                severity: Severity::Warning,
                locs,
                locks,
                addr: Some(addr),
                message: format!(
                    "word {addr} receives conflicting constants {vx} (at {}) and {vy} (at {}) \
                     under disjoint locksets — last writer wins",
                    x.loc, y.loc
                ),
            });
        }
    }
    out
}

/// LockDoc-style guarded-by inference: when at least two locked accesses
/// of a word agree on a common protecting lock, any conflicting access
/// that bypasses the inferred guard (disjoint must-lockset, ≥1 write in
/// the pair) is flagged, naming the guard. The trigger condition implies
/// the inconsistent-protection one, so the flagged address set is a subset
/// of that lint's — but the finding pins down *which* lock the access was
/// supposed to hold.
fn guarded_by(accesses: &[AccessInfo]) -> Vec<StaticFinding> {
    let mut by_addr: BTreeMap<Addr, Vec<&AccessInfo>> = BTreeMap::new();
    for a in accesses {
        if let AddrExpr::Fixed(addr) = a.addr {
            by_addr.entry(addr).or_default().push(a);
        }
    }
    let mut out = Vec::new();
    for (addr, accs) in by_addr {
        let locked: Vec<&&AccessInfo> = accs.iter().filter(|a| a.lockset != 0).collect();
        if locked.len() < 2 {
            continue; // one sample is no convention
        }
        let common = locked.iter().fold(u64::MAX, |m, a| m & a.lockset);
        if common == 0 {
            continue; // locked accesses don't agree on a guard
        }
        let guard = LockId(common.trailing_zeros() as u16);
        // An access bypassing the guard: since every locked access contains
        // `common`, a bypasser is necessarily lock-free.
        let mut witness: Option<(&AccessInfo, &AccessInfo)> = None;
        'search: for x in &accs {
            if x.lockset & common != 0 {
                continue;
            }
            for y in &locked {
                if x.is_write || y.is_write {
                    witness = Some((x, y));
                    break 'search;
                }
            }
        }
        if let Some((x, y)) = witness {
            out.push(StaticFinding {
                kind: LintKind::GuardedByViolation,
                severity: Severity::Warning,
                locs: vec![x.loc, y.loc],
                locks: vec![guard],
                addr: Some(addr),
                message: format!(
                    "word {addr} is guarded by {guard} at {} of {} accesses, but {} bypasses it \
                     (≥1 write)",
                    locked.len(),
                    accs.len(),
                    x.loc
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockset::LocksetAnalysis;
    use snowcat_cfg::KernelCfg;
    use snowcat_kernel::{Instr, KernelBuilder, Reg};

    fn analyzed(k: &Kernel) -> Vec<StaticFinding> {
        let cfg = KernelCfg::build(k);
        let an = LocksetAnalysis::compute(k, &cfg);
        let vf = ValueFlow::compute(k, &cfg, &an);
        lint(k, &an, &vf)
    }

    #[test]
    fn clean_kernel_has_no_findings() {
        let mut kb = KernelBuilder::new();
        let sub = kb.add_subsystem("t");
        let a = kb.alloc_region(sub, snowcat_kernel::RegionKind::Flags, 1, "t.flags", 0);
        let l = kb.alloc_lock(sub);
        let f = kb.begin_func("f", sub);
        kb.emit(Instr::Lock { lock: l });
        kb.emit(Instr::Store { addr: AddrExpr::Fixed(a), src: Reg(0) });
        kb.emit(Instr::Unlock { lock: l });
        kb.end_func();
        kb.add_syscall("t_call", f, sub, vec![]);
        let k = kb.finish("t");
        assert!(analyzed(&k).is_empty());
    }

    #[test]
    fn lock_order_cycle_detected() {
        // f takes l0 then l1; g takes l1 then l0 — classic ABBA.
        let mut kb = KernelBuilder::new();
        let sub = kb.add_subsystem("t");
        let l0 = kb.alloc_lock(sub);
        let l1 = kb.alloc_lock(sub);
        for (name, first, second) in [("f", l0, l1), ("g", l1, l0)] {
            let f = kb.begin_func(name, sub);
            kb.emit(Instr::Lock { lock: first });
            kb.emit(Instr::Lock { lock: second });
            kb.emit(Instr::Unlock { lock: second });
            kb.emit(Instr::Unlock { lock: first });
            kb.end_func();
            kb.add_syscall(name, f, sub, vec![]);
        }
        let k = kb.finish("t");
        let findings = analyzed(&k);
        let cyc: Vec<_> = findings.iter().filter(|f| f.kind == LintKind::LockOrderCycle).collect();
        assert_eq!(cyc.len(), 1, "findings: {findings:?}");
        assert_eq!(cyc[0].locks, vec![l0, l1]);
        assert_eq!(cyc[0].severity, Severity::Warning);
    }

    #[test]
    fn consistent_single_order_has_no_cycle() {
        let mut kb = KernelBuilder::new();
        let sub = kb.add_subsystem("t");
        let l0 = kb.alloc_lock(sub);
        let l1 = kb.alloc_lock(sub);
        for name in ["f", "g"] {
            let f = kb.begin_func(name, sub);
            kb.emit(Instr::Lock { lock: l0 });
            kb.emit(Instr::Lock { lock: l1 });
            kb.emit(Instr::Unlock { lock: l1 });
            kb.emit(Instr::Unlock { lock: l0 });
            kb.end_func();
            kb.add_syscall(name, f, sub, vec![]);
        }
        let k = kb.finish("t");
        assert!(analyzed(&k).is_empty());
    }

    #[test]
    fn inconsistent_protection_flags_half_locked_word() {
        let mut kb = KernelBuilder::new();
        let sub = kb.add_subsystem("t");
        let a = kb.alloc_region(sub, snowcat_kernel::RegionKind::Flags, 1, "t.flags", 0);
        let l = kb.alloc_lock(sub);
        let f = kb.begin_func("locked_writer", sub);
        kb.emit(Instr::Lock { lock: l });
        kb.emit(Instr::Store { addr: AddrExpr::Fixed(a), src: Reg(0) });
        kb.emit(Instr::Unlock { lock: l });
        kb.end_func();
        kb.add_syscall("locked_writer", f, sub, vec![]);
        let g = kb.begin_func("raw_reader", sub);
        kb.emit(Instr::Load { dst: Reg(0), addr: AddrExpr::Fixed(a) });
        kb.end_func();
        kb.add_syscall("raw_reader", g, sub, vec![]);
        let k = kb.finish("t");
        let findings = analyzed(&k);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, LintKind::InconsistentProtection);
        assert_eq!(findings[0].addr, Some(a));
    }

    #[test]
    fn all_unlocked_accesses_are_fine() {
        let mut kb = KernelBuilder::new();
        let sub = kb.add_subsystem("t");
        let a = kb.alloc_region(sub, snowcat_kernel::RegionKind::Flags, 1, "t.flags", 0);
        for name in ["w", "r"] {
            let f = kb.begin_func(name, sub);
            if name == "w" {
                kb.emit(Instr::Store { addr: AddrExpr::Fixed(a), src: Reg(0) });
            } else {
                kb.emit(Instr::Load { dst: Reg(0), addr: AddrExpr::Fixed(a) });
            }
            kb.end_func();
            kb.add_syscall(name, f, sub, vec![]);
        }
        let k = kb.finish("t");
        assert!(analyzed(&k).is_empty(), "no lock convention → no inconsistency");
    }

    #[test]
    fn dedup_keys_are_stable_and_unique_per_defect() {
        let f = StaticFinding {
            kind: LintKind::DoubleLock,
            severity: Severity::Error,
            locs: vec![InstrLoc::new(snowcat_kernel::BlockId(3), 1)],
            locks: vec![LockId(2)],
            addr: None,
            message: "x".into(),
        };
        assert_eq!(f.dedup_key(), "double-lock:L2:b3.1");
        let g = StaticFinding { message: "different text".into(), ..f.clone() };
        assert_eq!(f.dedup_key(), g.dedup_key());
    }

    #[test]
    fn allowlist_permits_planted_addresses_only() {
        let mut al = Allowlist::empty();
        al.addrs.insert(Addr(7));
        let hit = StaticFinding {
            kind: LintKind::InconsistentProtection,
            severity: Severity::Warning,
            locs: vec![],
            locks: vec![],
            addr: Some(Addr(7)),
            message: String::new(),
        };
        let miss = StaticFinding { addr: Some(Addr(8)), ..hit.clone() };
        assert!(al.permits(&hit));
        assert!(!al.permits(&miss));
        let no_addr = StaticFinding { addr: None, locs: vec![], ..hit };
        assert!(!al.permits(&no_addr), "empty loc list is never excused");
    }

    #[test]
    fn conflicting_constant_stores_are_flagged() {
        // Two lock-free stores claim the same word with different tags.
        let mut kb = KernelBuilder::new();
        let sub = kb.add_subsystem("t");
        let a = kb.alloc_region(sub, snowcat_kernel::RegionKind::Flags, 1, "t.flags", 0);
        for (name, tag) in [("claim1", 1i64), ("claim2", 2i64)] {
            let f = kb.begin_func(name, sub);
            kb.emit(Instr::Const { dst: Reg(3), val: tag });
            kb.emit(Instr::Store { addr: AddrExpr::Fixed(a), src: Reg(3) });
            kb.end_func();
            kb.add_syscall(name, f, sub, vec![]);
        }
        let k = kb.finish("t");
        let findings = analyzed(&k);
        assert_eq!(findings.len(), 1, "findings: {findings:?}");
        assert_eq!(findings[0].kind, LintKind::StoreConstConflict);
        assert_eq!(findings[0].addr, Some(a));
        assert_eq!(findings[0].severity, Severity::Warning);
    }

    #[test]
    fn same_constant_stores_are_fine() {
        let mut kb = KernelBuilder::new();
        let sub = kb.add_subsystem("t");
        let a = kb.alloc_region(sub, snowcat_kernel::RegionKind::Flags, 1, "t.flags", 0);
        for name in ["set1", "set2"] {
            let f = kb.begin_func(name, sub);
            kb.emit(Instr::Const { dst: Reg(3), val: 7 });
            kb.emit(Instr::Store { addr: AddrExpr::Fixed(a), src: Reg(3) });
            kb.end_func();
            kb.add_syscall(name, f, sub, vec![]);
        }
        let k = kb.finish("t");
        assert!(analyzed(&k).is_empty(), "idempotent flag setting is not a conflict");
    }

    #[test]
    fn guard_inference_names_the_bypassed_lock() {
        // Two accesses agree the word is guarded by l; a third write
        // bypasses it.
        let mut kb = KernelBuilder::new();
        let sub = kb.add_subsystem("t");
        let a = kb.alloc_region(sub, snowcat_kernel::RegionKind::Flags, 1, "t.flags", 0);
        let l = kb.alloc_lock(sub);
        for name in ["locked_w", "locked_r"] {
            let f = kb.begin_func(name, sub);
            kb.emit(Instr::Lock { lock: l });
            if name == "locked_w" {
                kb.emit(Instr::Store { addr: AddrExpr::Fixed(a), src: Reg(0) });
            } else {
                kb.emit(Instr::Load { dst: Reg(4), addr: AddrExpr::Fixed(a) });
            }
            kb.emit(Instr::Unlock { lock: l });
            kb.end_func();
            kb.add_syscall(name, f, sub, vec![]);
        }
        let g = kb.begin_func("raw_w", sub);
        kb.emit(Instr::Store { addr: AddrExpr::Fixed(a), src: Reg(0) });
        kb.end_func();
        kb.add_syscall("raw_w", g, sub, vec![]);
        let k = kb.finish("t");
        let findings = analyzed(&k);
        let gb: Vec<_> =
            findings.iter().filter(|f| f.kind == LintKind::GuardedByViolation).collect();
        assert_eq!(gb.len(), 1, "findings: {findings:?}");
        assert_eq!(gb[0].locks, vec![l], "the inferred guard is named");
        assert_eq!(gb[0].addr, Some(a));
        // The coarser inconsistent-protection lint fires on the same word.
        assert!(findings
            .iter()
            .any(|f| f.kind == LintKind::InconsistentProtection && f.addr == Some(a)));
    }

    #[test]
    fn cross_call_abba_deadlock_is_a_cycle() {
        // helper takes B; f calls helper while holding A (interprocedural
        // A→B edge); h takes B then A directly (B→A). The must-lockset at
        // helper's entry is ∅ (g also calls it lock-free), so only the
        // call-summary edge closes the cycle.
        let mut kb = KernelBuilder::new();
        let sub = kb.add_subsystem("t");
        let la = kb.alloc_lock(sub);
        let lb = kb.alloc_lock(sub);
        let helper = kb.begin_func("helper", sub);
        kb.emit(Instr::Lock { lock: lb });
        kb.emit(Instr::Unlock { lock: lb });
        kb.end_func();
        let f = kb.begin_func("f", sub);
        kb.emit(Instr::Lock { lock: la });
        kb.emit(Instr::Call { func: helper });
        kb.emit(Instr::Unlock { lock: la });
        kb.end_func();
        kb.add_syscall("f", f, sub, vec![]);
        let g = kb.begin_func("g", sub);
        kb.emit(Instr::Call { func: helper });
        kb.end_func();
        kb.add_syscall("g", g, sub, vec![]);
        let h = kb.begin_func("h", sub);
        kb.emit(Instr::Lock { lock: lb });
        kb.emit(Instr::Lock { lock: la });
        kb.emit(Instr::Unlock { lock: la });
        kb.emit(Instr::Unlock { lock: lb });
        kb.end_func();
        kb.add_syscall("h", h, sub, vec![]);
        let k = kb.finish("t");
        let findings = analyzed(&k);
        let cyc: Vec<_> = findings.iter().filter(|f| f.kind == LintKind::LockOrderCycle).collect();
        assert_eq!(cyc.len(), 1, "findings: {findings:?}");
        assert_eq!(cyc[0].locks, vec![la, lb]);
    }
}
