//! Static may-race analysis.
//!
//! A pair of static memory accesses *may race* when
//!
//! 1. both live in code statically reachable from some syscall (so two
//!    concurrently running STIs can execute them — two STIs may invoke the
//!    same syscall, so no "different syscall" restriction applies),
//! 2. their [`AddrExpr::static_range`]s overlap,
//! 3. at least one is a write, and
//! 4. their must-hold locksets are disjoint.
//!
//! Because the must-lockset under-approximates every dynamic lockset and
//! dynamic coverage is a subset of static reachability, the may-race set
//! **over-approximates** the dynamic [`RaceKey`]s `snowcat-race` can ever
//! report (dynamic ⊆ static — checked by the crate's soundness proptest).
//! That makes it safe to use as a pre-filter: a CTI whose syscalls span no
//! may-race pair cannot produce a race, so the Razzer-PIC queue can skip
//! GNN scoring for it entirely.

use crate::lockset::LocksetAnalysis;
use crate::valueflow::ValueFlow;
use snowcat_cfg::KernelCfg;
use snowcat_kernel::{BlockId, Kernel, SyscallId};
use snowcat_race::RaceKey;
use snowcat_vm::BitSet;
use std::collections::{BTreeMap, HashSet};

/// The static may-race over-approximation for one kernel.
#[derive(Debug, Clone)]
pub struct MayRace {
    keys: HashSet<RaceKey>,
    blocks: BitSet,
    /// Flattened `num_syscalls × num_syscalls` density matrix.
    density: Vec<u64>,
    /// Per-block count of may-race pairs touching the block.
    degree: Vec<u64>,
    num_syscalls: usize,
}

/// Accumulates one may-race set during the sweep.
struct Builder {
    keys: HashSet<RaceKey>,
    blocks: BitSet,
    pair_count: BTreeMap<(BlockId, BlockId), u64>,
    degree: Vec<u64>,
}

impl Builder {
    fn new(num_blocks: usize) -> Self {
        Self {
            keys: HashSet::new(),
            blocks: BitSet::new(num_blocks),
            pair_count: BTreeMap::new(),
            degree: vec![0u64; num_blocks],
        }
    }

    fn insert(&mut self, x: &crate::lockset::AccessInfo, y: &crate::lockset::AccessInfo) {
        if self.keys.insert(RaceKey::new(x.loc, y.loc)) {
            self.blocks.insert(x.loc.block.index());
            self.blocks.insert(y.loc.block.index());
            *self.pair_count.entry((x.loc.block, y.loc.block)).or_insert(0) += 1;
            self.degree[x.loc.block.index()] += 1;
            if y.loc.block != x.loc.block {
                self.degree[y.loc.block.index()] += 1;
            }
        }
    }

    fn finish(self, block_mask: &[Vec<u64>], n_sys: usize) -> MayRace {
        // Expand block-pair counts into the syscall×syscall density matrix.
        let mut density = vec![0u64; n_sys * n_sys];
        for (&(bx, by), &c) in &self.pair_count {
            for s in mask_bits(&block_mask[bx.index()]) {
                for t in mask_bits(&block_mask[by.index()]) {
                    density[s * n_sys + t] += c;
                    density[t * n_sys + s] += c;
                }
            }
        }
        MayRace {
            keys: self.keys,
            blocks: self.blocks,
            density,
            degree: self.degree,
            num_syscalls: n_sys,
        }
    }
}

impl MayRace {
    /// Enumerate the alias-blind (PR 3) may-race set from the lockset
    /// analysis results.
    pub fn compute(kernel: &Kernel, cfg: &KernelCfg, locksets: &LocksetAnalysis) -> Self {
        Self::compute_impl(kernel, cfg, locksets, None).0
    }

    /// Enumerate both the alias-blind set and the **alias-refined** set in
    /// one sweep, returning `(coarse, refined)`. The refined set keeps only
    /// pairs whose value-flow [`crate::valueflow::AccessPattern`]s share a
    /// word, so it is a subset of the coarse set *by construction* (each
    /// refined pair is inserted from the same candidate enumeration, behind
    /// one extra filter) and still over-approximates the dynamic race set
    /// (patterns cover every dynamically resolvable address).
    pub fn compute_refined(
        kernel: &Kernel,
        cfg: &KernelCfg,
        locksets: &LocksetAnalysis,
        vf: &ValueFlow,
    ) -> (Self, Self) {
        let (coarse, refined) = Self::compute_impl(kernel, cfg, locksets, Some(vf));
        (coarse, refined.expect("refined set requested"))
    }

    fn compute_impl(
        kernel: &Kernel,
        cfg: &KernelCfg,
        locksets: &LocksetAnalysis,
        vf: Option<&ValueFlow>,
    ) -> (Self, Option<Self>) {
        let n_sys = kernel.syscalls.len();
        let words = n_sys.div_ceil(64);

        // Per-block bitmask of the syscalls that statically reach it.
        let mut block_mask: Vec<Vec<u64>> = vec![vec![0u64; words]; kernel.num_blocks()];
        for (si, reach) in cfg.syscall_reachability(kernel).iter().enumerate() {
            for b in reach.iter() {
                block_mask[b][si / 64] |= 1 << (si % 64);
            }
        }

        // Accesses reachable from at least one syscall, ordered by the start
        // of their static address range (stable within equal starts because
        // the lockset walk emits in (block, idx) order).
        let mut accs: Vec<(u32, u32, usize)> = locksets
            .accesses
            .iter()
            .enumerate()
            .filter(|(_, a)| block_mask[a.loc.block.index()].iter().any(|&w| w != 0))
            .map(|(i, a)| {
                let (s, e) = a.addr.static_range();
                // A zero-stride Indexed expression has an empty static range
                // but still touches its base word dynamically — widen it.
                (s.0, e.0.max(s.0 + 1), i)
            })
            .collect();
        accs.sort_by_key(|&(s, _, i)| (s, i));

        let mut coarse = Builder::new(kernel.num_blocks());
        let mut refined = vf.map(|_| Builder::new(kernel.num_blocks()));
        for (pos, &(start_i, end_i, i)) in accs.iter().enumerate() {
            debug_assert!(start_i <= end_i);
            let x = &locksets.accesses[i];
            for &(start_j, _, j) in &accs[pos..] {
                if start_j >= end_i {
                    break; // starts are sorted: no later access overlaps x
                }
                let y = &locksets.accesses[j];
                if !(x.is_write || y.is_write) || (x.lockset & y.lockset) != 0 {
                    continue;
                }
                coarse.insert(x, y);
                if let (Some(r), Some(vf)) = (refined.as_mut(), vf) {
                    if vf.may_alias(i, j) {
                        r.insert(x, y);
                    }
                }
            }
        }

        let refined = refined.map(|r| r.finish(&block_mask, n_sys));
        (coarse.finish(&block_mask, n_sys), refined)
    }

    /// Membership test for a (possibly dynamic) race key.
    pub fn contains(&self, key: &RaceKey) -> bool {
        self.keys.contains(key)
    }

    /// Number of unique may-race pairs.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the kernel has no may-race pair at all.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterate the may-race keys (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = &RaceKey> {
        self.keys.iter()
    }

    /// Blocks containing at least one may-racing access — the per-node
    /// `may_race` feature bit the CT-graph builder stamps on vertices.
    pub fn blocks(&self) -> &BitSet {
        &self.blocks
    }

    /// Whether `b` contains a may-racing access.
    pub fn block_may_race(&self, b: BlockId) -> bool {
        self.blocks.contains(b.index())
    }

    /// Number of may-race pairs with at least one access in block `b` —
    /// the per-block race-degree feature channel.
    pub fn block_degree(&self, b: BlockId) -> u64 {
        self.degree[b.index()]
    }

    /// May-race density between two syscalls: the number of may-race pairs
    /// with one access reachable from `a` and the other from `b`.
    pub fn density(&self, a: SyscallId, b: SyscallId) -> u64 {
        self.density[a.index() * self.num_syscalls + b.index()]
    }
}

/// Ascending set-bit indices of a multi-word bitmask.
fn mask_bits(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(|(wi, &w)| {
        let mut m = w;
        std::iter::from_fn(move || {
            if m == 0 {
                None
            } else {
                let i = m.trailing_zeros() as usize;
                m &= m - 1;
                Some(wi * 64 + i)
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowcat_kernel::{generate, AddrExpr, GenConfig, Instr, InstrLoc, KernelBuilder, Reg};

    fn analyze(k: &Kernel) -> (KernelCfg, LocksetAnalysis) {
        let cfg = KernelCfg::build(k);
        let an = LocksetAnalysis::compute(k, &cfg);
        (cfg, an)
    }

    #[test]
    fn unlocked_write_pair_may_race() {
        let mut kb = KernelBuilder::new();
        let sub = kb.add_subsystem("t");
        let a = kb.alloc_region(sub, snowcat_kernel::RegionKind::Flags, 1, "t.flags", 0);
        let f = kb.begin_func("w", sub);
        kb.emit(Instr::Store { addr: AddrExpr::Fixed(a), src: Reg(0) });
        let w_loc = kb.last_loc();
        kb.end_func();
        kb.add_syscall("w", f, sub, vec![]);
        let g = kb.begin_func("r", sub);
        kb.emit(Instr::Load { dst: Reg(0), addr: AddrExpr::Fixed(a) });
        let r_loc = kb.last_loc();
        kb.end_func();
        kb.add_syscall("r", g, sub, vec![]);
        let k = kb.finish("t");
        let (cfg, an) = analyze(&k);
        let mr = MayRace::compute(&k, &cfg, &an);
        assert!(mr.contains(&RaceKey::new(w_loc, r_loc)));
        // The write can also race against itself in two threads.
        assert!(mr.contains(&RaceKey::new(w_loc, w_loc)));
        // But the read cannot self-race (no write involved).
        assert!(!mr.contains(&RaceKey::new(r_loc, r_loc)));
        assert!(mr.block_may_race(w_loc.block));
        assert!(mr.density(SyscallId(0), SyscallId(1)) > 0);
        assert!(mr.density(SyscallId(1), SyscallId(1)) == 0, "read-only syscall self-pair");
    }

    #[test]
    fn consistent_locking_suppresses_the_pair() {
        let mut kb = KernelBuilder::new();
        let sub = kb.add_subsystem("t");
        let a = kb.alloc_region(sub, snowcat_kernel::RegionKind::Flags, 1, "t.flags", 0);
        let l = kb.alloc_lock(sub);
        let mut locs = Vec::new();
        for name in ["w", "r"] {
            let f = kb.begin_func(name, sub);
            kb.emit(Instr::Lock { lock: l });
            if name == "w" {
                kb.emit(Instr::Store { addr: AddrExpr::Fixed(a), src: Reg(0) });
            } else {
                kb.emit(Instr::Load { dst: Reg(0), addr: AddrExpr::Fixed(a) });
            }
            locs.push(kb.last_loc());
            kb.emit(Instr::Unlock { lock: l });
            kb.end_func();
            kb.add_syscall(name, f, sub, vec![]);
        }
        let k = kb.finish("t");
        let (cfg, an) = analyze(&k);
        let mr = MayRace::compute(&k, &cfg, &an);
        assert!(!mr.contains(&RaceKey::new(locs[0], locs[1])), "both hold the same lock");
        assert!(mr.is_empty());
    }

    #[test]
    fn disjoint_addresses_do_not_race() {
        let mut kb = KernelBuilder::new();
        let sub = kb.add_subsystem("t");
        let a = kb.alloc_region(sub, snowcat_kernel::RegionKind::Flags, 2, "t.flags", 0);
        let mut locs = Vec::new();
        for (name, off) in [("w0", 0u32), ("w1", 1u32)] {
            let f = kb.begin_func(name, sub);
            kb.emit(Instr::Store { addr: AddrExpr::Fixed(a.offset(off)), src: Reg(0) });
            locs.push(kb.last_loc());
            kb.end_func();
            kb.add_syscall(name, f, sub, vec![]);
        }
        let k = kb.finish("t");
        let (cfg, an) = analyze(&k);
        let mr = MayRace::compute(&k, &cfg, &an);
        assert!(!mr.contains(&RaceKey::new(locs[0], locs[1])));
    }

    #[test]
    fn code_unreachable_from_syscalls_is_excluded() {
        let mut kb = KernelBuilder::new();
        let sub = kb.add_subsystem("t");
        let a = kb.alloc_region(sub, snowcat_kernel::RegionKind::Flags, 1, "t.flags", 0);
        // A function with a racy store that no syscall references.
        kb.begin_func("orphan", sub);
        kb.emit(Instr::Store { addr: AddrExpr::Fixed(a), src: Reg(0) });
        let orphan_loc = kb.last_loc();
        kb.end_func();
        let f = kb.begin_func("w", sub);
        kb.emit(Instr::Store { addr: AddrExpr::Fixed(a), src: Reg(0) });
        kb.end_func();
        kb.add_syscall("w", f, sub, vec![]);
        let k = kb.finish("t");
        let (cfg, an) = analyze(&k);
        let mr = MayRace::compute(&k, &cfg, &an);
        assert!(!mr.contains(&RaceKey::new(orphan_loc, orphan_loc)));
        assert!(!mr.iter().any(|key| key.0 == orphan_loc || key.1 == orphan_loc));
    }

    #[test]
    fn default_kernel_covers_every_planted_racing_pair() {
        // Every planted bug records racing instruction pairs that can
        // dynamically race, so the static over-approximation must contain
        // the cross-carrier pairs formed from memory accesses among them.
        let k = generate(&GenConfig::default());
        let (cfg, an) = analyze(&k);
        let mr = MayRace::compute(&k, &cfg, &an);
        assert!(!mr.is_empty());
        for bug in &k.bugs {
            let func_of = |loc: InstrLoc| k.block(loc.block).func;
            let mem: Vec<InstrLoc> = bug
                .racing_instrs
                .iter()
                .copied()
                .filter(|&l| k.instr(l).is_some_and(|i| i.is_mem_access()))
                .collect();
            let fa = k.syscall(bug.syscalls.0).func;
            let mut cross_pair_found = false;
            for &x in &mem {
                for &y in &mem {
                    if func_of(x) == fa && func_of(y) != fa && mr.contains(&RaceKey::new(x, y)) {
                        cross_pair_found = true;
                    }
                }
            }
            assert!(cross_pair_found, "bug {} racing pair missing from may-race set", bug.id);
        }
        // Densities are symmetric.
        for bug in &k.bugs {
            let (sa, sb) = bug.syscalls;
            assert_eq!(mr.density(sa, sb), mr.density(sb, sa));
            assert!(mr.density(sa, sb) > 0, "carrier pair must have positive density");
        }
    }

    #[test]
    fn refined_set_prunes_distinct_fields_but_keeps_true_aliases() {
        // Two argument-indexed accesses to *different fields* of the same
        // object array: their static ranges overlap (coarse pair) but their
        // progressions are disjoint (refined prunes). A third access to the
        // same field stays paired in both sets.
        let mut kb = KernelBuilder::new();
        let sub = kb.add_subsystem("t");
        // One spare word keeps the offset-1 field's static range in bounds.
        let base = kb.alloc_region(sub, snowcat_kernel::RegionKind::ObjectArray, 25, "t.obj", 0);
        let field = |off: u32, reg: Reg| AddrExpr::Indexed {
            base: snowcat_kernel::Addr(base.0 + off),
            reg,
            stride: 6,
            len: 4,
        };
        let mut locs = Vec::new();
        for (name, off) in [("w0", 0u32), ("w1", 1u32), ("w2", 0u32)] {
            let f = kb.begin_func(name, sub);
            kb.emit(Instr::Store { addr: field(off, Reg(0)), src: Reg(1) });
            locs.push(kb.last_loc());
            kb.end_func();
            kb.add_syscall(name, f, sub, vec![3]);
        }
        let k = kb.finish("t");
        let (cfg, an) = analyze(&k);
        let vf = crate::valueflow::ValueFlow::compute(&k, &cfg, &an);
        let (coarse, refined) = MayRace::compute_refined(&k, &cfg, &an, &vf);
        let cross = RaceKey::new(locs[0], locs[1]);
        let same = RaceKey::new(locs[0], locs[2]);
        assert!(coarse.contains(&cross), "alias-blind set keeps the field-crossing pair");
        assert!(!refined.contains(&cross), "refined set prunes the field-crossing pair");
        assert!(coarse.contains(&same) && refined.contains(&same));
        assert!(refined.len() < coarse.len());
        assert!(refined.block_degree(locs[0].block) < coarse.block_degree(locs[0].block));
    }

    #[test]
    fn refined_is_strict_subset_on_generated_kernels() {
        for version in [snowcat_kernel::KernelVersion::V5_12, snowcat_kernel::KernelVersion::V6_1] {
            let k = version.spec(42).build();
            let version = version.tag();
            let (cfg, an) = analyze(&k);
            let vf = crate::valueflow::ValueFlow::compute(&k, &cfg, &an);
            let (coarse, refined) = MayRace::compute_refined(&k, &cfg, &an, &vf);
            for key in refined.iter() {
                assert!(coarse.contains(key), "{version}: refined ⊄ coarse at {key:?}");
            }
            assert!(
                refined.len() < coarse.len(),
                "{version}: refinement must prune pairs ({} vs {})",
                refined.len(),
                coarse.len()
            );
            // Zero planted-bug candidates dropped: every cross-carrier
            // racing pair survives refinement.
            for bug in &k.bugs {
                let mem: Vec<_> = bug
                    .racing_instrs
                    .iter()
                    .copied()
                    .filter(|&l| k.instr(l).is_some_and(|i| i.is_mem_access()))
                    .collect();
                let fa = k.syscall(bug.syscalls.0).func;
                let func_of = |loc: InstrLoc| k.block(loc.block).func;
                let covered = mem.iter().any(|&x| {
                    mem.iter().any(|&y| {
                        func_of(x) == fa
                            && func_of(y) != fa
                            && refined.contains(&RaceKey::new(x, y))
                    })
                });
                assert!(covered, "{version}: bug {} refined away", bug.id);
            }
        }
    }
}
