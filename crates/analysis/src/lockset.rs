//! Must-hold lockset dataflow analysis.
//!
//! A forward fixpoint over the whole-kernel [`KernelCfg`] computing, for
//! every program point, the set of locks that are *definitely* held on every
//! path from a syscall entry to that point (a classic must-analysis with
//! set intersection at joins). Locksets are `u64` bitmasks (bit `i` = lock
//! `i`), matching the VM's dynamic lockset representation, so static and
//! dynamic locksets are directly comparable.
//!
//! The analysis is interprocedural and runs in two phases:
//!
//! 1. **Summaries** — each function gets a `(gen, kill)` transfer summary
//!    (meet over all entry→`Ret` paths of the composed per-instruction
//!    transfers), computed bottom-up over the call graph; recursive cycles
//!    fall back to the sound havoc summary "nothing is known held after the
//!    call".
//! 2. **Absolute propagation** — syscall entry blocks are seeded with the
//!    empty lockset, and absolute must-locksets flow through terminator
//!    edges and `Call` sites (the callee entry receives the caller's set;
//!    the continuation applies the callee's summary). Blocks not reachable
//!    from any syscall stay ⊤ (`None`).
//!
//! Soundness invariant (exercised by the crate's proptest suite): the
//! must-lockset of a memory access is a subset of the dynamic lockset the
//! VM records for *any* execution of that access.

use snowcat_cfg::KernelCfg;
use snowcat_kernel::{AddrExpr, BlockId, FuncId, Instr, InstrLoc, Kernel, LockId, Terminator};
use std::collections::VecDeque;

/// A lockset transfer function: `apply(S) = (S & !kill) | gen`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Transfer {
    gen: u64,
    kill: u64,
}

impl Transfer {
    /// The identity transfer (empty straight-line code).
    const IDENTITY: Transfer = Transfer { gen: 0, kill: 0 };

    /// Sound worst case: after the step nothing is known to be held.
    const HAVOC: Transfer = Transfer { gen: 0, kill: u64::MAX };

    /// Apply to an absolute lockset.
    fn apply(self, s: u64) -> u64 {
        (s & !self.kill) | self.gen
    }

    /// Sequential composition: first `self`, then `next`.
    fn then(self, next: Transfer) -> Transfer {
        Transfer { gen: (self.gen & !next.kill) | next.gen, kill: self.kill | next.kill }
    }

    /// Must-analysis meet: the result under-approximates both operands
    /// (a lock is generated only if both paths generate it; killed if
    /// either path may kill it).
    fn meet(self, other: Transfer) -> Transfer {
        Transfer { gen: self.gen & other.gen, kill: self.kill | other.kill }
    }
}

/// One static shared-memory access annotated with its must-hold lockset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessInfo {
    /// Static location of the load/store.
    pub loc: InstrLoc,
    /// Its effective-address expression.
    pub addr: AddrExpr,
    /// True for stores.
    pub is_write: bool,
    /// Must-hold lockset bitmask at the access (bit `i` = lock `i`).
    pub lockset: u64,
}

/// A lock-discipline event observed during the final deterministic walk.
/// Converted into [`crate::lints::StaticFinding`]s by the lint pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockEvent {
    /// `Lock l` executed while `l` is definitely already held.
    DoubleLock {
        /// The acquiring instruction.
        loc: InstrLoc,
        /// The re-acquired lock.
        lock: LockId,
    },
    /// `Unlock l` executed while `l` is not in the must-held set.
    UnlockNotHeld {
        /// The releasing instruction.
        loc: InstrLoc,
        /// The released lock.
        lock: LockId,
    },
    /// A function returns while still holding a lock it acquired itself.
    Leak {
        /// Position just past the last instruction of the returning block.
        loc: InstrLoc,
        /// The leaked lock.
        lock: LockId,
    },
    /// `acquired` taken while `held` was held — an edge of the lock-order
    /// graph used for static deadlock-candidate detection.
    Order {
        /// The already-held lock.
        held: LockId,
        /// The newly acquired lock.
        acquired: LockId,
        /// The acquiring instruction.
        loc: InstrLoc,
    },
}

/// Result of the must-hold lockset dataflow over one kernel.
#[derive(Debug, Clone)]
pub struct LocksetAnalysis {
    /// Must-lockset at each block's entry; `None` = not reachable from any
    /// syscall entry (⊤ of the must lattice).
    block_entry: Vec<Option<u64>>,
    /// Must-lockset at each function's entry (0 for unreachable functions).
    func_entry: Vec<u64>,
    /// Locks each function *may* acquire, in itself or any (transitive)
    /// callee — the bottom-up summary behind the interprocedural
    /// lock-order edges.
    may_acquire: Vec<u64>,
    /// Every static memory access with its must-hold lockset, in
    /// deterministic (block, index) order. Unreachable code is excluded.
    pub accesses: Vec<AccessInfo>,
    /// Lock-discipline events in deterministic order.
    pub events: Vec<LockEvent>,
    /// Number of fixpoint block visits (reported by the throughput bench).
    pub fixpoint_visits: usize,
}

impl LocksetAnalysis {
    /// Run the analysis.
    ///
    /// # Panics
    /// Panics if the kernel uses more than 64 locks (same limit as the VM).
    pub fn compute(kernel: &Kernel, cfg: &KernelCfg) -> Self {
        assert!(kernel.num_locks <= 64, "lockset bitmask supports at most 64 locks");
        let summaries = summarize_functions(kernel);
        let may_acquire = may_acquire_summaries(kernel);
        let mut visits = 0usize;

        // Phase 2: absolute must-locksets, seeded at syscall entries.
        let n = kernel.num_blocks();
        let mut entry_in: Vec<Option<u64>> = vec![None; n];
        let mut queue: VecDeque<BlockId> = VecDeque::new();
        let mut queued = vec![false; n];
        let meet_into = |entry_in: &mut Vec<Option<u64>>,
                         queue: &mut VecDeque<BlockId>,
                         queued: &mut Vec<bool>,
                         b: BlockId,
                         s: u64| {
            let merged = match entry_in[b.index()] {
                None => s,
                Some(prev) => prev & s,
            };
            if entry_in[b.index()] != Some(merged) {
                entry_in[b.index()] = Some(merged);
                if !queued[b.index()] {
                    queued[b.index()] = true;
                    queue.push_back(b);
                }
            }
        };
        for sc in &kernel.syscalls {
            let entry = cfg.entry(sc.func);
            meet_into(&mut entry_in, &mut queue, &mut queued, entry, 0);
        }
        while let Some(b) = queue.pop_front() {
            queued[b.index()] = false;
            visits += 1;
            let Some(mut cur) = entry_in[b.index()] else { continue };
            let block = kernel.block(b);
            for ins in &block.instrs {
                match ins {
                    Instr::Lock { lock } => cur |= 1 << lock.0,
                    Instr::Unlock { lock } => cur &= !(1 << lock.0),
                    Instr::Call { func } => {
                        let callee_entry = cfg.entry(*func);
                        meet_into(&mut entry_in, &mut queue, &mut queued, callee_entry, cur);
                        cur = summaries[func.index()].apply(cur);
                    }
                    _ => {}
                }
            }
            for succ in block.term.successors() {
                meet_into(&mut entry_in, &mut queue, &mut queued, succ, cur);
            }
        }

        // Function-entry locksets (for the leak lint: a function that was
        // *entered* holding a lock may legitimately return holding it).
        let func_entry: Vec<u64> =
            kernel.funcs.iter().map(|f| entry_in[f.entry.index()].unwrap_or(0)).collect();

        // Phase 3: deterministic walk collecting per-access locksets and
        // lock-discipline events. `entry_in` is already the meet over every
        // reaching context, so one pass per block suffices.
        let mut accesses = Vec::new();
        let mut events = Vec::new();
        for (bi, block) in kernel.blocks.iter().enumerate() {
            let b = BlockId(bi as u32);
            let Some(mut cur) = entry_in[bi] else { continue };
            for (ii, ins) in block.instrs.iter().enumerate() {
                let loc = InstrLoc::new(b, ii as u16);
                match ins {
                    Instr::Load { addr, .. } => {
                        accesses.push(AccessInfo {
                            loc,
                            addr: *addr,
                            is_write: false,
                            lockset: cur,
                        });
                    }
                    Instr::Store { addr, .. } => {
                        accesses.push(AccessInfo {
                            loc,
                            addr: *addr,
                            is_write: true,
                            lockset: cur,
                        });
                    }
                    Instr::Lock { lock } => {
                        let bit = 1u64 << lock.0;
                        if cur & bit != 0 {
                            events.push(LockEvent::DoubleLock { loc, lock: *lock });
                        }
                        for h in bits(cur) {
                            events.push(LockEvent::Order {
                                held: LockId(h as u16),
                                acquired: *lock,
                                loc,
                            });
                        }
                        cur |= bit;
                    }
                    Instr::Unlock { lock } => {
                        let bit = 1u64 << lock.0;
                        if cur & bit == 0 {
                            events.push(LockEvent::UnlockNotHeld { loc, lock: *lock });
                        }
                        cur &= !bit;
                    }
                    Instr::Call { func } => {
                        // Interprocedural lock-order edges: every lock the
                        // callee may (transitively) acquire orders after
                        // every lock definitely held at the call site —
                        // even when other call sites' meet erases the held
                        // set from the callee's own must-entry.
                        for h in bits(cur) {
                            for a in bits(may_acquire[func.index()] & !(1 << h)) {
                                events.push(LockEvent::Order {
                                    held: LockId(h as u16),
                                    acquired: LockId(a as u16),
                                    loc,
                                });
                            }
                        }
                        cur = summaries[func.index()].apply(cur);
                    }
                    _ => {}
                }
            }
            if matches!(block.term, Terminator::Ret) {
                let leaked = cur & !func_entry[block.func.index()];
                for l in bits(leaked) {
                    events.push(LockEvent::Leak {
                        loc: InstrLoc::new(b, block.instrs.len() as u16),
                        lock: LockId(l as u16),
                    });
                }
            }
        }

        Self {
            block_entry: entry_in,
            func_entry,
            may_acquire,
            accesses,
            events,
            fixpoint_visits: visits,
        }
    }

    /// Must-lockset at a block's entry (`None` = unreachable from syscalls).
    pub fn block_entry(&self, b: BlockId) -> Option<u64> {
        self.block_entry[b.index()]
    }

    /// Must-lockset at a function's entry (0 for unreachable functions).
    pub fn func_entry(&self, f: FuncId) -> u64 {
        self.func_entry[f.index()]
    }

    /// Bitmask of locks function `f` may acquire, including in callees.
    pub fn may_acquire(&self, f: FuncId) -> u64 {
        self.may_acquire[f.index()]
    }

    /// Must-lockset of the memory access at `loc`, if `loc` is a reachable
    /// load or store.
    pub fn access_lockset(&self, loc: InstrLoc) -> Option<u64> {
        // `accesses` is sorted by (block, idx) — the walk emits in order.
        self.accesses.binary_search_by_key(&loc, |a| a.loc).ok().map(|i| self.accesses[i].lockset)
    }
}

/// Iterate the set bit indices of a bitmask, ascending.
fn bits(mut mask: u64) -> impl Iterator<Item = u32> {
    std::iter::from_fn(move || {
        if mask == 0 {
            None
        } else {
            let i = mask.trailing_zeros();
            mask &= mask - 1;
            Some(i)
        }
    })
}

/// Phase 1: per-function `(gen, kill)` summaries, bottom-up over the call
/// graph. Recursive cycles get the havoc summary.
fn summarize_functions(kernel: &Kernel) -> Vec<Transfer> {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Unvisited,
        InProgress,
        Done,
    }
    struct Ctx<'k> {
        kernel: &'k Kernel,
        state: Vec<State>,
        summary: Vec<Transfer>,
    }
    fn visit(ctx: &mut Ctx<'_>, f: FuncId) -> Transfer {
        match ctx.state[f.index()] {
            State::Done => return ctx.summary[f.index()],
            // A cycle in the call graph: nothing is known across the call.
            State::InProgress => return Transfer::HAVOC,
            State::Unvisited => {}
        }
        ctx.state[f.index()] = State::InProgress;
        // Resolve callee summaries first (generated kernels have call depth
        // 1, but the traversal handles arbitrary acyclic nesting).
        let callees: Vec<FuncId> = ctx
            .kernel
            .func(f)
            .blocks
            .iter()
            .flat_map(|&b| ctx.kernel.block(b).instrs.iter())
            .filter_map(|i| match i {
                Instr::Call { func } => Some(*func),
                _ => None,
            })
            .collect();
        let mut callee_sums = vec![Transfer::HAVOC; ctx.kernel.funcs.len()];
        for c in callees {
            callee_sums[c.index()] = visit(ctx, c);
        }
        let s = function_summary(ctx.kernel, f, &callee_sums);
        ctx.state[f.index()] = State::Done;
        ctx.summary[f.index()] = s;
        s
    }
    let mut ctx = Ctx {
        kernel,
        state: vec![State::Unvisited; kernel.funcs.len()],
        summary: vec![Transfer::IDENTITY; kernel.funcs.len()],
    };
    for fi in 0..kernel.funcs.len() {
        visit(&mut ctx, FuncId(fi as u32));
    }
    ctx.summary
}

/// Bottom-up may-acquire summaries: the union of every `Lock` a function
/// (or any transitive callee) contains. A simple fixpoint handles call
/// cycles soundly — "may" information only grows.
fn may_acquire_summaries(kernel: &Kernel) -> Vec<u64> {
    let n = kernel.funcs.len();
    let mut own = vec![0u64; n];
    let mut callees: Vec<Vec<FuncId>> = vec![Vec::new(); n];
    for (fi, func) in kernel.funcs.iter().enumerate() {
        for &b in &func.blocks {
            for ins in &kernel.block(b).instrs {
                match ins {
                    Instr::Lock { lock } => own[fi] |= 1 << lock.0,
                    Instr::Call { func } => callees[fi].push(*func),
                    _ => {}
                }
            }
        }
    }
    let mut may = own;
    loop {
        let mut changed = false;
        for fi in 0..n {
            let mut m = may[fi];
            for c in &callees[fi] {
                m |= may[c.index()];
            }
            if m != may[fi] {
                may[fi] = m;
                changed = true;
            }
        }
        if !changed {
            return may;
        }
    }
}

/// Intra-function transfer fixpoint: meet of composed transfers over all
/// entry→`Ret` paths.
fn function_summary(kernel: &Kernel, f: FuncId, callee_sums: &[Transfer]) -> Transfer {
    let func = kernel.func(f);
    // Transfer reaching each block's entry, relative to the function entry.
    let mut t_in: Vec<Option<Transfer>> = vec![None; kernel.num_blocks()];
    t_in[func.entry.index()] = Some(Transfer::IDENTITY);
    let mut queue: VecDeque<BlockId> = VecDeque::from([func.entry]);
    let mut exit: Option<Transfer> = None;
    // Worklist over the (finite, monotone) transfer lattice.
    while let Some(b) = queue.pop_front() {
        let Some(mut t) = t_in[b.index()] else { continue };
        let block = kernel.block(b);
        for ins in &block.instrs {
            match ins {
                Instr::Lock { lock } => {
                    t = t.then(Transfer { gen: 1 << lock.0, kill: 0 });
                }
                Instr::Unlock { lock } => {
                    t = t.then(Transfer { gen: 0, kill: 1 << lock.0 });
                }
                Instr::Call { func } => t = t.then(callee_sums[func.index()]),
                _ => {}
            }
        }
        if matches!(block.term, Terminator::Ret) {
            exit = Some(match exit {
                None => t,
                Some(e) => e.meet(t),
            });
        }
        for succ in block.term.successors() {
            let merged = match t_in[succ.index()] {
                None => t,
                Some(prev) => prev.meet(t),
            };
            if t_in[succ.index()] != Some(merged) {
                t_in[succ.index()] = Some(merged);
                queue.push_back(succ);
            }
        }
    }
    // A function with no reachable Ret (cannot happen for generated code).
    exit.unwrap_or(Transfer::HAVOC)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowcat_kernel::{generate, CmpOp, GenConfig, KernelBuilder, Reg};

    #[test]
    fn transfer_algebra() {
        let lock0 = Transfer { gen: 1, kill: 0 };
        let unlock0 = Transfer { gen: 0, kill: 1 };
        assert_eq!(lock0.apply(0), 1);
        assert_eq!(unlock0.apply(1), 0);
        assert_eq!(lock0.then(unlock0).apply(0), 0);
        assert_eq!(unlock0.then(lock0).apply(0), 1);
        // Meet under-approximates: lock-on-one-path generates nothing.
        assert_eq!(lock0.meet(Transfer::IDENTITY).apply(0), 0);
        // But a kill on either path kills.
        assert_eq!(unlock0.meet(Transfer::IDENTITY).apply(1), 0);
    }

    #[test]
    fn straight_line_lock_region_has_exact_locksets() {
        let mut kb = KernelBuilder::new();
        let sub = kb.add_subsystem("t");
        let a = kb.alloc_region(sub, snowcat_kernel::RegionKind::Flags, 2, "t.flags", 0);
        let l = kb.alloc_lock(sub);
        let f = kb.begin_func("f", sub);
        kb.emit(Instr::Load { dst: Reg(0), addr: AddrExpr::Fixed(a) });
        kb.emit(Instr::Lock { lock: l });
        kb.emit(Instr::Store { addr: AddrExpr::Fixed(a), src: Reg(0) });
        kb.emit(Instr::Unlock { lock: l });
        kb.emit(Instr::Load { dst: Reg(1), addr: AddrExpr::Fixed(a.offset(1)) });
        kb.end_func();
        kb.add_syscall("t_call", f, sub, vec![]);
        let k = kb.finish("t");
        let cfg = KernelCfg::build(&k);
        let an = LocksetAnalysis::compute(&k, &cfg);
        let locksets: Vec<u64> = an.accesses.iter().map(|x| x.lockset).collect();
        assert_eq!(locksets, vec![0, 1, 0]);
        assert!(an.events.is_empty());
    }

    #[test]
    fn branch_join_intersects() {
        // Lock is taken on only one branch arm; after the join it must not
        // be in the must-set.
        let mut kb = KernelBuilder::new();
        let sub = kb.add_subsystem("t");
        let a = kb.alloc_region(sub, snowcat_kernel::RegionKind::Flags, 1, "t.flags", 0);
        let l = kb.alloc_lock(sub);
        let f = kb.begin_func("f", sub);
        kb.emit(Instr::Load { dst: Reg(0), addr: AddrExpr::Fixed(a) });
        let (then_blk, else_blk) = kb.branch(Reg(0), CmpOp::Eq, 0);
        let join = kb.new_block();
        kb.set_cur(then_blk);
        kb.emit(Instr::Lock { lock: l });
        kb.jump_to(join);
        kb.set_cur(else_blk);
        kb.jump_to(join);
        kb.set_cur(join);
        kb.emit(Instr::Store { addr: AddrExpr::Fixed(a), src: Reg(0) });
        kb.emit(Instr::Unlock { lock: l });
        kb.end_func();
        kb.add_syscall("t_call", f, sub, vec![]);
        let k = kb.finish("t");
        let cfg = KernelCfg::build(&k);
        let an = LocksetAnalysis::compute(&k, &cfg);
        let store = an.accesses.iter().find(|x| x.is_write).unwrap();
        assert_eq!(store.lockset, 0, "one-armed lock must not survive the join");
        // The unlock after the join releases a lock not in the must-set.
        assert!(an
            .events
            .iter()
            .any(|e| matches!(e, LockEvent::UnlockNotHeld { lock, .. } if *lock == l)));
    }

    #[test]
    fn call_propagates_lockset_into_helper() {
        let mut kb = KernelBuilder::new();
        let sub = kb.add_subsystem("t");
        let a = kb.alloc_region(sub, snowcat_kernel::RegionKind::Flags, 1, "t.flags", 0);
        let l = kb.alloc_lock(sub);
        let helper = kb.begin_func("helper", sub);
        kb.emit(Instr::Store { addr: AddrExpr::Fixed(a), src: Reg(0) });
        kb.end_func();
        let f = kb.begin_func("f", sub);
        kb.emit(Instr::Lock { lock: l });
        kb.emit(Instr::Call { func: helper });
        kb.emit(Instr::Unlock { lock: l });
        kb.end_func();
        kb.add_syscall("t_call", f, sub, vec![]);
        let k = kb.finish("t");
        let cfg = KernelCfg::build(&k);
        let an = LocksetAnalysis::compute(&k, &cfg);
        // The helper's store inherits the caller's held lock.
        let store = an.accesses.iter().find(|x| x.is_write).unwrap();
        assert_eq!(store.lockset, 1 << l.0);
        // The helper returns holding only what it was entered with: no leak.
        assert!(an.events.is_empty(), "events: {:?}", an.events);
    }

    #[test]
    fn leak_and_double_lock_are_reported() {
        let mut kb = KernelBuilder::new();
        let sub = kb.add_subsystem("t");
        let l = kb.alloc_lock(sub);
        let f = kb.begin_func("f", sub);
        kb.emit(Instr::Lock { lock: l });
        kb.emit(Instr::Lock { lock: l });
        kb.end_func();
        kb.add_syscall("t_call", f, sub, vec![]);
        let k = kb.finish("t");
        let cfg = KernelCfg::build(&k);
        let an = LocksetAnalysis::compute(&k, &cfg);
        assert!(an.events.iter().any(|e| matches!(e, LockEvent::DoubleLock { .. })));
        assert!(an.events.iter().any(|e| matches!(e, LockEvent::Leak { .. })));
    }

    #[test]
    fn lock_order_edges_recorded() {
        let mut kb = KernelBuilder::new();
        let sub = kb.add_subsystem("t");
        let l0 = kb.alloc_lock(sub);
        let l1 = kb.alloc_lock(sub);
        let f = kb.begin_func("f", sub);
        kb.emit(Instr::Lock { lock: l0 });
        kb.emit(Instr::Lock { lock: l1 });
        kb.emit(Instr::Unlock { lock: l1 });
        kb.emit(Instr::Unlock { lock: l0 });
        kb.end_func();
        kb.add_syscall("t_call", f, sub, vec![]);
        let k = kb.finish("t");
        let cfg = KernelCfg::build(&k);
        let an = LocksetAnalysis::compute(&k, &cfg);
        assert!(an.events.iter().any(
            |e| matches!(e, LockEvent::Order { held, acquired, .. } if *held == l0 && *acquired == l1)
        ));
    }

    #[test]
    fn call_site_records_interprocedural_order_edge() {
        // helper locks B; f calls it holding A, g calls it lock-free. The
        // meet erases A from helper's must-entry, so the intra-procedural
        // walk alone would miss the A→B ordering — the call-site summary
        // edge must recover it.
        let mut kb = KernelBuilder::new();
        let sub = kb.add_subsystem("t");
        let la = kb.alloc_lock(sub);
        let lb = kb.alloc_lock(sub);
        let helper = kb.begin_func("helper", sub);
        kb.emit(Instr::Lock { lock: lb });
        kb.emit(Instr::Unlock { lock: lb });
        kb.end_func();
        let f = kb.begin_func("f", sub);
        kb.emit(Instr::Lock { lock: la });
        kb.emit(Instr::Call { func: helper });
        kb.emit(Instr::Unlock { lock: la });
        kb.end_func();
        kb.add_syscall("t_f", f, sub, vec![]);
        let g = kb.begin_func("g", sub);
        kb.emit(Instr::Call { func: helper });
        kb.end_func();
        kb.add_syscall("t_g", g, sub, vec![]);
        let k = kb.finish("t");
        let cfg = KernelCfg::build(&k);
        let an = LocksetAnalysis::compute(&k, &cfg);
        assert_eq!(an.may_acquire(helper), 1 << lb.0);
        assert_eq!(an.may_acquire(f), (1 << la.0) | (1 << lb.0));
        assert!(
            an.events.iter().any(
                |e| matches!(e, LockEvent::Order { held, acquired, .. } if *held == la && *acquired == lb)
            ),
            "events: {:?}",
            an.events
        );
    }

    #[test]
    fn default_kernel_accesses_are_sorted_and_reachable() {
        let k = generate(&GenConfig::default());
        let cfg = KernelCfg::build(&k);
        let an = LocksetAnalysis::compute(&k, &cfg);
        assert!(!an.accesses.is_empty());
        for w in an.accesses.windows(2) {
            assert!(w[0].loc < w[1].loc, "accesses must be in (block, idx) order");
        }
        for a in &an.accesses {
            assert!(an.block_entry(a.loc.block).is_some());
            assert_eq!(an.access_lockset(a.loc), Some(a.lockset));
        }
    }
}
