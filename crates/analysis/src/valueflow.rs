//! Interprocedural value-flow / alias analysis.
//!
//! A flow-sensitive **interval propagation** over the 16 VM registers,
//! mirroring the lockset pass's structure: absolute states are seeded at
//! syscall entries and pushed through terminator edges and `Call` sites in
//! one whole-kernel worklist fixpoint. The VM's calling convention makes
//! the summary phase degenerate: a `Call` pushes a *copy* of the caller's
//! register file and callee writes never propagate back, so the transfer
//! summary of every function is the identity on caller registers and the
//! interprocedural flow is purely forward (callee entries join the caller
//! state at each call site). The abstract state tracks, per register, a
//! signed interval `[lo, hi]` with ⊤ = the full `i64` range:
//!
//! * syscall entry: `r0..r2` = ⊤ (fuzzer-chosen arguments), `r3..r15` =
//!   exactly `[0, 0]` (the VM zeroes scratch registers),
//! * `Const` is exact, `BinOp` uses interval arithmetic (⊤ on overflow;
//!   bitwise ops are exact only for singleton operands),
//! * `Load` destroys the destination (shared memory is unordered),
//! * joins widen to ⊤ after a bounded number of refinements per block, so
//!   loops terminate.
//!
//! On top of the fixpoint, every static memory access is resolved to an
//! [`AccessPattern`] — an arithmetic progression `start + i·stride`,
//! `i < count` of words the access may touch. Patterns are **sound**
//! (every dynamically resolved address is in the pattern, because the
//! interval covers every dynamic register value and `Indexed` resolution
//! wraps the index into `[0, len)`) and **no coarser than
//! [`snowcat_kernel::AddrExpr::static_range`]** (the progression is a
//! subset of the full range), which is what puts the refined may-race set
//! between the dynamic race set and the PR 3 set. Accesses whose patterns
//! overlap are merged into **alias classes** (union-find), giving the
//! per-block alias-class density channel the CT-graph feature schema
//! consumes, and singleton store operands are recorded as **constant
//! stores** for the store-to-constant-address conflict lint.

use crate::lockset::LocksetAnalysis;
use snowcat_cfg::KernelCfg;
use snowcat_kernel::ids::NUM_REGS;
use snowcat_kernel::{AddrExpr, BinOp, BlockId, Instr, InstrLoc, Kernel};
use std::collections::VecDeque;

/// A signed value interval; ⊤ is the full `i64` range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Smallest possible value.
    pub lo: i64,
    /// Largest possible value.
    pub hi: i64,
}

impl Interval {
    /// The unconstrained interval (every `i64`).
    pub const TOP: Interval = Interval { lo: i64::MIN, hi: i64::MAX };

    /// The exact singleton interval `[v, v]`.
    pub fn exact(v: i64) -> Self {
        Self { lo: v, hi: v }
    }

    /// The single value, if the interval is a singleton.
    pub fn singleton(self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Least upper bound.
    fn join(self, o: Self) -> Self {
        Self { lo: self.lo.min(o.lo), hi: self.hi.max(o.hi) }
    }

    /// Widening join: any growing bound jumps straight to the ⊤ bound, so
    /// ascending chains are finite.
    fn widen_join(self, o: Self) -> Self {
        Self {
            lo: if o.lo < self.lo { i64::MIN } else { self.lo },
            hi: if o.hi > self.hi { i64::MAX } else { self.hi },
        }
    }

    /// Sound abstract counterpart of [`BinOp::eval`]. Arithmetic that may
    /// overflow (the VM wraps) degrades to ⊤; bitwise operations are exact
    /// for singletons only.
    fn binop(op: BinOp, a: Self, b: Self) -> Self {
        match op {
            BinOp::Add => match (a.lo.checked_add(b.lo), a.hi.checked_add(b.hi)) {
                (Some(lo), Some(hi)) => Self { lo, hi },
                _ => Self::TOP,
            },
            BinOp::Sub => match (a.lo.checked_sub(b.hi), a.hi.checked_sub(b.lo)) {
                (Some(lo), Some(hi)) => Self { lo, hi },
                _ => Self::TOP,
            },
            BinOp::Mul => {
                let mut lo = i64::MAX;
                let mut hi = i64::MIN;
                for x in [a.lo, a.hi] {
                    for y in [b.lo, b.hi] {
                        match x.checked_mul(y) {
                            Some(v) => {
                                lo = lo.min(v);
                                hi = hi.max(v);
                            }
                            None => return Self::TOP,
                        }
                    }
                }
                Self { lo, hi }
            }
            BinOp::And | BinOp::Or | BinOp::Xor => match (a.singleton(), b.singleton()) {
                (Some(x), Some(y)) => Self::exact(op.eval(x, y)),
                _ => Self::TOP,
            },
        }
    }
}

/// Abstract register file: one interval per VM register.
type RegState = [Interval; NUM_REGS];

/// Register state at a syscall entry: arguments unconstrained, scratch
/// registers exactly zero (matching `snowcat-vm`'s frame initialization).
fn syscall_entry_state() -> RegState {
    let mut s = [Interval::exact(0); NUM_REGS];
    s[0] = Interval::TOP;
    s[1] = Interval::TOP;
    s[2] = Interval::TOP;
    s
}

/// Apply one instruction's effect on the abstract register file. `Call` is
/// the identity on the *caller's* registers (the callee gets a copy).
fn step(ins: &Instr, s: &mut RegState) {
    match ins {
        Instr::Const { dst, val } => s[dst.index()] = Interval::exact(*val),
        Instr::BinOp { op, dst, lhs, rhs } => {
            s[dst.index()] = Interval::binop(*op, s[lhs.index()], s[rhs.index()]);
        }
        Instr::Load { dst, .. } => s[dst.index()] = Interval::TOP,
        _ => {}
    }
}

/// Joins a block tolerates before its entry state is widened to ⊤ bounds.
const WIDEN_AFTER: u32 = 3;

/// Progressions longer than this fall back to range-overlap (sound but
/// coarse) instead of element enumeration.
const ENUM_CAP: u32 = 4096;

/// The set of words one static access may touch, as an arithmetic
/// progression `{ start + i·stride | 0 ≤ i < count }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessPattern {
    /// First word.
    pub start: u32,
    /// Distance between consecutive words (≥ 1).
    pub stride: u32,
    /// Number of words (≥ 1).
    pub count: u32,
}

impl AccessPattern {
    /// A single-word pattern.
    pub fn word(start: u32) -> Self {
        Self { start, stride: 1, count: 1 }
    }

    /// The last word of the progression.
    pub fn last(self) -> u32 {
        self.start + (self.count - 1) * self.stride
    }

    /// The covering word range `[start, end)` (superset of the pattern).
    pub fn range(self) -> (u32, u32) {
        (self.start, self.last() + 1)
    }

    /// Whether word `w` is in the progression.
    pub fn contains(self, w: u32) -> bool {
        w >= self.start && w <= self.last() && (w - self.start).is_multiple_of(self.stride)
    }

    /// Whether two patterns share at least one word. Exact for equal
    /// strides (congruence test) and for progressions up to [`ENUM_CAP`]
    /// elements; beyond that it soundly falls back to range overlap.
    pub fn overlaps(self, o: Self) -> bool {
        if self.last() < o.start || o.last() < self.start {
            return false;
        }
        if self.count == 1 {
            return o.contains(self.start);
        }
        if o.count == 1 {
            return self.contains(o.start);
        }
        if self.stride == o.stride {
            // Ranges overlap (checked above); same stride ⇒ they share a
            // word iff the starts are congruent modulo the stride.
            let (a, b) = (self.start.min(o.start), self.start.max(o.start));
            return (b - a).is_multiple_of(self.stride);
        }
        let (small, big) = if self.count <= o.count { (self, o) } else { (o, self) };
        if small.count > ENUM_CAP {
            return true; // sound fallback: ranges overlap
        }
        (0..small.count).any(|i| big.contains(small.start + i * small.stride))
    }
}

/// Result of the value-flow pass: per-access address patterns, constant
/// store values, alias classes and the per-block alias-class density
/// channel. All per-access vectors are index-aligned with
/// [`LocksetAnalysis::accesses`].
#[derive(Debug, Clone)]
pub struct ValueFlow {
    patterns: Vec<AccessPattern>,
    store_values: Vec<Option<i64>>,
    class: Vec<u32>,
    num_classes: usize,
    block_density: Vec<u8>,
    /// Number of fixpoint block visits (reported by the throughput bench).
    pub fixpoint_visits: usize,
}

impl ValueFlow {
    /// Run the interval fixpoint and resolve every reachable access.
    pub fn compute(kernel: &Kernel, cfg: &KernelCfg, locksets: &LocksetAnalysis) -> Self {
        let n = kernel.num_blocks();
        let mut entry_in: Vec<Option<RegState>> = vec![None; n];
        let mut updates = vec![0u32; n];
        let mut queue: VecDeque<BlockId> = VecDeque::new();
        let mut queued = vec![false; n];
        let mut visits = 0usize;

        let join_into = |entry_in: &mut Vec<Option<RegState>>,
                         updates: &mut Vec<u32>,
                         queue: &mut VecDeque<BlockId>,
                         queued: &mut Vec<bool>,
                         b: BlockId,
                         s: &RegState| {
            let bi = b.index();
            let merged = match &entry_in[bi] {
                None => *s,
                Some(prev) => {
                    let widen = updates[bi] >= WIDEN_AFTER;
                    let mut m = *prev;
                    for (mr, sr) in m.iter_mut().zip(s.iter()) {
                        *mr = if widen { mr.widen_join(*sr) } else { mr.join(*sr) };
                    }
                    m
                }
            };
            if entry_in[bi].as_ref() != Some(&merged) {
                entry_in[bi] = Some(merged);
                updates[bi] += 1;
                if !queued[bi] {
                    queued[bi] = true;
                    queue.push_back(b);
                }
            }
        };

        for sc in &kernel.syscalls {
            let entry = cfg.entry(sc.func);
            join_into(
                &mut entry_in,
                &mut updates,
                &mut queue,
                &mut queued,
                entry,
                &syscall_entry_state(),
            );
        }
        while let Some(b) = queue.pop_front() {
            queued[b.index()] = false;
            visits += 1;
            let Some(mut cur) = entry_in[b.index()] else { continue };
            let block = kernel.block(b);
            for ins in &block.instrs {
                if let Instr::Call { func } = ins {
                    // The callee starts from a copy of the caller's file.
                    let callee_entry = cfg.entry(*func);
                    join_into(
                        &mut entry_in,
                        &mut updates,
                        &mut queue,
                        &mut queued,
                        callee_entry,
                        &cur,
                    );
                }
                step(ins, &mut cur);
            }
            for succ in block.term.successors() {
                join_into(&mut entry_in, &mut updates, &mut queue, &mut queued, succ, &cur);
            }
        }

        // Deterministic walk resolving each access, in the same (block, idx)
        // order as the lockset pass, so indices line up.
        let mut patterns = Vec::with_capacity(locksets.accesses.len());
        let mut store_values = Vec::with_capacity(locksets.accesses.len());
        let mut locs: Vec<InstrLoc> = Vec::with_capacity(locksets.accesses.len());
        for (bi, block) in kernel.blocks.iter().enumerate() {
            let Some(mut s) = entry_in[bi] else { continue };
            for (ii, ins) in block.instrs.iter().enumerate() {
                match ins {
                    Instr::Load { addr, .. } => {
                        patterns.push(pattern_of(addr, &s));
                        store_values.push(None);
                        locs.push(InstrLoc::new(BlockId(bi as u32), ii as u16));
                    }
                    Instr::Store { addr, src } => {
                        patterns.push(pattern_of(addr, &s));
                        store_values.push(s[src.index()].singleton());
                        locs.push(InstrLoc::new(BlockId(bi as u32), ii as u16));
                    }
                    _ => {}
                }
                step(ins, &mut s);
            }
        }
        assert_eq!(
            patterns.len(),
            locksets.accesses.len(),
            "value-flow walk must visit exactly the lockset pass's accesses"
        );
        debug_assert!(locs.iter().zip(locksets.accesses.iter()).all(|(l, a)| *l == a.loc));

        let (class, num_classes) = alias_classes(&patterns);

        // Per-block alias-class density: distinct classes touched by the
        // block's accesses, saturating at u8::MAX.
        let mut block_density = vec![0u8; n];
        let mut seen: Vec<u32> = Vec::new();
        let mut i = 0usize;
        while i < locksets.accesses.len() {
            let b = locksets.accesses[i].loc.block;
            seen.clear();
            let mut j = i;
            while j < locksets.accesses.len() && locksets.accesses[j].loc.block == b {
                if !seen.contains(&class[j]) {
                    seen.push(class[j]);
                }
                j += 1;
            }
            block_density[b.index()] = u8::try_from(seen.len()).unwrap_or(u8::MAX);
            i = j;
        }

        Self { patterns, store_values, class, num_classes, block_density, fixpoint_visits: visits }
    }

    /// The resolved pattern of access `i` (index into the lockset pass's
    /// access list).
    pub fn pattern(&self, i: usize) -> AccessPattern {
        self.patterns[i]
    }

    /// The constant value access `i` stores, if it is a store of a
    /// statically known singleton.
    pub fn store_value(&self, i: usize) -> Option<i64> {
        self.store_values[i]
    }

    /// Alias class of access `i` (dense ids in first-appearance order).
    pub fn alias_class(&self, i: usize) -> u32 {
        self.class[i]
    }

    /// Number of alias classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Whether accesses `i` and `j` may touch a common word.
    pub fn may_alias(&self, i: usize, j: usize) -> bool {
        self.patterns[i].overlaps(self.patterns[j])
    }

    /// Distinct alias classes touched by block `b` (saturating u8).
    pub fn block_alias_density(&self, b: BlockId) -> u8 {
        self.block_density[b.index()]
    }

    /// Per-block alias-class density channel, indexed by block.
    pub fn block_densities(&self) -> &[u8] {
        &self.block_density
    }
}

/// Resolve an address expression under an abstract register file. Sound:
/// the dynamic `resolve` wraps the index into `[0, len)`, so the covered
/// index subrange is exact for singletons, the interval itself when it
/// already sits inside `[0, len)`, and the whole array otherwise.
fn pattern_of(addr: &AddrExpr, s: &RegState) -> AccessPattern {
    match *addr {
        AddrExpr::Fixed(a) => AccessPattern::word(a.0),
        AddrExpr::Indexed { base, reg, stride, len } => {
            if stride == 0 {
                return AccessPattern::word(base.0); // every index hits base
            }
            let n = i64::from(len.max(1));
            let r = s[reg.index()];
            let (lo, hi) = if let Some(v) = r.singleton() {
                let i = v.rem_euclid(n);
                (i, i)
            } else if r.lo >= 0 && r.hi < n {
                (r.lo, r.hi)
            } else {
                (0, n - 1)
            };
            if lo == hi {
                return AccessPattern::word(base.0 + (lo as u32) * stride);
            }
            AccessPattern {
                start: base.0 + (lo as u32) * stride,
                stride,
                count: (hi - lo + 1) as u32,
            }
        }
    }
}

/// Partition accesses into alias classes: the transitive closure of
/// pattern overlap, via union-find over a range-start sweep (the same
/// enumeration the may-race pass uses, so no overlapping pair is missed).
fn alias_classes(patterns: &[AccessPattern]) -> (Vec<u32>, usize) {
    let n = patterns.len();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    let mut order: Vec<(u32, u32, usize)> =
        patterns.iter().enumerate().map(|(i, p)| (p.range().0, p.range().1, i)).collect();
    order.sort_by_key(|&(s, _, i)| (s, i));
    for (pos, &(_, end_i, i)) in order.iter().enumerate() {
        for &(start_j, _, j) in &order[pos + 1..] {
            if start_j >= end_i {
                break; // starts sorted: nothing later overlaps i's range
            }
            if patterns[i].overlaps(patterns[j]) {
                let (ri, rj) = (find(&mut parent, i as u32), find(&mut parent, j as u32));
                if ri != rj {
                    parent[rj as usize] = ri;
                }
            }
        }
    }
    // Dense class ids in first-appearance order (deterministic).
    let mut id_of_root: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    let mut class = vec![0u32; n];
    for (i, c) in class.iter_mut().enumerate() {
        let root = find(&mut parent, i as u32);
        let next = id_of_root.len() as u32;
        *c = *id_of_root.entry(root).or_insert(next);
    }
    (class, id_of_root.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowcat_kernel::{Addr, CmpOp, Instr, KernelBuilder, Reg, RegionKind};

    fn indexed(base: Addr, reg: Reg, stride: u32, len: u32) -> AddrExpr {
        AddrExpr::Indexed { base, reg, stride, len }
    }

    fn analyze(k: &Kernel) -> (LocksetAnalysis, ValueFlow) {
        let cfg = KernelCfg::build(k);
        let locksets = LocksetAnalysis::compute(k, &cfg);
        let vf = ValueFlow::compute(k, &cfg, &locksets);
        (locksets, vf)
    }

    #[test]
    fn interval_algebra() {
        let a = Interval { lo: 1, hi: 3 };
        let b = Interval { lo: -2, hi: 2 };
        assert_eq!(Interval::binop(BinOp::Add, a, b), Interval { lo: -1, hi: 5 });
        assert_eq!(Interval::binop(BinOp::Sub, a, b), Interval { lo: -1, hi: 5 });
        assert_eq!(Interval::binop(BinOp::Mul, a, b), Interval { lo: -6, hi: 6 });
        // Overflow degrades to ⊤, matching the VM's wrapping semantics.
        let big = Interval::exact(i64::MAX);
        assert_eq!(Interval::binop(BinOp::Add, big, Interval::exact(1)), Interval::TOP);
        // Bitwise is exact only for singletons.
        assert_eq!(
            Interval::binop(BinOp::Xor, Interval::exact(0b1100), Interval::exact(0b1010)),
            Interval::exact(0b0110)
        );
        assert_eq!(Interval::binop(BinOp::And, a, Interval::exact(1)), Interval::TOP);
        assert_eq!(a.join(b), Interval { lo: -2, hi: 3 });
        assert_eq!(a.widen_join(Interval { lo: 1, hi: 4 }), Interval { lo: 1, hi: i64::MAX });
    }

    #[test]
    fn pattern_overlap_is_exact_for_strided_progressions() {
        // Same array, different field offsets: never alias.
        let f0 = AccessPattern { start: 100, stride: 6, count: 4 };
        let f1 = AccessPattern { start: 101, stride: 6, count: 4 };
        assert!(!f0.overlaps(f1));
        assert!(f0.overlaps(f0));
        // A fixed word on the progression aliases; one off it does not.
        assert!(f0.overlaps(AccessPattern::word(112)));
        assert!(!f0.overlaps(AccessPattern::word(113)));
        // Different strides with a genuine intersection.
        let s2 = AccessPattern { start: 100, stride: 2, count: 10 };
        let s3 = AccessPattern { start: 100, stride: 3, count: 7 };
        assert!(s2.overlaps(s3)); // e.g. word 100 (and 106, 112, 118)
        let odd = AccessPattern { start: 101, stride: 2, count: 3 };
        assert!(!s2.overlaps(odd));
    }

    #[test]
    fn constant_index_resolves_to_exact_field() {
        let mut kb = KernelBuilder::new();
        let sub = kb.add_subsystem("t");
        let base = kb.alloc_region(sub, RegionKind::ObjectArray, 24, "t.objects", 0);
        let f = kb.begin_func("f", sub);
        kb.emit(Instr::Const { dst: Reg(3), val: 2 });
        kb.emit(Instr::Store { addr: indexed(base, Reg(3), 6, 4), src: Reg(3) });
        kb.end_func();
        kb.add_syscall("t_f", f, sub, vec![]);
        let k = kb.finish("t");
        let (_, vf) = analyze(&k);
        // Index register is exactly 2 → single word base + 2*stride.
        assert_eq!(vf.pattern(0), AccessPattern::word(base.0 + 12));
        // And the stored value is the constant 2.
        assert_eq!(vf.store_value(0), Some(2));
    }

    #[test]
    fn argument_index_covers_the_whole_array() {
        let mut kb = KernelBuilder::new();
        let sub = kb.add_subsystem("t");
        let base = kb.alloc_region(sub, RegionKind::ObjectArray, 24, "t.objects", 0);
        let f = kb.begin_func("f", sub);
        kb.emit(Instr::Load { dst: Reg(4), addr: indexed(base, Reg(0), 6, 4) });
        kb.end_func();
        kb.add_syscall("t_f", f, sub, vec![]);
        let k = kb.finish("t");
        let (_, vf) = analyze(&k);
        assert_eq!(vf.pattern(0), AccessPattern { start: base.0, stride: 6, count: 4 });
        assert_eq!(vf.store_value(0), None);
    }

    #[test]
    fn different_fields_land_in_different_alias_classes() {
        let mut kb = KernelBuilder::new();
        let sub = kb.add_subsystem("t");
        // One extra word so the offset-1 field's static range stays in
        // bounds (the validator checks `base + stride·len`).
        let base = kb.alloc_region(sub, RegionKind::ObjectArray, 25, "t.objects", 0);
        let f = kb.begin_func("f", sub);
        // Field 0 and field 1 of the same 6-word-stride array, plus a
        // second field-0 access: {0, 2} alias, {1} is separate.
        kb.emit(Instr::Load { dst: Reg(4), addr: indexed(base, Reg(0), 6, 4) });
        kb.emit(Instr::Load { dst: Reg(5), addr: indexed(Addr(base.0 + 1), Reg(1), 6, 4) });
        kb.emit(Instr::Store { addr: indexed(base, Reg(2), 6, 4), src: Reg(4) });
        kb.end_func();
        kb.add_syscall("t_f", f, sub, vec![]);
        let k = kb.finish("t");
        let (_, vf) = analyze(&k);
        assert_eq!(vf.alias_class(0), vf.alias_class(2));
        assert_ne!(vf.alias_class(0), vf.alias_class(1));
        assert_eq!(vf.num_classes(), 2);
        assert!(vf.may_alias(0, 2));
        assert!(!vf.may_alias(0, 1));
        // All three accesses are in the entry block: density = 2 classes.
        assert_eq!(vf.block_alias_density(k.func(snowcat_kernel::FuncId(0)).entry), 2);
    }

    #[test]
    fn call_does_not_clobber_caller_registers() {
        let mut kb = KernelBuilder::new();
        let sub = kb.add_subsystem("t");
        let base = kb.alloc_region(sub, RegionKind::ObjectArray, 24, "t.objects", 0);
        // Helper trashes r3 in its own frame.
        let h = kb.begin_func("h", sub);
        kb.emit(Instr::Const { dst: Reg(3), val: 999 });
        kb.end_func();
        let f = kb.begin_func("f", sub);
        kb.emit(Instr::Const { dst: Reg(3), val: 1 });
        kb.emit(Instr::Call { func: h });
        kb.emit(Instr::Store { addr: indexed(base, Reg(3), 6, 4), src: Reg(3) });
        kb.end_func();
        kb.add_syscall("t_f", f, sub, vec![]);
        let k = kb.finish("t");
        let (locksets, vf) = analyze(&k);
        // The caller's r3 is still exactly 1 after the call (VM frames are
        // copies), so the store resolves to field offset 1·stride.
        let store_idx = locksets.accesses.iter().position(|a| a.is_write).unwrap();
        assert_eq!(vf.pattern(store_idx), AccessPattern::word(base.0 + 6));
        assert_eq!(vf.store_value(store_idx), Some(1));
    }

    #[test]
    fn loops_terminate_via_widening() {
        let mut kb = KernelBuilder::new();
        let sub = kb.add_subsystem("t");
        let base = kb.alloc_region(sub, RegionKind::ObjectArray, 24, "t.objects", 0);
        let f = kb.begin_func("f", sub);
        kb.emit(Instr::Const { dst: Reg(3), val: 0 });
        kb.emit(Instr::Const { dst: Reg(4), val: 1 });
        let head = kb.new_block();
        kb.jump_to(head);
        kb.set_cur(head);
        kb.emit(Instr::BinOp { op: BinOp::Add, dst: Reg(3), lhs: Reg(3), rhs: Reg(4) });
        kb.emit(Instr::Load { dst: Reg(5), addr: indexed(base, Reg(3), 6, 4) });
        let (back, out) = kb.branch(Reg(5), CmpOp::Eq, 0);
        kb.set_cur(back);
        kb.jump_to(head);
        kb.set_cur(out);
        kb.end_func();
        kb.add_syscall("t_f", f, sub, vec![]);
        let k = kb.finish("t");
        let (_, vf) = analyze(&k);
        // The loop counter grows unboundedly; widening must both terminate
        // and stay sound (the access covers the whole array).
        assert_eq!(vf.pattern(0), AccessPattern { start: base.0, stride: 6, count: 4 });
    }

    #[test]
    fn patterns_stay_within_static_ranges() {
        // refined ⊆ old at the pattern level, on a generated kernel.
        let k = snowcat_kernel::generate(&snowcat_kernel::GenConfig::default());
        let (locksets, vf) = analyze(&k);
        for (i, a) in locksets.accesses.iter().enumerate() {
            let p = vf.pattern(i);
            let (s, e) = a.addr.static_range();
            let e = e.0.max(s.0 + 1); // the may-race pass widens empty ranges
            assert!(p.start >= s.0 && p.last() < e, "pattern {p:?} outside range of {:?}", a.addr);
        }
    }
}
