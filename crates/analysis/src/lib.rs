//! # snowcat-analysis — static concurrency analysis of the synthetic kernel
//!
//! The paper leans on static structure twice: the whole-kernel CFG defines
//! the URBs the coverage predictor scores, and Razzer-style directed testing
//! starts from *statically identified* potential race pairs. This crate
//! supplies that static layer:
//!
//! * [`lockset`] — an interprocedural **must-hold lockset dataflow**
//!   (forward fixpoint, intersection at joins) annotating every static
//!   memory access with the locks definitely held around it,
//! * [`valueflow`] — an interprocedural **value-flow/alias pass** (interval
//!   propagation over registers) resolving each access to an arithmetic
//!   progression of words and partitioning accesses into alias classes,
//! * [`lints`] — **lock-discipline lints** on top of both (double-lock,
//!   unlock-without-lock, lock-leak, interprocedural lock-order cycles,
//!   inconsistent protection, store-const conflicts, guarded-by
//!   inference), with an allowlist for planted bugs,
//! * [`mayrace`] — a **static may-race pass** whose pair set provably
//!   over-approximates every dynamic [`snowcat_race::RaceKey`], plus the
//!   per-block may-race bits and syscall-pair density matrix consumed by
//!   the CT-graph builder and the Razzer pre-filter in `snowcat-core`.
//!   [`analyze`] keeps two tiers: the alias-blind *coarse* set and the
//!   alias-*refined* set sandwiched between it and the dynamic race set
//!   (`dynamic ⊆ refined ⊆ coarse`); consumers see the refined one.
//!
//! [`analyze`] runs all four and [`Analysis::report`] renders the JSON
//! document emitted by `snowcat analyze`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lints;
pub mod lockset;
pub mod mayrace;
pub mod valueflow;

pub use lints::{lint, Allowlist, LintKind, Severity, StaticFinding};
pub use lockset::{AccessInfo, LockEvent, LocksetAnalysis};
pub use mayrace::MayRace;
pub use valueflow::{AccessPattern, ValueFlow};

use serde::{Deserialize, Serialize};
use snowcat_cfg::KernelCfg;
use snowcat_kernel::{BugId, InstrLoc, Kernel};
use snowcat_race::RaceKey;

/// Combined result of the full static-analysis pipeline.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The must-hold lockset dataflow results.
    pub locksets: LocksetAnalysis,
    /// The value-flow/alias pass results.
    pub valueflow: ValueFlow,
    /// Lint findings, sorted by dedup key.
    pub findings: Vec<StaticFinding>,
    /// The alias-refined static may-race over-approximation — what every
    /// downstream consumer (prefilter, CT-graph features) uses.
    pub may_race: MayRace,
    /// The alias-blind (PR 3) may-race set, kept for precision reporting
    /// and the `--coarse` compatibility mode.
    pub may_race_coarse: MayRace,
}

/// Run lockset dataflow, value flow, lints and the may-race pass over one
/// kernel.
pub fn analyze(kernel: &Kernel, cfg: &KernelCfg) -> Analysis {
    let locksets = LocksetAnalysis::compute(kernel, cfg);
    let valueflow = ValueFlow::compute(kernel, cfg, &locksets);
    let findings = lint(kernel, &locksets, &valueflow);
    let (may_race_coarse, may_race) = MayRace::compute_refined(kernel, cfg, &locksets, &valueflow);
    Analysis { locksets, valueflow, findings, may_race, may_race_coarse }
}

impl Analysis {
    /// Findings not excused by `allowlist`.
    pub fn unexpected_findings<'a>(
        &'a self,
        allowlist: &'a Allowlist,
    ) -> impl Iterator<Item = &'a StaticFinding> {
        self.findings.iter().filter(move |f| !allowlist.permits(f))
    }

    /// Planted bugs whose broken locking the lints actually flagged: the
    /// bug's pattern involves a lock (some racing access has a non-empty
    /// must-lockset) and an [`LintKind::InconsistentProtection`] finding
    /// names one of its racing words or instructions.
    pub fn flagged_lock_misuse_bugs(&self, kernel: &Kernel) -> Vec<BugId> {
        lock_misuse_bugs(kernel, &self.locksets)
            .into_iter()
            .filter(|&id| {
                let bug = &kernel.bugs[id.index()];
                self.findings.iter().any(|f| {
                    f.kind == LintKind::InconsistentProtection
                        && f.locs.iter().any(|l| bug.racing_instrs.contains(l))
                })
            })
            .collect()
    }

    /// Planted bugs whose racing pair survives in the (refined) may-race
    /// set: at least one cross-carrier pair of the bug's racing memory
    /// accesses is still a may-race candidate. The `--baseline` precision
    /// gate fails if a bug covered by the old report is missing here.
    pub fn covered_planted_bugs(&self, kernel: &Kernel) -> Vec<BugId> {
        kernel
            .bugs
            .iter()
            .filter(|bug| {
                let mem: Vec<InstrLoc> = bug
                    .racing_instrs
                    .iter()
                    .copied()
                    .filter(|&l| kernel.instr(l).is_some_and(|i| i.is_mem_access()))
                    .collect();
                let fa = kernel.syscall(bug.syscalls.0).func;
                let func_of = |loc: InstrLoc| kernel.block(loc.block).func;
                mem.iter().any(|&x| {
                    mem.iter().any(|&y| {
                        func_of(x) == fa
                            && func_of(y) != fa
                            && self.may_race.contains(&RaceKey::new(x, y))
                    })
                })
            })
            .map(|b| b.id)
            .collect()
    }

    /// Per-block static feature channels for the CT-graph builder, indexed
    /// by `BlockId`: `[alias_density, must_lockset_size, may_race_degree]`,
    /// each saturated to `u8`. Kept as plain bytes so this crate stays
    /// independent of the graph representation; `snowcat-corpus` converts
    /// them into `StaticFeats`.
    pub fn block_static_feats(&self, kernel: &Kernel) -> Vec<[u8; 3]> {
        (0..kernel.num_blocks())
            .map(|i| {
                let b = snowcat_kernel::BlockId(i as u32);
                let lockset =
                    self.locksets.block_entry(b).map_or(0, |m| m.count_ones()).min(255) as u8;
                let degree = self.may_race.block_degree(b).min(255) as u8;
                [self.valueflow.block_alias_density(b), lockset, degree]
            })
            .collect()
    }

    /// Render the serializable report document.
    pub fn report(&self, kernel: &Kernel) -> AnalysisReport {
        let allowlist = Allowlist::from_planted_bugs(kernel);
        let allowlisted = self.findings.iter().filter(|f| allowlist.permits(f)).count();
        AnalysisReport {
            kernel_version: kernel.version.clone(),
            blocks: kernel.num_blocks(),
            instrs: kernel.num_instrs(),
            mem_accesses: self.locksets.accesses.len(),
            locked_accesses: self.locksets.accesses.iter().filter(|a| a.lockset != 0).count(),
            findings: self.findings.clone(),
            allowlisted_findings: allowlisted,
            may_race_pairs: self.may_race.len(),
            may_race_blocks: self.may_race.blocks().count(),
            flagged_lock_misuse_bugs: self
                .flagged_lock_misuse_bugs(kernel)
                .iter()
                .map(|b| b.0)
                .collect(),
            may_race_pairs_coarse: self.may_race_coarse.len(),
            alias_classes: self.valueflow.num_classes(),
            planted_bugs_covered: self.covered_planted_bugs(kernel).iter().map(|b| b.0).collect(),
        }
    }
}

/// Planted bugs whose racing instructions involve broken locking: at least
/// one racing memory access holds a lock while a sibling racing access to
/// the same pattern does not (DataRace and MultiOrder plants qualify;
/// lock-free order/atomicity violations do not).
pub fn lock_misuse_bugs(kernel: &Kernel, locksets: &LocksetAnalysis) -> Vec<BugId> {
    kernel
        .bugs
        .iter()
        .filter(|bug| {
            bug.racing_instrs.iter().filter_map(|&l| locksets.access_lockset(l)).any(|set| set != 0)
        })
        .map(|b| b.id)
        .collect()
}

/// The JSON document written by `snowcat analyze --out`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Kernel version tag.
    pub kernel_version: String,
    /// Basic blocks analyzed.
    pub blocks: usize,
    /// Static instructions analyzed.
    pub instrs: usize,
    /// Static memory accesses annotated with locksets.
    pub mem_accesses: usize,
    /// Accesses with a non-empty must-hold lockset.
    pub locked_accesses: usize,
    /// All lint findings (sorted by dedup key).
    pub findings: Vec<StaticFinding>,
    /// How many findings the planted-bug allowlist excuses.
    pub allowlisted_findings: usize,
    /// Size of the static may-race set.
    pub may_race_pairs: usize,
    /// Blocks carrying the may-race feature bit.
    pub may_race_blocks: usize,
    /// Planted lock-misuse bugs flagged by the lints (raw bug ids).
    pub flagged_lock_misuse_bugs: Vec<u16>,
    /// Size of the alias-blind (PR 3) may-race set; `0` in reports written
    /// before the value-flow pass existed.
    #[serde(default)]
    pub may_race_pairs_coarse: usize,
    /// Number of alias classes the value-flow pass partitioned the static
    /// accesses into.
    #[serde(default)]
    pub alias_classes: usize,
    /// Planted bugs (raw ids) whose racing pair survives in the may-race
    /// set — the coverage side of the `--baseline` precision gate.
    #[serde(default)]
    pub planted_bugs_covered: Vec<u16>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowcat_kernel::{generate, BugKind, GenConfig};

    #[test]
    fn default_kernel_is_clean_outside_planted_bugs() {
        let k = generate(&GenConfig::default());
        let cfg = KernelCfg::build(&k);
        let analysis = analyze(&k, &cfg);
        let allowlist = Allowlist::from_planted_bugs(&k);
        let unexpected: Vec<_> = analysis.unexpected_findings(&allowlist).collect();
        assert!(unexpected.is_empty(), "generator emitted dirty locking: {unexpected:#?}");
        assert!(!analysis.findings.is_empty(), "planted lock misuse must be visible");
    }

    #[test]
    fn every_planted_lock_misuse_bug_is_flagged() {
        let k = generate(&GenConfig::default());
        let cfg = KernelCfg::build(&k);
        let analysis = analyze(&k, &cfg);
        let misuse = lock_misuse_bugs(&k, &analysis.locksets);
        // DataRace and MultiOrder plants mix locked and raw accesses.
        for bug in &k.bugs {
            if matches!(bug.kind, BugKind::DataRace | BugKind::MultiOrder) {
                assert!(misuse.contains(&bug.id), "bug {} should be lock misuse", bug.id);
            }
        }
        assert_eq!(analysis.flagged_lock_misuse_bugs(&k), misuse, "all misuse bugs flagged");
    }

    #[test]
    fn report_is_serializable_and_consistent() {
        let k = generate(&GenConfig::default());
        let cfg = KernelCfg::build(&k);
        let analysis = analyze(&k, &cfg);
        let report = analysis.report(&k);
        assert_eq!(report.blocks, k.num_blocks());
        assert_eq!(report.findings.len(), analysis.findings.len());
        assert!(report.locked_accesses > 0);
        assert!(report.may_race_pairs > 0);
        assert!(
            report.may_race_pairs_coarse > report.may_race_pairs,
            "alias refinement must prune pairs ({} vs {})",
            report.may_race_pairs_coarse,
            report.may_race_pairs
        );
        assert!(report.alias_classes > 0);
        assert_eq!(
            report.planted_bugs_covered.len(),
            k.bugs.len(),
            "no planted bug may be refined away"
        );
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("may_race_pairs"));
        // Old reports (without the new fields) still deserialize.
        let old = r#"{"kernel_version":"v","blocks":1,"instrs":1,"mem_accesses":0,
            "locked_accesses":0,"findings":[],"allowlisted_findings":0,
            "may_race_pairs":0,"may_race_blocks":0,"flagged_lock_misuse_bugs":[]}"#;
        let parsed: AnalysisReport = serde_json::from_str(old).unwrap();
        assert_eq!(parsed.may_race_pairs_coarse, 0);
        assert!(parsed.planted_bugs_covered.is_empty());
    }
}
