//! Edge-case integration tests for the VM: cross-thread deadlock, the
//! defensive step limit, reentrant locking through helper calls, and
//! blocked-thread wakeup.

use snowcat_kernel::gen::KernelBuilder;
use snowcat_kernel::{CmpOp, Instr, Kernel, Reg, SyscallId, ThreadId};
use snowcat_vm::{
    run_ct, run_sequential, Cti, ExitReason, ScheduleHints, Sti, SwitchPoint, SyscallInvocation,
    VmConfig,
};

/// Kernel with two syscalls that acquire two locks in opposite orders, plus
/// one self-looping syscall, plus one that locks recursively via a helper.
fn crafted_kernel() -> Kernel {
    let mut kb = KernelBuilder::new();
    let sub = kb.add_subsystem("crafted");
    let _region =
        kb.alloc_region(sub, snowcat_kernel::program::RegionKind::Flags, 8, "crafted.flags", 0);
    let l1 = kb.alloc_lock(sub);
    let l2 = kb.alloc_lock(sub);

    // lock_ab: L1 then (after a window) L2.
    let f_ab = kb.begin_func("crafted_lock_ab", sub);
    kb.emit(Instr::Lock { lock: l1 });
    for _ in 0..5 {
        kb.emit(Instr::Nop);
    }
    kb.emit(Instr::Lock { lock: l2 });
    kb.emit(Instr::Unlock { lock: l2 });
    kb.emit(Instr::Unlock { lock: l1 });
    kb.end_func();
    kb.add_syscall("crafted_lock_ab", f_ab, sub, vec![]);

    // lock_ba: L2 then L1.
    let f_ba = kb.begin_func("crafted_lock_ba", sub);
    kb.emit(Instr::Lock { lock: l2 });
    for _ in 0..5 {
        kb.emit(Instr::Nop);
    }
    kb.emit(Instr::Lock { lock: l1 });
    kb.emit(Instr::Unlock { lock: l1 });
    kb.emit(Instr::Unlock { lock: l2 });
    kb.end_func();
    kb.add_syscall("crafted_lock_ba", f_ba, sub, vec![]);

    // spin: a block that jumps to itself forever.
    let f_spin = kb.begin_func("crafted_spin", sub);
    let entry = kb.cur();
    kb.emit(Instr::Nop);
    kb.jump_to(entry);
    // `end_func` would overwrite the terminator; close manually by opening a
    // dead block.
    let dead = kb.new_block();
    kb.set_cur(dead);
    kb.end_func();
    kb.add_syscall("crafted_spin", f_spin, sub, vec![]);

    // helper that takes L1 again (tests reentrancy).
    let f_help = kb.begin_func("crafted_inner_helper", sub);
    kb.emit(Instr::Lock { lock: l1 });
    kb.emit(Instr::Unlock { lock: l1 });
    kb.end_func();

    let f_reent = kb.begin_func("crafted_reentrant", sub);
    kb.emit(Instr::Lock { lock: l1 });
    kb.emit(Instr::Call { func: f_help });
    kb.emit(Instr::Unlock { lock: l1 });
    kb.end_func();
    kb.add_syscall("crafted_reentrant", f_reent, sub, vec![]);

    // waiter: loads a flag and branches (exercises wakeup-then-continue).
    let f_wait = kb.begin_func("crafted_waiter", sub);
    kb.emit(Instr::Lock { lock: l1 });
    kb.emit(Instr::Load {
        dst: Reg(4),
        addr: snowcat_kernel::AddrExpr::Fixed(snowcat_kernel::Addr(0)),
    });
    kb.emit(Instr::Unlock { lock: l1 });
    let (t, e) = kb.branch(Reg(4), CmpOp::Eq, 0);
    let merge = kb.new_block();
    kb.set_cur(t);
    kb.jump_to(merge);
    kb.set_cur(e);
    kb.jump_to(merge);
    kb.set_cur(merge);
    kb.end_func();
    kb.add_syscall("crafted_waiter", f_wait, sub, vec![]);

    kb.finish("crafted")
}

fn sti(idx: u32) -> Sti {
    Sti::new(vec![SyscallInvocation { syscall: SyscallId(idx), args: [0; 3] }])
}

#[test]
fn opposite_lock_orders_deadlock_under_interleaving() {
    let k = crafted_kernel();
    // Switch A inside its L1-held window so B acquires L2, then both block.
    let hints = ScheduleHints {
        first: ThreadId(0),
        switches: vec![
            SwitchPoint { thread: ThreadId(0), after: 4 },
            SwitchPoint { thread: ThreadId(1), after: 4 },
        ],
    };
    let r = run_ct(&k, &Cti::new(sti(0), sti(1)), hints, VmConfig::default());
    assert_eq!(r.exit, ExitReason::Deadlock, "ABBA locking must deadlock mid-window");
}

#[test]
fn opposite_lock_orders_complete_when_serialized() {
    let k = crafted_kernel();
    let r = run_ct(
        &k,
        &Cti::new(sti(0), sti(1)),
        ScheduleHints::sequential(ThreadId(0)),
        VmConfig::default(),
    );
    assert_eq!(r.exit, ExitReason::Completed);
}

#[test]
fn infinite_loop_hits_step_limit() {
    let k = crafted_kernel();
    let r =
        snowcat_vm::Vm::new(&k, vec![sti(2)], VmConfig { collect_accesses: false, max_steps: 500 })
            .run(&mut snowcat_vm::SequentialScheduler);
    assert_eq!(r.exit, ExitReason::StepLimit);
    assert!(r.steps >= 500);
}

#[test]
fn reentrant_locking_through_helper_completes() {
    let k = crafted_kernel();
    let r = run_sequential(&k, &sti(3));
    assert_eq!(r.exit, ExitReason::Completed);
}

#[test]
fn blocked_thread_wakes_after_unlock() {
    let k = crafted_kernel();
    // Thread 0 holds L1 across a 5-nop window; switch to thread 1 (waiter)
    // inside the window so it blocks on L1, forcing a switch back; when
    // thread 0 unlocks, thread 1 must wake and complete.
    let hints = ScheduleHints {
        first: ThreadId(0),
        switches: vec![SwitchPoint { thread: ThreadId(0), after: 3 }],
    };
    let r = run_ct(&k, &Cti::new(sti(0), sti(4)), hints, VmConfig::default());
    assert_eq!(r.exit, ExitReason::Completed);
    assert!(r.thread_steps[1] > 0);
}

#[test]
fn reentrant_cross_thread_contention_still_blocks() {
    let k = crafted_kernel();
    // Reentrant syscall vs ab-locker: no deadlock possible (single shared
    // lock ordering), any schedule completes.
    for x in [1u64, 2, 3, 5, 8] {
        let hints = ScheduleHints {
            first: ThreadId(0),
            switches: vec![
                SwitchPoint { thread: ThreadId(0), after: x },
                SwitchPoint { thread: ThreadId(1), after: 2 },
            ],
        };
        let r = run_ct(&k, &Cti::new(sti(3), sti(0)), hints, VmConfig::default());
        assert_eq!(r.exit, ExitReason::Completed, "switch at {x}");
    }
}
