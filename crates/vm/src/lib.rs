//! # snowcat-vm — deterministic uniprocessor VM with controllable scheduling
//!
//! This crate plays the role of the paper's modified SKI/QEMU: it executes
//! synthetic-kernel concurrent tests one thread at a time under a pluggable
//! [`sched::Scheduler`], enforcing SKI-style best-effort *scheduling hints*,
//! and records block coverage, the shared-memory access stream (with
//! locksets), and planted-bug oracle hits.
//!
//! Entry points:
//! * [`run_sequential`] — profile a single STI (sequential coverage/flows),
//! * [`run_ct`] — execute a concurrent test (CTI + hints),
//! * [`Vm`] — the underlying machine for custom setups.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod exec;
pub mod replay;
pub mod sched;
pub mod sti;
pub mod trace;

pub use bitset::BitSet;
pub use exec::{run_ct, run_sequential, Vm, VmConfig};
pub use replay::{RecordingScheduler, ReplayScheduler, ScheduleTrace};
pub use sched::{
    propose_hints, HintScheduler, PctScheduler, ScheduleHints, Scheduler, SequentialScheduler,
    SwitchPoint, ThreadView,
};
pub use sti::{Cti, Sti, SyscallInvocation};
pub use trace::{BugHit, ExecResult, ExitReason, MemAccess};
