//! Thread schedulers.
//!
//! The VM serializes threads like SKI's uniprocessor scheduler: exactly one
//! thread runs at a time, and a [`Scheduler`] picks which before every step.
//!
//! * [`SequentialScheduler`] — run thread 0 to completion, then thread 1, …
//!   (used for single-thread STI profiling).
//! * [`HintScheduler`] — SKI-style *scheduling hints*: "switch to thread B
//!   when thread A executes its x-th instruction". Hints are best-effort: a
//!   hint whose thread finishes early is skipped, and a blocked thread
//!   forces an extra switch, exactly as the paper describes SKI's behaviour.
//! * [`PctScheduler`] — the PCT algorithm (Burckhardt et al., ASPLOS'10):
//!   random thread priorities plus `d − 1` priority-change points at random
//!   global steps.
//!
//! [`propose_hints`] draws the random 2-switch schedules that both the PCT
//! baseline campaigns and MLPCT's candidate pool are built from (the paper
//! fixes two scheduling hints per CT, "sufficient for discovering most
//! concurrency bugs").

use rand::Rng;
use serde::{Deserialize, Serialize};
use snowcat_kernel::ThreadId;

/// Scheduler-visible thread state.
#[derive(Debug, Clone, Copy)]
pub struct ThreadView {
    /// Thread id.
    pub id: ThreadId,
    /// Can this thread execute a step right now?
    pub runnable: bool,
    /// Has the thread finished its STI?
    pub done: bool,
    /// Dynamic instructions executed by the thread so far.
    pub executed: u64,
}

/// Picks the next thread before every VM step.
pub trait Scheduler {
    /// Choose among the runnable threads in `views`. The VM guarantees at
    /// least one view is runnable. Returning a non-runnable thread is a
    /// contract violation; the VM falls back to the first runnable one.
    fn choose(&mut self, views: &[ThreadView]) -> ThreadId;
}

/// Runs the lowest-numbered runnable thread: thread 0 to completion first.
#[derive(Debug, Default, Clone)]
pub struct SequentialScheduler;

impl Scheduler for SequentialScheduler {
    fn choose(&mut self, views: &[ThreadView]) -> ThreadId {
        views.iter().find(|v| v.runnable).map(|v| v.id).expect("no runnable thread")
    }
}

/// One scheduling hint: when `thread` has executed `after` instructions,
/// yield to the other thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SwitchPoint {
    /// The thread that yields.
    pub thread: ThreadId,
    /// Executed-instruction count at which it yields.
    pub after: u64,
}

/// A complete hint schedule: the starting thread plus ordered switch points.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ScheduleHints {
    /// Thread that runs first.
    pub first: ThreadId,
    /// Ordered switch points (the paper uses two per CT).
    pub switches: Vec<SwitchPoint>,
}

impl ScheduleHints {
    /// The trivial schedule: run `first` to completion, then the other.
    pub fn sequential(first: ThreadId) -> Self {
        Self { first, switches: Vec::new() }
    }
}

/// SKI-style best-effort hint enforcement.
#[derive(Debug, Clone)]
pub struct HintScheduler {
    hints: ScheduleHints,
    /// Index of the next unconsumed switch point.
    next: usize,
    /// Thread we currently prefer to run.
    current: ThreadId,
}

impl HintScheduler {
    /// Build a scheduler enforcing `hints`.
    pub fn new(hints: ScheduleHints) -> Self {
        let current = hints.first;
        Self { hints, next: 0, current }
    }

    fn other(views: &[ThreadView], id: ThreadId) -> ThreadId {
        views
            .iter()
            .find(|v| v.id != id && v.runnable)
            .or_else(|| views.iter().find(|v| v.runnable))
            .map(|v| v.id)
            .expect("no runnable thread")
    }
}

impl Scheduler for HintScheduler {
    fn choose(&mut self, views: &[ThreadView]) -> ThreadId {
        // Consume switch points that can no longer fire (their thread is
        // done before reaching the mark) — SKI "skips" such hints.
        while let Some(sw) = self.hints.switches.get(self.next) {
            let v = views.iter().find(|v| v.id == sw.thread);
            match v {
                Some(v) if v.done && v.executed < sw.after => self.next += 1,
                Some(v) if v.id == self.current && v.executed >= sw.after => {
                    // The hint fires: yield to the other thread.
                    self.next += 1;
                    self.current = Self::other(views, self.current);
                }
                _ => break,
            }
        }
        let cur = views.iter().find(|v| v.id == self.current);
        match cur {
            Some(v) if v.runnable => self.current,
            // Blocked or done: forced switch (SKI's deadlock-avoidance
            // extra switch).
            _ => {
                self.current = Self::other(views, self.current);
                self.current
            }
        }
    }
}

/// The PCT randomized priority scheduler.
#[derive(Debug, Clone)]
pub struct PctScheduler {
    /// Priority per thread; higher runs first.
    priorities: Vec<u64>,
    /// Sorted global steps at which the running thread's priority drops.
    change_points: Vec<u64>,
    next_change: usize,
    global_step: u64,
}

impl PctScheduler {
    /// PCT with `num_threads` threads, expected schedule length `k` and
    /// depth `d` (the number of ordering constraints targeted; `d - 1`
    /// change points are drawn).
    pub fn new<R: Rng>(rng: &mut R, num_threads: usize, k: u64, d: usize) -> Self {
        // Random distinct starting priorities in [d, d + n).
        let mut prio: Vec<u64> = (0..num_threads as u64).map(|i| i + d as u64).collect();
        for i in (1..prio.len()).rev() {
            prio.swap(i, rng.gen_range(0..=i));
        }
        let mut change_points: Vec<u64> =
            (0..d.saturating_sub(1)).map(|_| rng.gen_range(0..k.max(1))).collect();
        change_points.sort_unstable();
        Self { priorities: prio, change_points, next_change: 0, global_step: 0 }
    }

    fn highest_runnable(&self, views: &[ThreadView]) -> ThreadId {
        views
            .iter()
            .filter(|v| v.runnable)
            .max_by_key(|v| self.priorities[v.id.index()])
            .map(|v| v.id)
            .expect("no runnable thread")
    }
}

impl Scheduler for PctScheduler {
    fn choose(&mut self, views: &[ThreadView]) -> ThreadId {
        // Fire due change points: demote the currently-highest runnable
        // thread below everything else.
        while self.next_change < self.change_points.len()
            && self.global_step >= self.change_points[self.next_change]
        {
            let victim = self.highest_runnable(views);
            // The i-th change point assigns priority d−1−i: strictly below
            // every initial priority (≥ d) and below earlier demotions, per
            // the PCT paper.
            self.priorities[victim.index()] =
                (self.change_points.len() - 1 - self.next_change) as u64;
            self.next_change += 1;
        }
        self.global_step += 1;
        self.highest_runnable(views)
    }
}

/// Draw a random two-switch schedule for a CT, given the sequential lengths
/// (dynamic instruction counts) of the two STIs.
///
/// Mirrors the paper's setup: start with thread A, switch to B once A has
/// executed `x ∈ [1, len_a]` instructions, switch back once B has executed
/// `y ∈ [1, len_b]`.
pub fn propose_hints<R: Rng>(rng: &mut R, len_a: u64, len_b: u64) -> ScheduleHints {
    let a = ThreadId(0);
    let b = ThreadId(1);
    let x = rng.gen_range(1..=len_a.max(1));
    let y = rng.gen_range(1..=len_b.max(1));
    ScheduleHints {
        first: a,
        switches: vec![SwitchPoint { thread: a, after: x }, SwitchPoint { thread: b, after: y }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn views(a: (bool, bool, u64), b: (bool, bool, u64)) -> Vec<ThreadView> {
        vec![
            ThreadView { id: ThreadId(0), runnable: a.0, done: a.1, executed: a.2 },
            ThreadView { id: ThreadId(1), runnable: b.0, done: b.1, executed: b.2 },
        ]
    }

    #[test]
    fn sequential_prefers_thread_zero() {
        let mut s = SequentialScheduler;
        assert_eq!(s.choose(&views((true, false, 0), (true, false, 0))), ThreadId(0));
        assert_eq!(s.choose(&views((false, true, 10), (true, false, 0))), ThreadId(1));
    }

    #[test]
    fn hint_scheduler_switches_at_mark() {
        let hints = ScheduleHints {
            first: ThreadId(0),
            switches: vec![
                SwitchPoint { thread: ThreadId(0), after: 3 },
                SwitchPoint { thread: ThreadId(1), after: 2 },
            ],
        };
        let mut s = HintScheduler::new(hints);
        // Before the mark: stick with A.
        assert_eq!(s.choose(&views((true, false, 0), (true, false, 0))), ThreadId(0));
        assert_eq!(s.choose(&views((true, false, 2), (true, false, 0))), ThreadId(0));
        // A reached 3 executed instructions: switch to B.
        assert_eq!(s.choose(&views((true, false, 3), (true, false, 0))), ThreadId(1));
        // B reached 2: switch back to A.
        assert_eq!(s.choose(&views((true, false, 3), (true, false, 2))), ThreadId(0));
    }

    #[test]
    fn hint_scheduler_skips_unreachable_hint() {
        let hints = ScheduleHints {
            first: ThreadId(0),
            switches: vec![SwitchPoint { thread: ThreadId(0), after: 100 }],
        };
        let mut s = HintScheduler::new(hints);
        // A finished at 5 instructions without reaching 100: hint skipped,
        // B runs.
        assert_eq!(s.choose(&views((false, true, 5), (true, false, 0))), ThreadId(1));
    }

    #[test]
    fn hint_scheduler_forces_switch_when_blocked() {
        let hints = ScheduleHints::sequential(ThreadId(0));
        let mut s = HintScheduler::new(hints);
        assert_eq!(s.choose(&views((false, false, 1), (true, false, 0))), ThreadId(1));
    }

    #[test]
    fn pct_runs_highest_priority_and_demotes() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut s = PctScheduler::new(&mut rng, 2, 10, 2);
        let first = s.choose(&views((true, false, 0), (true, false, 0)));
        // Run until the single change point fires; the winner must flip at
        // some step (change point < 10).
        let mut flipped = false;
        for _ in 0..12 {
            let c = s.choose(&views((true, false, 0), (true, false, 0)));
            if c != first {
                flipped = true;
                break;
            }
        }
        assert!(flipped, "PCT with d=2 must demote the running thread once");
    }

    #[test]
    fn propose_hints_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            let h = propose_hints(&mut rng, 50, 30);
            assert_eq!(h.first, ThreadId(0));
            assert_eq!(h.switches.len(), 2);
            assert!((1..=50).contains(&h.switches[0].after));
            assert!((1..=30).contains(&h.switches[1].after));
        }
    }
}
