//! The interpreter: a deterministic uniprocessor VM over the synthetic
//! kernel, playing the role of the paper's modified SKI/QEMU.
//!
//! Exactly one thread runs at a time; a [`Scheduler`](crate::sched::Scheduler)
//! picks the thread before every step. A *step* is one of:
//!
//! * executing one body instruction,
//! * evaluating a block terminator (moving to the next block), or
//! * dispatching the next syscall of the thread's STI.
//!
//! All three advance the thread's `executed` counter, which is the coordinate
//! system scheduling hints use ("switch when thread A executes its i-th
//! instruction").
//!
//! Locks are reentrant (per-thread depth counter): the code generator can
//! compose helper calls freely without self-deadlock, while cross-thread
//! circular waits still deadlock and abort the run (recorded as
//! [`ExitReason::Deadlock`]).

use crate::bitset::BitSet;
use crate::sched::{Scheduler, SequentialScheduler, ThreadView};
use crate::sti::{Cti, Sti};
use crate::trace::{BugHit, ExecResult, ExitReason, MemAccess};
use snowcat_kernel::ids::NUM_REGS;
use snowcat_kernel::{BlockId, Instr, InstrLoc, Kernel, LockId, Terminator, ThreadId};

/// VM configuration.
#[derive(Debug, Clone, Copy)]
pub struct VmConfig {
    /// Record the memory-access stream (needed for race detection and graph
    /// building; skipping it speeds up pure-coverage runs).
    pub collect_accesses: bool,
    /// Defensive bound on total steps.
    pub max_steps: u64,
}

impl Default for VmConfig {
    fn default() -> Self {
        Self { collect_accesses: true, max_steps: 1 << 20 }
    }
}

impl VmConfig {
    /// Config with an explicit fuel (step) budget. Supervised campaigns use
    /// this to bound wedged executions: once the budget is exhausted the run
    /// exits with [`ExitReason::StepLimit`](crate::trace::ExitReason) and the
    /// watchdog classifies it as hung.
    pub fn with_fuel(fuel: u64) -> Self {
        Self { max_steps: fuel, ..Self::default() }
    }
}

#[derive(Debug, Clone)]
struct Frame {
    block: BlockId,
    instr_idx: usize,
    regs: [i64; NUM_REGS],
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked(LockId),
    Done,
}

#[derive(Debug)]
struct Thread {
    sti: Sti,
    next_call: usize,
    stack: Vec<Frame>,
    status: Status,
    executed: u64,
    held: u64, // lockset bitmask
}

impl Thread {
    fn new(sti: Sti) -> Self {
        Self {
            sti,
            next_call: 0,
            stack: Vec::new(),
            status: Status::Runnable,
            executed: 0,
            held: 0,
        }
    }
}

/// The virtual machine for one dynamic execution.
pub struct Vm<'k> {
    kernel: &'k Kernel,
    cfg: VmConfig,
    mem: Vec<i64>,
    lock_owner: Vec<Option<(ThreadId, u32)>>,
    threads: Vec<Thread>,
    // trace
    coverage: BitSet,
    per_thread_coverage: Vec<BitSet>,
    block_trace: Vec<Vec<BlockId>>,
    block_entry_steps: Vec<Vec<u64>>,
    accesses: Vec<MemAccess>,
    bugs: Vec<BugHit>,
    steps: u64,
}

impl<'k> Vm<'k> {
    /// Create a VM booting `kernel` with one thread per STI.
    ///
    /// # Panics
    /// Panics if the kernel uses more than 64 locks (locksets are `u64`
    /// bitmasks) or no STIs are given.
    pub fn new(kernel: &'k Kernel, stis: Vec<Sti>, cfg: VmConfig) -> Self {
        assert!(kernel.num_locks <= 64, "lockset bitmask supports at most 64 locks");
        assert!(!stis.is_empty(), "need at least one thread");
        let n = stis.len();
        Self {
            kernel,
            cfg,
            mem: kernel.init_mem.clone(),
            lock_owner: vec![None; kernel.num_locks as usize],
            threads: stis.into_iter().map(Thread::new).collect(),
            coverage: BitSet::new(kernel.num_blocks()),
            per_thread_coverage: vec![BitSet::new(kernel.num_blocks()); n],
            block_trace: vec![Vec::new(); n],
            block_entry_steps: vec![Vec::new(); n],
            accesses: Vec::new(),
            bugs: Vec::new(),
            steps: 0,
        }
    }

    fn enter_block(&mut self, tid: ThreadId, block: BlockId) {
        self.coverage.insert(block.index());
        self.per_thread_coverage[tid.index()].insert(block.index());
        self.block_trace[tid.index()].push(block);
        self.block_entry_steps[tid.index()].push(self.threads[tid.index()].executed);
    }

    /// Dispatch the next syscall for every idle runnable thread; threads out
    /// of syscalls become `Done`.
    fn dispatch(&mut self) {
        for i in 0..self.threads.len() {
            let tid = ThreadId(i as u8);
            let t = &mut self.threads[i];
            if t.status != Status::Runnable || !t.stack.is_empty() {
                continue;
            }
            if t.next_call >= t.sti.calls.len() {
                t.status = Status::Done;
                continue;
            }
            let call = t.sti.calls[t.next_call];
            t.next_call += 1;
            let func = self.kernel.syscall(call.syscall).func;
            let entry = self.kernel.func(func).entry;
            let mut regs = [0i64; NUM_REGS];
            regs[..3].copy_from_slice(&call.args);
            self.threads[i].stack.push(Frame { block: entry, instr_idx: 0, regs });
            self.enter_block(tid, entry);
        }
    }

    fn views(&self) -> Vec<ThreadView> {
        self.threads
            .iter()
            .enumerate()
            .map(|(i, t)| ThreadView {
                id: ThreadId(i as u8),
                runnable: t.status == Status::Runnable,
                done: t.status == Status::Done,
                executed: t.executed,
            })
            .collect()
    }

    /// Execute one step of thread `tid`. Returns false if the thread blocked
    /// instead of making progress.
    fn step(&mut self, tid: ThreadId) -> bool {
        let ti = tid.index();
        let frame = self.threads[ti].stack.last().cloned().expect("step on idle thread");
        let block = self.kernel.block(frame.block);

        if frame.instr_idx < block.instrs.len() {
            let ins = block.instrs[frame.instr_idx];
            match ins {
                Instr::Const { dst, val } => {
                    self.threads[ti].stack.last_mut().unwrap().regs[dst.index()] = val;
                }
                Instr::BinOp { op, dst, lhs, rhs } => {
                    let f = self.threads[ti].stack.last_mut().unwrap();
                    f.regs[dst.index()] = op.eval(f.regs[lhs.index()], f.regs[rhs.index()]);
                }
                Instr::Load { dst, addr } => {
                    let a = addr.resolve(&frame.regs);
                    let v = self.mem[a.index()];
                    self.threads[ti].stack.last_mut().unwrap().regs[dst.index()] = v;
                    if self.cfg.collect_accesses {
                        self.accesses.push(MemAccess {
                            thread: tid,
                            loc: InstrLoc::new(frame.block, frame.instr_idx as u16),
                            addr: a,
                            is_write: false,
                            lockset: self.threads[ti].held,
                            step: self.steps,
                        });
                    }
                }
                Instr::Store { addr, src } => {
                    let a = addr.resolve(&frame.regs);
                    self.mem[a.index()] = frame.regs[src.index()];
                    if self.cfg.collect_accesses {
                        self.accesses.push(MemAccess {
                            thread: tid,
                            loc: InstrLoc::new(frame.block, frame.instr_idx as u16),
                            addr: a,
                            is_write: true,
                            lockset: self.threads[ti].held,
                            step: self.steps,
                        });
                    }
                }
                Instr::Lock { lock } => {
                    match self.lock_owner[lock.index()] {
                        None => {
                            self.lock_owner[lock.index()] = Some((tid, 1));
                            self.threads[ti].held |= 1 << lock.0;
                        }
                        Some((owner, depth)) if owner == tid => {
                            self.lock_owner[lock.index()] = Some((owner, depth + 1));
                        }
                        Some(_) => {
                            // Contended: block without consuming the step.
                            self.threads[ti].status = Status::Blocked(lock);
                            return false;
                        }
                    }
                }
                Instr::Unlock { lock } => {
                    match self.lock_owner[lock.index()] {
                        Some((owner, depth)) if owner == tid => {
                            if depth == 1 {
                                self.lock_owner[lock.index()] = None;
                                self.threads[ti].held &= !(1 << lock.0);
                                // Wake threads blocked on this lock.
                                for t in &mut self.threads {
                                    if t.status == Status::Blocked(lock) {
                                        t.status = Status::Runnable;
                                    }
                                }
                            } else {
                                self.lock_owner[lock.index()] = Some((owner, depth - 1));
                            }
                        }
                        _ => debug_assert!(false, "unlock of lock not held by {tid}"),
                    }
                }
                Instr::Call { func } => {
                    let entry = self.kernel.func(func).entry;
                    // Return to the instruction after the call.
                    self.threads[ti].stack.last_mut().unwrap().instr_idx += 1;
                    self.threads[ti].stack.push(Frame {
                        block: entry,
                        instr_idx: 0,
                        regs: frame.regs,
                    });
                    self.enter_block(tid, entry);
                    self.threads[ti].executed += 1;
                    self.steps += 1;
                    return true;
                }
                Instr::BugIf { bug, reg, cmp, imm } => {
                    if cmp.eval(frame.regs[reg.index()], imm) {
                        self.bugs.push(BugHit {
                            bug,
                            thread: tid,
                            loc: InstrLoc::new(frame.block, frame.instr_idx as u16),
                            step: self.steps,
                        });
                    }
                }
                Instr::Nop => {}
            }
            self.threads[ti].stack.last_mut().unwrap().instr_idx += 1;
        } else {
            // Terminator.
            match block.term {
                Terminator::Jump(target) => {
                    let f = self.threads[ti].stack.last_mut().unwrap();
                    f.block = target;
                    f.instr_idx = 0;
                    self.enter_block(tid, target);
                }
                Terminator::Branch { lhs, cmp, imm, then_blk, else_blk } => {
                    let taken = cmp.eval(frame.regs[lhs.index()], imm);
                    let target = if taken { then_blk } else { else_blk };
                    let f = self.threads[ti].stack.last_mut().unwrap();
                    f.block = target;
                    f.instr_idx = 0;
                    self.enter_block(tid, target);
                }
                Terminator::Ret => {
                    self.threads[ti].stack.pop();
                }
            }
        }
        self.threads[ti].executed += 1;
        self.steps += 1;
        true
    }

    /// Run to completion under `scheduler`.
    pub fn run(mut self, scheduler: &mut dyn Scheduler) -> ExecResult {
        let exit = loop {
            self.dispatch();
            if self.threads.iter().all(|t| t.status == Status::Done) {
                break ExitReason::Completed;
            }
            if !self.threads.iter().any(|t| t.status == Status::Runnable) {
                break ExitReason::Deadlock;
            }
            if self.steps >= self.cfg.max_steps {
                break ExitReason::StepLimit;
            }
            let views = self.views();
            let mut tid = scheduler.choose(&views);
            if self.threads[tid.index()].status != Status::Runnable {
                tid = views.iter().find(|v| v.runnable).unwrap().id;
            }
            self.step(tid);
        };
        let thread_steps = self.threads.iter().map(|t| t.executed).collect();
        ExecResult {
            coverage: self.coverage,
            per_thread_coverage: self.per_thread_coverage,
            block_trace: self.block_trace,
            block_entry_steps: self.block_entry_steps,
            accesses: self.accesses,
            bugs: self.bugs,
            steps: self.steps,
            thread_steps,
            exit,
        }
    }
}

/// Run a single STI on one thread (the paper's "single-thread execution" used
/// to profile sequential coverage and flows).
pub fn run_sequential(kernel: &Kernel, sti: &Sti) -> ExecResult {
    let vm = Vm::new(kernel, vec![sti.clone()], VmConfig::default());
    vm.run(&mut SequentialScheduler)
}

/// Run a CTI under a hint schedule (a full concurrent test).
pub fn run_ct(
    kernel: &Kernel,
    cti: &Cti,
    hints: crate::sched::ScheduleHints,
    cfg: VmConfig,
) -> ExecResult {
    let vm = Vm::new(kernel, vec![cti.a.clone(), cti.b.clone()], cfg);
    let mut sched = crate::sched::HintScheduler::new(hints);
    vm.run(&mut sched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{ScheduleHints, SwitchPoint};
    use crate::sti::SyscallInvocation;
    use snowcat_kernel::{generate, GenConfig, SyscallId};

    fn kernel() -> Kernel {
        generate(&GenConfig::default())
    }

    fn sti(k: &Kernel, idx: usize) -> Sti {
        let id = SyscallId(idx as u32 % k.syscalls.len() as u32);
        Sti::new(vec![SyscallInvocation { syscall: id, args: [0, 0, 0] }])
    }

    #[test]
    fn sequential_run_completes_and_covers() {
        let k = kernel();
        for i in 0..k.syscalls.len() {
            let r = run_sequential(&k, &sti(&k, i));
            assert_eq!(r.exit, ExitReason::Completed, "syscall {i} did not complete");
            assert!(r.coverage.count() > 0);
            assert!(r.steps > 0);
        }
    }

    #[test]
    fn sequential_run_is_deterministic() {
        let k = kernel();
        let a = run_sequential(&k, &sti(&k, 0));
        let b = run_sequential(&k, &sti(&k, 0));
        assert_eq!(a, b);
    }

    #[test]
    fn concurrent_run_with_hints_completes() {
        let k = kernel();
        let cti = Cti::new(sti(&k, 0), sti(&k, 1));
        let ra = run_sequential(&k, &cti.a);
        let hints = ScheduleHints {
            first: ThreadId(0),
            switches: vec![
                SwitchPoint { thread: ThreadId(0), after: ra.steps / 2 },
                SwitchPoint { thread: ThreadId(1), after: 3 },
            ],
        };
        let r = run_ct(&k, &cti, hints, VmConfig::default());
        assert_eq!(r.exit, ExitReason::Completed);
        // Both threads made progress.
        assert!(r.thread_steps[0] > 0 && r.thread_steps[1] > 0);
    }

    #[test]
    fn memory_accesses_are_recorded_with_locksets() {
        let k = kernel();
        let r = run_sequential(&k, &sti(&k, 0));
        assert!(!r.accesses.is_empty(), "syscall should touch shared memory");
        for a in &r.accesses {
            assert!(a.addr.index() < k.mem_words as usize);
        }
    }

    #[test]
    fn collect_accesses_false_suppresses_stream() {
        let k = kernel();
        let cti = Cti::new(sti(&k, 0), sti(&k, 1));
        let r = run_ct(
            &k,
            &cti,
            ScheduleHints::sequential(ThreadId(0)),
            VmConfig { collect_accesses: false, ..VmConfig::default() },
        );
        assert!(r.accesses.is_empty());
    }

    #[test]
    fn coverage_union_matches_per_thread() {
        let k = kernel();
        let cti = Cti::new(sti(&k, 2), sti(&k, 3));
        let r = run_ct(&k, &cti, ScheduleHints::sequential(ThreadId(0)), VmConfig::default());
        let mut union = crate::bitset::BitSet::new(k.num_blocks());
        union.union_with(&r.per_thread_coverage[0]);
        union.union_with(&r.per_thread_coverage[1]);
        assert_eq!(union, r.coverage);
    }

    #[test]
    fn block_trace_starts_with_entry_block() {
        let k = kernel();
        let s = sti(&k, 0);
        let r = run_sequential(&k, &s);
        let entry = k.func(k.syscall(s.calls[0].syscall).func).entry;
        assert_eq!(r.block_trace[0][0], entry);
    }

    #[test]
    fn empty_sti_completes_immediately() {
        let k = kernel();
        let r = run_sequential(&k, &Sti::default());
        assert_eq!(r.exit, ExitReason::Completed);
        assert_eq!(r.steps, 0);
        assert_eq!(r.coverage.count(), 0);
    }

    #[test]
    fn order_violation_bug_fires_under_crafted_schedule() {
        // Find an OV bug, then brute-force switch points until the oracle
        // fires — proving planted bugs are dynamically exposable.
        let k = kernel();
        let bug = k
            .bugs
            .iter()
            .find(|b| b.kind == snowcat_kernel::BugKind::OrderViolation)
            .expect("default config plants an OV bug");
        let producer = Sti::new(vec![SyscallInvocation { syscall: bug.syscalls.0, args: [0; 3] }]);
        let consumer = Sti::new(vec![SyscallInvocation { syscall: bug.syscalls.1, args: [0; 3] }]);
        let cti = Cti::new(producer.clone(), consumer);
        let len_a = run_sequential(&k, &producer).steps;
        let mut fired = false;
        'outer: for x in 1..=len_a {
            for y in 1..40u64 {
                let hints = ScheduleHints {
                    first: ThreadId(0),
                    switches: vec![
                        SwitchPoint { thread: ThreadId(0), after: x },
                        SwitchPoint { thread: ThreadId(1), after: y },
                    ],
                };
                let r = run_ct(&k, &cti, hints, VmConfig::default());
                if r.hit_bug(bug.id) {
                    fired = true;
                    break 'outer;
                }
            }
        }
        assert!(fired, "order-violation bug should be exposable by some 2-switch schedule");
    }

    #[test]
    fn bug_does_not_fire_sequentially() {
        let k = kernel();
        for bug in &k.bugs {
            for sc in [bug.syscalls.0, bug.syscalls.1] {
                let s = Sti::new(vec![SyscallInvocation { syscall: sc, args: [0; 3] }]);
                let r = run_sequential(&k, &s);
                assert!(
                    !r.hit_bug(bug.id),
                    "bug {} fired in sequential run of {}",
                    bug.id,
                    k.syscall(sc).name
                );
            }
        }
    }
}
