//! Schedule recording and exact replay.
//!
//! Scheduling *hints* are best-effort; once an interesting execution is
//! found (a race, a planted-bug manifestation), a reproducer wants the
//! *exact* interleaving back. [`RecordingScheduler`] wraps any scheduler
//! and captures the per-step thread choices; [`ReplayScheduler`] feeds a
//! captured trace back, step for step. Because the VM is deterministic,
//! replaying the trace reproduces the execution bit-for-bit.

use crate::sched::{Scheduler, ThreadView};
use serde::{Deserialize, Serialize};
use snowcat_kernel::ThreadId;

/// A recorded schedule: thread choices in decision order.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ScheduleTrace {
    /// The chosen thread at each scheduling decision.
    pub choices: Vec<ThreadId>,
}

impl ScheduleTrace {
    /// Number of recorded decisions.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }
}

/// Wraps an inner scheduler and records every decision.
pub struct RecordingScheduler<S> {
    inner: S,
    trace: ScheduleTrace,
}

impl<S: Scheduler> RecordingScheduler<S> {
    /// Wrap `inner`.
    pub fn new(inner: S) -> Self {
        Self { inner, trace: ScheduleTrace::default() }
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &ScheduleTrace {
        &self.trace
    }

    /// Finish and take the trace.
    pub fn into_trace(self) -> ScheduleTrace {
        self.trace
    }
}

impl<S: Scheduler> Scheduler for RecordingScheduler<S> {
    fn choose(&mut self, views: &[ThreadView]) -> ThreadId {
        let choice = self.inner.choose(views);
        self.trace.choices.push(choice);
        choice
    }
}

/// Replays a [`ScheduleTrace`] decision by decision.
///
/// If the trace runs out (e.g. it was truncated), the replayer falls back to
/// the first runnable thread; if the recorded thread is not runnable (which
/// cannot happen when replaying against the same kernel/STIs), it likewise
/// falls back rather than wedging the VM.
pub struct ReplayScheduler {
    trace: ScheduleTrace,
    at: usize,
    /// Decisions that could not be honored (diagnostics; 0 on faithful
    /// replays).
    pub divergences: usize,
}

impl ReplayScheduler {
    /// Build a replayer for `trace`.
    pub fn new(trace: ScheduleTrace) -> Self {
        Self { trace, at: 0, divergences: 0 }
    }
}

impl Scheduler for ReplayScheduler {
    fn choose(&mut self, views: &[ThreadView]) -> ThreadId {
        let fallback =
            || views.iter().find(|v| v.runnable).map(|v| v.id).expect("no runnable thread");
        match self.trace.choices.get(self.at) {
            Some(&t) => {
                self.at += 1;
                if views.iter().any(|v| v.id == t && v.runnable) {
                    t
                } else {
                    self.divergences += 1;
                    fallback()
                }
            }
            None => {
                self.divergences += 1;
                fallback()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Vm, VmConfig};
    use crate::sched::{HintScheduler, ScheduleHints, SwitchPoint};
    use crate::sti::{Sti, SyscallInvocation};
    use snowcat_kernel::{generate, GenConfig, SyscallId};

    fn setup() -> (snowcat_kernel::Kernel, Sti, Sti) {
        let k = generate(&GenConfig::default());
        let a = Sti::new(vec![SyscallInvocation { syscall: SyscallId(0), args: [0; 3] }]);
        let b = Sti::new(vec![SyscallInvocation { syscall: SyscallId(1), args: [1, 0, 0] }]);
        (k, a, b)
    }

    #[test]
    fn replaying_a_recorded_schedule_reproduces_the_execution() {
        let (k, a, b) = setup();
        let hints = ScheduleHints {
            first: snowcat_kernel::ThreadId(0),
            switches: vec![
                SwitchPoint { thread: snowcat_kernel::ThreadId(0), after: 7 },
                SwitchPoint { thread: snowcat_kernel::ThreadId(1), after: 5 },
            ],
        };
        let mut rec = RecordingScheduler::new(HintScheduler::new(hints));
        let original = Vm::new(&k, vec![a.clone(), b.clone()], VmConfig::default()).run(&mut rec);
        let trace = rec.into_trace();
        assert!(!trace.is_empty());

        let mut replay = ReplayScheduler::new(trace);
        let replayed = Vm::new(&k, vec![a, b], VmConfig::default()).run(&mut replay);
        assert_eq!(replay.divergences, 0, "faithful replay must not diverge");
        assert_eq!(original, replayed);
    }

    #[test]
    fn truncated_trace_falls_back_and_completes() {
        let (k, a, b) = setup();
        let mut rec = RecordingScheduler::new(HintScheduler::new(ScheduleHints::sequential(
            snowcat_kernel::ThreadId(0),
        )));
        let _ = Vm::new(&k, vec![a.clone(), b.clone()], VmConfig::default()).run(&mut rec);
        let mut trace = rec.into_trace();
        trace.choices.truncate(trace.choices.len() / 2);

        let mut replay = ReplayScheduler::new(trace);
        let r = Vm::new(&k, vec![a, b], VmConfig::default()).run(&mut replay);
        assert_eq!(r.exit, crate::trace::ExitReason::Completed);
        assert!(replay.divergences > 0);
    }

    #[test]
    fn trace_serializes_round_trip() {
        let trace = ScheduleTrace {
            choices: vec![snowcat_kernel::ThreadId(0), snowcat_kernel::ThreadId(1)],
        };
        let json = serde_json::to_string(&trace).unwrap();
        let back: ScheduleTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(trace, back);
    }
}
