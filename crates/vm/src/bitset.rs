//! A compact bitmap used for block-coverage maps.

use serde::{Deserialize, Serialize};

/// Fixed-capacity bitset indexed by block id.
///
/// Kernel coverage in Snowcat is "which basic blocks executed"; with global
/// block ids a whole-kernel coverage map is one of these.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set with capacity for `len` bits.
    pub fn new(len: usize) -> Self {
        Self { words: vec![0; len.div_ceil(64)], len }
    }

    /// Capacity in bits.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Set bit `i`. Returns `true` if it was newly set.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of range {}", self.len);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Clear bit `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Test bit `i`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Union `other` into `self`; returns the number of newly set bits.
    pub fn union_with(&mut self, other: &BitSet) -> usize {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        let mut new_bits = 0;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            new_bits += (b & !*a).count_ones() as usize;
            *a |= b;
        }
        new_bits
    }

    /// Bits set in `self` but not in `other`.
    pub fn difference(&self, other: &BitSet) -> BitSet {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        BitSet {
            words: self.words.iter().zip(&other.words).map(|(a, b)| a & !b).collect(),
            len: self.len,
        }
    }

    /// Iterate over set bit indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// A stable 64-bit fingerprint of the set contents (used by strategy S1
    /// to remember coverage bitmaps without storing them).
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the words; trailing all-zero words do not affect the
        // value beyond length, which is fixed per kernel.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &w in &self.words {
            h ^= w;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_count() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(129), "second insert is not fresh");
        assert!(s.contains(64));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn union_counts_new_bits() {
        let mut a = BitSet::new(100);
        a.insert(1);
        a.insert(2);
        let mut b = BitSet::new(100);
        b.insert(2);
        b.insert(3);
        b.insert(99);
        assert_eq!(a.union_with(&b), 2);
        assert_eq!(a.count(), 4);
    }

    #[test]
    fn difference_removes_other() {
        let mut a = BitSet::new(70);
        a.insert(5);
        a.insert(69);
        let mut b = BitSet::new(70);
        b.insert(5);
        let d = a.difference(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![69]);
    }

    #[test]
    fn iter_ascending() {
        let mut s = BitSet::new(200);
        for i in [3, 70, 140, 199] {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 70, 140, 199]);
    }

    #[test]
    fn fingerprint_distinguishes_and_is_stable() {
        let mut a = BitSet::new(100);
        a.insert(10);
        let mut b = BitSet::new(100);
        b.insert(11);
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut a2 = BitSet::new(100);
        a2.insert(10);
        assert_eq!(a.fingerprint(), a2.fingerprint());
    }

    #[test]
    fn remove_clears() {
        let mut s = BitSet::new(10);
        s.insert(7);
        s.remove(7);
        assert!(!s.contains(7));
        assert!(s.is_empty());
    }
}
