//! Execution traces and results.
//!
//! The VM records exactly what the paper's modified SKI/QEMU records for
//! dataset labelling and race detection: per-thread block coverage, the
//! memory-access stream (with locksets), bug-oracle hits, and how the run
//! ended.

use crate::bitset::BitSet;
use serde::{Deserialize, Serialize};
use snowcat_kernel::{Addr, BlockId, BugId, InstrLoc, ThreadId};

/// One shared-memory access observed during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemAccess {
    /// Thread that performed the access.
    pub thread: ThreadId,
    /// Static location of the load/store instruction.
    pub loc: InstrLoc,
    /// Effective (resolved) address.
    pub addr: Addr,
    /// True for stores.
    pub is_write: bool,
    /// Bitmask of locks held by the thread at the time of access.
    pub lockset: u64,
    /// Global step index at which the access happened (total order — the VM
    /// serializes threads like SKI's uniprocessor scheduler).
    pub step: u64,
}

/// A planted-bug oracle firing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BugHit {
    /// Which planted bug.
    pub bug: BugId,
    /// Thread that hit the oracle.
    pub thread: ThreadId,
    /// Oracle instruction location.
    pub loc: InstrLoc,
    /// Global step index.
    pub step: u64,
}

/// How an execution terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExitReason {
    /// All threads ran their STIs to completion.
    Completed,
    /// Circular lock wait between the threads; execution aborted.
    Deadlock,
    /// The step budget was exhausted (defensive bound; generated kernels are
    /// loop-free so this indicates a harness bug).
    StepLimit,
}

/// Everything observed during one dynamic execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecResult {
    /// Union coverage over all threads.
    pub coverage: BitSet,
    /// Per-thread block coverage.
    pub per_thread_coverage: Vec<BitSet>,
    /// Per-thread sequence of blocks entered, in execution order. This is the
    /// control-flow trace the graph builder turns into SCB control-flow
    /// edges.
    pub block_trace: Vec<Vec<BlockId>>,
    /// For each `block_trace` entry, the thread's `executed` counter at
    /// block entry. Lets the graph builder map a scheduling hint ("switch
    /// when thread A executes its x-th instruction") to the block that
    /// contains that instruction.
    pub block_entry_steps: Vec<Vec<u64>>,
    /// All shared-memory accesses in global step order.
    pub accesses: Vec<MemAccess>,
    /// Bug-oracle hits.
    pub bugs: Vec<BugHit>,
    /// Total steps executed (all threads).
    pub steps: u64,
    /// Steps executed per thread.
    pub thread_steps: Vec<u64>,
    /// Termination cause.
    pub exit: ExitReason,
}

impl ExecResult {
    /// True when the run exhausted its step/fuel budget — the watchdog's
    /// "hung execution" signal (a wedged guest in SKI terms).
    pub fn hung(&self) -> bool {
        self.exit == ExitReason::StepLimit
    }

    /// True when the run aborted on a cross-thread deadlock — the watchdog's
    /// "crashed execution" signal.
    pub fn crashed(&self) -> bool {
        self.exit == ExitReason::Deadlock
    }

    /// Unique bugs hit during the run.
    pub fn unique_bugs(&self) -> Vec<BugId> {
        let mut ids: Vec<BugId> = self.bugs.iter().map(|b| b.bug).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Whether a specific bug fired.
    pub fn hit_bug(&self, bug: BugId) -> bool {
        self.bugs.iter().any(|b| b.bug == bug)
    }

    /// Coverage of blocks *not* covered by the given baseline set —
    /// the paper's "schedule-dependent block coverage" subtracts all SCBs of
    /// the concurrent test.
    pub fn coverage_beyond(&self, baseline: &BitSet) -> BitSet {
        self.coverage.difference(baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_with_bugs(ids: &[u16]) -> ExecResult {
        ExecResult {
            coverage: BitSet::new(8),
            per_thread_coverage: vec![BitSet::new(8), BitSet::new(8)],
            block_trace: vec![vec![], vec![]],
            block_entry_steps: vec![vec![], vec![]],
            accesses: vec![],
            bugs: ids
                .iter()
                .map(|&i| BugHit {
                    bug: BugId(i),
                    thread: ThreadId(0),
                    loc: InstrLoc::new(BlockId(0), 0),
                    step: 0,
                })
                .collect(),
            steps: 0,
            thread_steps: vec![0, 0],
            exit: ExitReason::Completed,
        }
    }

    #[test]
    fn unique_bugs_dedupes_and_sorts() {
        let r = result_with_bugs(&[2, 1, 2, 1, 3]);
        assert_eq!(r.unique_bugs(), vec![BugId(1), BugId(2), BugId(3)]);
    }

    #[test]
    fn hit_bug_checks_membership() {
        let r = result_with_bugs(&[5]);
        assert!(r.hit_bug(BugId(5)));
        assert!(!r.hit_bug(BugId(6)));
    }

    #[test]
    fn coverage_beyond_subtracts() {
        let mut r = result_with_bugs(&[]);
        r.coverage.insert(1);
        r.coverage.insert(2);
        let mut base = BitSet::new(8);
        base.insert(1);
        assert_eq!(r.coverage_beyond(&base).iter().collect::<Vec<_>>(), vec![2]);
    }
}
