//! Sequential and concurrent test inputs.
//!
//! Following the paper's terminology: a *sequential test input* (STI) is a
//! sequence of syscall invocations executed by one thread; a *concurrent
//! test input* (CTI) is a pair of STIs run on two threads; a *concurrent
//! test* (CT) is a CTI plus scheduling hints.

use serde::{Deserialize, Serialize};
use snowcat_kernel::{Kernel, SyscallId};

/// One syscall invocation with up to three integer arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SyscallInvocation {
    /// Which syscall.
    pub syscall: SyscallId,
    /// Argument values (unused slots are zero).
    pub args: [i64; 3],
}

/// A sequential test input: what one thread executes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Sti {
    /// Invocations in program order.
    pub calls: Vec<SyscallInvocation>,
}

impl Sti {
    /// An STI from a list of invocations.
    pub fn new(calls: Vec<SyscallInvocation>) -> Self {
        Self { calls }
    }

    /// Number of syscalls.
    pub fn len(&self) -> usize {
        self.calls.len()
    }

    /// True if there are no syscalls.
    pub fn is_empty(&self) -> bool {
        self.calls.is_empty()
    }

    /// Validate against a kernel's syscall catalogue: ids must exist and
    /// arguments must be within their declared domains.
    pub fn validate(&self, kernel: &Kernel) -> Result<(), String> {
        for (i, c) in self.calls.iter().enumerate() {
            let Some(spec) = kernel.syscalls.get(c.syscall.index()) else {
                return Err(format!("call {i}: unknown syscall {:?}", c.syscall));
            };
            for (ai, &max) in spec.arg_max.iter().enumerate() {
                if c.args[ai] < 0 || c.args[ai] > max {
                    return Err(format!(
                        "call {i} ({}): arg {ai} = {} outside 0..={max}",
                        spec.name, c.args[ai]
                    ));
                }
            }
        }
        Ok(())
    }
}

/// A concurrent test input: two STIs, one per thread.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Cti {
    /// Thread 0's input.
    pub a: Sti,
    /// Thread 1's input.
    pub b: Sti,
}

impl Cti {
    /// Pair two STIs.
    pub fn new(a: Sti, b: Sti) -> Self {
        Self { a, b }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snowcat_kernel::{generate, GenConfig};

    #[test]
    fn validate_accepts_in_range_args() {
        let k = generate(&GenConfig::default());
        let sti = Sti::new(vec![SyscallInvocation { syscall: SyscallId(0), args: [0, 0, 0] }]);
        assert!(sti.validate(&k).is_ok());
    }

    #[test]
    fn validate_rejects_unknown_syscall() {
        let k = generate(&GenConfig::default());
        let sti = Sti::new(vec![SyscallInvocation { syscall: SyscallId(9999), args: [0, 0, 0] }]);
        assert!(sti.validate(&k).is_err());
    }

    #[test]
    fn validate_rejects_out_of_range_arg() {
        let k = generate(&GenConfig::default());
        let max = k.syscalls[0].arg_max[0];
        let sti =
            Sti::new(vec![SyscallInvocation { syscall: SyscallId(0), args: [max + 1, 0, 0] }]);
        assert!(sti.validate(&k).is_err());
    }
}
