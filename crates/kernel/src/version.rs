//! Kernel version evolution.
//!
//! The paper's generalization study (§5.4) moves from Linux 5.12 to 5.13
//! (released ~2 months later, lightly changed) and 6.1 (released ~18 months
//! later, heavily changed). We model a version as a base [`GenConfig`] plus a
//! chain of [`Evolution`] passes. Each pass:
//!
//! * re-salts a fraction of existing function slots (those functions
//!   regenerate with different bodies — "changed code"),
//! * appends new syscalls per subsystem ("new features"), and
//! * plants additional bugs ("newly introduced concurrency bugs").
//!
//! Unchanged slots keep their derived seed, so their instruction sequences
//! are bit-identical across versions — exactly the property that lets a
//! predictor trained on one version transfer to the next.

use crate::gen::{generate, slot_key, BugPlan, GenConfig, ROLE_BUG, ROLE_HELPER, ROLE_SYSCALL};
use crate::program::Kernel;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One evolution pass applied to a kernel version.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evolution {
    /// Seed for selecting which functions change and their new salts.
    pub seed: u64,
    /// Fraction of existing function slots to regenerate (0.0–1.0).
    pub frac_changed: f64,
    /// New syscalls added per subsystem.
    pub extra_syscalls: usize,
    /// New helper functions added per subsystem.
    pub extra_helpers: usize,
    /// Newly planted bugs.
    pub extra_bugs: BugPlan,
    /// Version tag after this pass (`"5.13"`, …).
    pub version: String,
}

/// A base config plus its evolution chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionSpec {
    /// Base generation config (its `salts` must be empty; evolution owns
    /// salting).
    pub base: GenConfig,
    /// Evolution passes applied in order.
    pub evolutions: Vec<Evolution>,
}

impl VersionSpec {
    /// A fresh spec with no evolutions.
    pub fn new(base: GenConfig) -> Self {
        Self { base, evolutions: Vec::new() }
    }

    /// Append an evolution pass, returning the extended spec.
    pub fn evolved(mut self, e: Evolution) -> Self {
        self.evolutions.push(e);
        self
    }

    /// Resolve the spec into the effective [`GenConfig`] (counts grown, salts
    /// accumulated).
    pub fn config(&self) -> GenConfig {
        let mut cfg = self.base.clone();
        for e in &self.evolutions {
            let mut rng = ChaCha8Rng::seed_from_u64(e.seed);
            // Enumerate the slots that exist *before* this pass.
            let mut slots = Vec::new();
            for si in 0..cfg.num_subsystems {
                for ci in 0..cfg.syscalls_per_subsystem {
                    slots.push(slot_key(si, ROLE_SYSCALL, ci));
                }
                for hi in 0..cfg.helpers_per_subsystem {
                    slots.push(slot_key(si, ROLE_HELPER, hi));
                }
            }
            let bug_roles = [
                (cfg.bugs.easy, ROLE_BUG),
                (cfg.bugs.medium, ROLE_BUG + 1),
                (cfg.bugs.hard, ROLE_BUG + 2),
            ];
            for (count, role) in bug_roles {
                for wi in 0..count {
                    let si = wi % cfg.num_subsystems;
                    slots.push(slot_key(si, role, wi));
                }
            }
            for slot in slots {
                if rng.gen_bool(e.frac_changed.clamp(0.0, 1.0)) {
                    cfg.salts.push((slot, rng.gen()));
                }
            }
            cfg.syscalls_per_subsystem += e.extra_syscalls;
            cfg.helpers_per_subsystem += e.extra_helpers;
            cfg.bugs.easy += e.extra_bugs.easy;
            cfg.bugs.medium += e.extra_bugs.medium;
            cfg.bugs.hard += e.extra_bugs.hard;
            cfg.version = e.version.clone();
        }
        cfg
    }

    /// Generate the kernel for this version.
    pub fn build(&self) -> Kernel {
        generate(&self.config())
    }
}

/// The standard version family used across the evaluation, mirroring the
/// paper's Linux 5.12 / 5.13 / 6.1 setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelVersion {
    /// The base version: proof-of-concept training and the Razzer
    /// known-races study happen here.
    V5_12,
    /// Two months later: lightly evolved.
    V5_13,
    /// Eighteen months later: heavily evolved, with many new planted bugs
    /// (the paper finds 17 new bugs here).
    V6_1,
}

impl KernelVersion {
    /// The spec for this version, derived from a family seed.
    pub fn spec(self, family_seed: u64) -> VersionSpec {
        let base = GenConfig {
            seed: family_seed,
            version: "5.12".into(),
            bugs: BugPlan { easy: 6, medium: 4, hard: 2 },
            ..GenConfig::default()
        };
        let v5_13 = Evolution {
            seed: family_seed ^ 0x5130,
            frac_changed: 0.08,
            extra_syscalls: 1,
            extra_helpers: 0,
            extra_bugs: BugPlan { easy: 1, medium: 1, hard: 0 },
            version: "5.13".into(),
        };
        let v6_1 = Evolution {
            seed: family_seed ^ 0x6100,
            frac_changed: 0.35,
            extra_syscalls: 2,
            extra_helpers: 1,
            extra_bugs: BugPlan { easy: 6, medium: 5, hard: 4 },
            version: "6.1".into(),
        };
        let spec = VersionSpec::new(base);
        match self {
            KernelVersion::V5_12 => spec,
            KernelVersion::V5_13 => spec.evolved(v5_13),
            KernelVersion::V6_1 => spec.evolved(v5_13).evolved(v6_1),
        }
    }

    /// Version tag string.
    pub fn tag(self) -> &'static str {
        match self {
            KernelVersion::V5_12 => "5.12",
            KernelVersion::V5_13 => "5.13",
            KernelVersion::V6_1 => "6.1",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 0xABCD;

    #[test]
    fn versions_build_and_validate() {
        for v in [KernelVersion::V5_12, KernelVersion::V5_13, KernelVersion::V6_1] {
            let k = v.spec(SEED).build();
            assert!(k.validate().is_empty(), "{} invalid", v.tag());
            assert_eq!(k.version, v.tag());
        }
    }

    #[test]
    fn evolution_grows_the_kernel() {
        let k512 = KernelVersion::V5_12.spec(SEED).build();
        let k513 = KernelVersion::V5_13.spec(SEED).build();
        let k61 = KernelVersion::V6_1.spec(SEED).build();
        assert!(k513.syscalls.len() > k512.syscalls.len());
        assert!(k61.syscalls.len() > k513.syscalls.len());
        assert!(k513.bugs.len() > k512.bugs.len());
        assert!(k61.bugs.len() > k513.bugs.len());
    }

    #[test]
    fn v5_13_is_a_light_change() {
        // Most syscalls keep identical instruction sequences 5.12 → 5.13.
        let a = KernelVersion::V5_12.spec(SEED).build();
        let b = KernelVersion::V5_13.spec(SEED).build();
        let by_name =
            |k: &crate::program::Kernel, name: &str| -> Option<Vec<crate::instr::Instr>> {
                let sc = k.syscalls.iter().find(|s| s.name == name)?;
                Some(
                    k.func(sc.func)
                        .blocks
                        .iter()
                        .flat_map(|&blk| k.block(blk).instrs.clone())
                        .collect(),
                )
            };
        let mut same = 0;
        let mut total = 0;
        for sc in &a.syscalls {
            if let (Some(ia), Some(ib)) = (by_name(&a, &sc.name), by_name(&b, &sc.name)) {
                total += 1;
                if ia == ib {
                    same += 1;
                }
            }
        }
        assert!(total > 0);
        let frac = same as f64 / total as f64;
        assert!(frac > 0.7, "expected most syscalls unchanged, got {frac}");
    }

    #[test]
    fn v6_1_changes_more_than_v5_13() {
        let base = KernelVersion::V5_12.spec(SEED).config();
        let c13 = KernelVersion::V5_13.spec(SEED).config();
        let c61 = KernelVersion::V6_1.spec(SEED).config();
        assert!(!c13.salts.is_empty());
        assert!(c61.salts.len() > c13.salts.len());
        assert!(base.salts.is_empty());
    }

    #[test]
    fn spec_config_is_deterministic() {
        let a = KernelVersion::V6_1.spec(SEED).config();
        let b = KernelVersion::V6_1.spec(SEED).config();
        assert_eq!(a, b);
    }
}
