//! Kernel-image statistics: instruction mix, block-size distribution,
//! per-subsystem inventories. Used by `snowcat kernel --stats` and by the
//! dataset-composition reporting.

use crate::ids::SubsystemId;
use crate::instr::Instr;
use crate::program::Kernel;
use serde::{Deserialize, Serialize};

/// Counts of each instruction kind across (part of) the image.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstrMix {
    /// `mov` immediates.
    pub consts: usize,
    /// ALU operations.
    pub binops: usize,
    /// Shared-memory loads.
    pub loads: usize,
    /// Shared-memory stores.
    pub stores: usize,
    /// Lock acquisitions.
    pub locks: usize,
    /// Lock releases.
    pub unlocks: usize,
    /// Helper calls.
    pub calls: usize,
    /// Bug oracles.
    pub bug_checks: usize,
    /// Padding.
    pub nops: usize,
}

impl InstrMix {
    /// Total instructions counted.
    pub fn total(&self) -> usize {
        self.consts
            + self.binops
            + self.loads
            + self.stores
            + self.locks
            + self.unlocks
            + self.calls
            + self.bug_checks
            + self.nops
    }

    fn add(&mut self, ins: &Instr) {
        match ins {
            Instr::Const { .. } => self.consts += 1,
            Instr::BinOp { .. } => self.binops += 1,
            Instr::Load { .. } => self.loads += 1,
            Instr::Store { .. } => self.stores += 1,
            Instr::Lock { .. } => self.locks += 1,
            Instr::Unlock { .. } => self.unlocks += 1,
            Instr::Call { .. } => self.calls += 1,
            Instr::BugIf { .. } => self.bug_checks += 1,
            Instr::Nop => self.nops += 1,
        }
    }

    /// Fraction of instructions touching shared memory.
    pub fn memory_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.loads + self.stores) as f64 / t as f64
        }
    }
}

/// Whole-image statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Version tag.
    pub version: String,
    /// Total basic blocks.
    pub blocks: usize,
    /// Total functions.
    pub funcs: usize,
    /// Instruction mix over the whole image.
    pub mix: InstrMix,
    /// Block-size histogram: index = body length, clamped to
    /// [`Self::SIZE_BUCKETS`]−1.
    pub block_sizes: Vec<usize>,
    /// Per-subsystem (blocks, instructions).
    pub per_subsystem: Vec<(String, usize, usize)>,
}

impl KernelStats {
    /// Histogram buckets for block sizes (last bucket is "≥ this").
    pub const SIZE_BUCKETS: usize = 16;

    /// Compute statistics for `kernel`.
    pub fn compute(kernel: &Kernel) -> Self {
        let mut mix = InstrMix::default();
        let mut block_sizes = vec![0usize; Self::SIZE_BUCKETS];
        let mut per_sub: Vec<(String, usize, usize)> =
            kernel.subsystems.iter().map(|s| (s.name.clone(), 0, 0)).collect();
        for block in &kernel.blocks {
            block_sizes[block.len().min(Self::SIZE_BUCKETS - 1)] += 1;
            let sub: SubsystemId = kernel.func(block.func).subsystem;
            per_sub[sub.index()].1 += 1;
            per_sub[sub.index()].2 += block.len();
            for ins in &block.instrs {
                mix.add(ins);
            }
        }
        Self {
            version: kernel.version.clone(),
            blocks: kernel.num_blocks(),
            funcs: kernel.funcs.len(),
            mix,
            block_sizes,
            per_subsystem: per_sub,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    #[test]
    fn mix_total_matches_kernel_instruction_count() {
        let k = generate(&GenConfig::default());
        let s = KernelStats::compute(&k);
        assert_eq!(s.mix.total(), k.num_instrs());
        assert_eq!(s.blocks, k.num_blocks());
        assert_eq!(s.funcs, k.funcs.len());
    }

    #[test]
    fn histogram_counts_every_block() {
        let k = generate(&GenConfig::default());
        let s = KernelStats::compute(&k);
        assert_eq!(s.block_sizes.iter().sum::<usize>(), k.num_blocks());
    }

    #[test]
    fn per_subsystem_totals_cover_everything() {
        let k = generate(&GenConfig::default());
        let s = KernelStats::compute(&k);
        let blocks: usize = s.per_subsystem.iter().map(|(_, b, _)| b).sum();
        let instrs: usize = s.per_subsystem.iter().map(|(_, _, i)| i).sum();
        assert_eq!(blocks, k.num_blocks());
        assert_eq!(instrs, k.num_instrs());
    }

    #[test]
    fn generated_kernels_are_memory_heavy() {
        // Concurrency testing needs shared-memory traffic; the generator
        // should produce a solid fraction of loads/stores.
        let k = generate(&GenConfig::default());
        let s = KernelStats::compute(&k);
        assert!(
            s.mix.memory_fraction() > 0.25,
            "memory fraction too low: {:.3}",
            s.mix.memory_fraction()
        );
        assert!(s.mix.locks == s.mix.unlocks, "generator emits balanced lock pairs");
        assert!(s.mix.bug_checks > 0);
    }
}
