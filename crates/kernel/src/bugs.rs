//! Planted-bug registry.
//!
//! The generator plants concurrency bugs whose *manifestation* requires a
//! specific interleaving, and registers them here. The VM reports a
//! [`crate::instr::Instr::BugIf`] firing as a bug event; the campaign layer
//! joins those events with this registry to produce the paper's Table 3
//! ("new concurrency bugs", with kind and subsystem).

use crate::ids::{BugId, InstrLoc, SubsystemId, SyscallId};
use serde::{Deserialize, Serialize};

/// Classification following the paper's Table 3 legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BugKind {
    /// DR — plain data race on a correctness-sensitive word.
    DataRace,
    /// AV — atomicity violation (check-then-act or read-modify-write split
    /// by a remote write).
    AtomicityViolation,
    /// OV — order violation (consumer runs before producer initialized).
    OrderViolation,
    /// Multi-constraint bug requiring a chain of ordering constraints, like
    /// the paper's 9-year-old bug #7 in the vivid driver.
    MultiOrder,
}

impl BugKind {
    /// Short code used in tables (`DR` / `AV` / `OV` / `MO`).
    pub fn code(self) -> &'static str {
        match self {
            BugKind::DataRace => "DR",
            BugKind::AtomicityViolation => "AV",
            BugKind::OrderViolation => "OV",
            BugKind::MultiOrder => "MO",
        }
    }
}

/// Expected difficulty of exposing the bug with random schedules. The
/// generator derives this from the number of ordering constraints the
/// interleaving must satisfy; campaigns report it so the evaluation can show
/// that MLPCT shines on the hard tail (the paper's 9 MLPCT-only bugs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BugDifficulty {
    /// One ordering constraint (a lucky coin flip can expose it).
    Easy,
    /// Two ordering constraints.
    Medium,
    /// Three or more ordering constraints (bug-#7 class).
    Hard,
}

/// A planted bug's metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BugSpec {
    /// Registry id (also carried by the `BugIf` oracle instruction).
    pub id: BugId,
    /// Classification.
    pub kind: BugKind,
    /// Difficulty class (number of ordering constraints).
    pub difficulty: BugDifficulty,
    /// Subsystem where the bug lives.
    pub subsystem: SubsystemId,
    /// Human-readable summary, e.g. `"AV: fs_open() & fs_close()"`.
    pub summary: String,
    /// The two syscalls whose concurrent invocation can expose the bug.
    pub syscalls: (SyscallId, SyscallId),
    /// Static locations of the racing/ordered instructions (for the Razzer
    /// experiments, which target instruction pairs).
    pub racing_instrs: Vec<InstrLoc>,
    /// Whether developers would classify the race as harmful (paper reports
    /// a mix of harmful / benign outcomes in Table 3).
    pub harmful: bool,
}

/// True if this bug's oracle can only fire when `a` and `b` (in either
/// order) are the syscalls run by the two threads.
pub fn bug_matches_syscalls(spec: &BugSpec, a: SyscallId, b: SyscallId) -> bool {
    let (x, y) = spec.syscalls;
    (x == a && y == b) || (x == b && y == a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> BugSpec {
        BugSpec {
            id: BugId(0),
            kind: BugKind::AtomicityViolation,
            difficulty: BugDifficulty::Medium,
            subsystem: SubsystemId(1),
            summary: "AV: fs_open() & fs_close()".into(),
            syscalls: (SyscallId(3), SyscallId(4)),
            racing_instrs: vec![],
            harmful: true,
        }
    }

    #[test]
    fn kind_codes() {
        assert_eq!(BugKind::DataRace.code(), "DR");
        assert_eq!(BugKind::AtomicityViolation.code(), "AV");
        assert_eq!(BugKind::OrderViolation.code(), "OV");
        assert_eq!(BugKind::MultiOrder.code(), "MO");
    }

    #[test]
    fn syscall_matching_is_symmetric() {
        let s = spec();
        assert!(bug_matches_syscalls(&s, SyscallId(3), SyscallId(4)));
        assert!(bug_matches_syscalls(&s, SyscallId(4), SyscallId(3)));
        assert!(!bug_matches_syscalls(&s, SyscallId(3), SyscallId(3)));
    }

    #[test]
    fn difficulty_orders() {
        assert!(BugDifficulty::Easy < BugDifficulty::Medium);
        assert!(BugDifficulty::Medium < BugDifficulty::Hard);
    }
}
