//! Procedural kernel generation.
//!
//! [`generate`] builds a complete synthetic [`Kernel`] from a [`GenConfig`]:
//! subsystems with object arrays, flags, statistics counters and locks;
//! syscalls assembled from randomized code *segments* (see [`segments`]);
//! helper functions; and planted concurrency bugs (see [`bugplant`]).
//!
//! Generation is deterministic: the same config (including seed) always
//! yields a bit-identical kernel. Per-function randomness is derived from
//! `(seed, subsystem, function-slot, salt)`, which is what lets
//! [`crate::version`] evolve a kernel by changing the salt of a *subset* of
//! functions — unchanged functions keep identical code, exactly like most of
//! Linux is untouched between 5.12 and 5.13.

pub mod bugplant;
pub mod segments;

use crate::bugs::{BugDifficulty, BugSpec};
use crate::ids::{Addr, BlockId, BugId, FuncId, LockId, Reg, SubsystemId, SyscallId};
use crate::instr::{CmpOp, Instr, Terminator};
use crate::program::{Block, Function, Kernel, MemRegion, RegionKind, Subsystem, SyscallSpec};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// How many bugs of each difficulty to plant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BugPlan {
    /// One ordering constraint (plain data races, simple order violations).
    pub easy: usize,
    /// Two ordering constraints (atomicity violations).
    pub medium: usize,
    /// Three ordering constraints (the paper's bug-#7 class).
    pub hard: usize,
}

impl BugPlan {
    /// Total number of bugs in the plan.
    pub fn total(&self) -> usize {
        self.easy + self.medium + self.hard
    }
}

/// Generator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenConfig {
    /// Master seed.
    pub seed: u64,
    /// Version tag stamped on the kernel (`"5.12"`, …).
    pub version: String,
    /// Number of subsystems (names are drawn from a fixed list).
    pub num_subsystems: usize,
    /// Plain (non-bug-carrier) syscalls per subsystem.
    pub syscalls_per_subsystem: usize,
    /// Helper functions per subsystem.
    pub helpers_per_subsystem: usize,
    /// Code segments per syscall body (min, max).
    pub segments_per_syscall: (usize, usize),
    /// Objects per subsystem object array.
    pub objects: u32,
    /// Fields per object.
    pub fields: u32,
    /// Flag words per subsystem.
    pub flags: u32,
    /// Statistics counters per subsystem.
    pub stats: u32,
    /// Locks per subsystem.
    pub locks: u16,
    /// Planted bugs, spread round-robin across subsystems.
    pub bugs: BugPlan,
    /// Per-function salt; [`crate::version`] perturbs this for evolved
    /// functions. Index is the global function *slot* (see [`slot_key`]).
    pub salts: Vec<(u64, u64)>,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self {
            seed: 0x5eed_cafe,
            version: "5.12".into(),
            num_subsystems: 8,
            syscalls_per_subsystem: 8,
            helpers_per_subsystem: 4,
            segments_per_syscall: (6, 12),
            objects: 6,
            fields: 8,
            flags: 8,
            stats: 8,
            locks: 2,
            bugs: BugPlan { easy: 4, medium: 3, hard: 2 },
            salts: Vec::new(),
        }
    }
}

impl GenConfig {
    /// Per-function RNG seed: mixes the master seed, the function's stable
    /// slot key and any evolution salt attached to that slot.
    pub fn func_seed(&self, slot: u64) -> u64 {
        let salt =
            self.salts.iter().rev().find(|(s, _)| *s == slot).map(|(_, salt)| *salt).unwrap_or(0);
        splitmix(self.seed ^ slot.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt)
    }
}

/// Stable slot key for a function: survives evolution so unchanged functions
/// regenerate identically.
pub fn slot_key(subsys: usize, role: u64, idx: usize) -> u64 {
    (subsys as u64) << 32 | role << 24 | idx as u64
}

/// Role constants for [`slot_key`].
pub const ROLE_SYSCALL: u64 = 1;
/// Helper-function role.
pub const ROLE_HELPER: u64 = 2;
/// Bug-carrier syscall role.
pub const ROLE_BUG: u64 = 3;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Names given to subsystems, mirroring the paper's Table 3 subsystems.
pub const SUBSYSTEM_NAMES: &[&str] =
    &["fs", "net", "drivers", "sound", "mm", "tty", "block", "ipc"];

/// Memory/lock layout of one subsystem, used by segment emitters.
#[derive(Debug, Clone)]
pub struct SubsysLayout {
    /// Subsystem id.
    pub id: SubsystemId,
    /// Object array: `objects × fields` words.
    pub objects_base: Addr,
    /// Objects in the array.
    pub objects: u32,
    /// Fields (words) per object.
    pub fields: u32,
    /// Flag words.
    pub flags_base: Addr,
    /// Number of flag words.
    pub flags: u32,
    /// Statistics counters.
    pub stats_base: Addr,
    /// Number of counters.
    pub stats: u32,
    /// Words reserved for planted-bug state (owner fields, init counters).
    pub bug_base: Addr,
    /// Number of reserved bug words.
    pub bug_words: u32,
    /// Locks owned by the subsystem.
    pub locks: Vec<LockId>,
    /// Kernel-global flag words (shared by every subsystem, like
    /// `current->flags` or VFS state in Linux) — the main source of
    /// cross-subsystem interaction.
    pub gflags_base: Addr,
    /// Number of global flag words.
    pub gflags: u32,
    /// Kernel-global statistics counters.
    pub gstats_base: Addr,
    /// Number of global counters.
    pub gstats: u32,
}

/// Incremental kernel builder used by the generator and by tests that need
/// hand-crafted kernels.
pub struct KernelBuilder {
    blocks: Vec<Block>,
    funcs: Vec<Function>,
    subsystems: Vec<Subsystem>,
    regions: Vec<MemRegion>,
    syscalls: Vec<SyscallSpec>,
    bugs: Vec<BugSpec>,
    mem_words: u32,
    num_locks: u16,
    init_mem: Vec<i64>,
    cur_func: Option<FuncId>,
    cur_block: Option<BlockId>,
}

impl KernelBuilder {
    /// Fresh, empty builder.
    pub fn new() -> Self {
        Self {
            blocks: Vec::new(),
            funcs: Vec::new(),
            subsystems: Vec::new(),
            regions: Vec::new(),
            syscalls: Vec::new(),
            bugs: Vec::new(),
            mem_words: 0,
            num_locks: 0,
            init_mem: Vec::new(),
            cur_func: None,
            cur_block: None,
        }
    }

    /// Register a subsystem and return its id.
    pub fn add_subsystem(&mut self, name: &str) -> SubsystemId {
        let id = SubsystemId(self.subsystems.len() as u16);
        self.subsystems.push(Subsystem { name: name.to_string(), locks: vec![], regions: vec![] });
        id
    }

    /// Allocate a contiguous memory region, filling it with `init`.
    pub fn alloc_region(
        &mut self,
        subsystem: SubsystemId,
        kind: RegionKind,
        len: u32,
        name: &str,
        init: i64,
    ) -> Addr {
        let start = Addr(self.mem_words);
        self.mem_words += len;
        self.init_mem.resize(self.mem_words as usize, 0);
        for w in &mut self.init_mem[start.index()..] {
            *w = init;
        }
        let idx = self.regions.len();
        self.regions.push(MemRegion { subsystem, kind, start, len, name: name.to_string() });
        self.subsystems[subsystem.index()].regions.push(idx);
        start
    }

    /// Allocate a lock owned by `subsystem`.
    pub fn alloc_lock(&mut self, subsystem: SubsystemId) -> LockId {
        let id = LockId(self.num_locks);
        self.num_locks += 1;
        self.subsystems[subsystem.index()].locks.push(id);
        id
    }

    /// Begin a new function; subsequent [`emit`](Self::emit) calls append to
    /// its entry block.
    pub fn begin_func(&mut self, name: &str, subsystem: SubsystemId) -> FuncId {
        assert!(self.cur_func.is_none(), "begin_func while another function is open");
        let fid = FuncId(self.funcs.len() as u32);
        let entry = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block { func: fid, instrs: vec![], term: Terminator::Ret });
        self.funcs.push(Function { name: name.to_string(), subsystem, entry, blocks: vec![entry] });
        self.cur_func = Some(fid);
        self.cur_block = Some(entry);
        fid
    }

    /// Append an instruction to the current block.
    pub fn emit(&mut self, instr: Instr) {
        let b = self.cur_block.expect("emit outside a function");
        self.blocks[b.index()].instrs.push(instr);
    }

    /// Static location of the most recently emitted instruction in the
    /// current block. Used by the bug planter to record racing instructions.
    pub fn last_loc(&self) -> crate::ids::InstrLoc {
        let b = self.cur();
        let n = self.blocks[b.index()].instrs.len();
        assert!(n > 0, "last_loc on empty block");
        crate::ids::InstrLoc::new(b, (n - 1) as u16)
    }

    /// Create a fresh (unterminated) block in the current function without
    /// switching to it.
    pub fn new_block(&mut self) -> BlockId {
        let fid = self.cur_func.expect("new_block outside a function");
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block { func: fid, instrs: vec![], term: Terminator::Ret });
        self.funcs[fid.index()].blocks.push(id);
        id
    }

    /// Switch emission to `block`.
    pub fn set_cur(&mut self, block: BlockId) {
        assert_eq!(
            Some(self.blocks[block.index()].func),
            self.cur_func,
            "set_cur to a block of another function"
        );
        self.cur_block = Some(block);
    }

    /// The block currently being emitted into.
    pub fn cur(&self) -> BlockId {
        self.cur_block.expect("no current block")
    }

    /// Terminate the current block with a conditional branch to two fresh
    /// blocks and return `(then_blk, else_blk)`. The caller fills each arm
    /// (via [`set_cur`](Self::set_cur)) and routes it onward.
    pub fn branch(&mut self, lhs: Reg, cmp: CmpOp, imm: i64) -> (BlockId, BlockId) {
        let then_blk = self.new_block();
        let else_blk = self.new_block();
        let b = self.cur();
        self.blocks[b.index()].term = Terminator::Branch { lhs, cmp, imm, then_blk, else_blk };
        (then_blk, else_blk)
    }

    /// Terminate the current block with a jump.
    pub fn jump_to(&mut self, target: BlockId) {
        let b = self.cur();
        self.blocks[b.index()].term = Terminator::Jump(target);
    }

    /// Terminate the current block with `Ret` and close the function.
    pub fn end_func(&mut self) {
        let b = self.cur();
        self.blocks[b.index()].term = Terminator::Ret;
        self.cur_func = None;
        self.cur_block = None;
    }

    /// Register a syscall entry.
    pub fn add_syscall(
        &mut self,
        name: &str,
        func: FuncId,
        subsystem: SubsystemId,
        arg_max: Vec<i64>,
    ) -> SyscallId {
        let id = SyscallId(self.syscalls.len() as u32);
        self.syscalls.push(SyscallSpec { name: name.to_string(), func, subsystem, arg_max });
        id
    }

    /// Name of a registered subsystem.
    pub fn subsystem_name(&self, id: SubsystemId) -> String {
        self.subsystems[id.index()].name.clone()
    }

    /// Name of a registered syscall.
    pub fn syscall_name(&self, id: SyscallId) -> String {
        self.syscalls[id.index()].name.clone()
    }

    /// Reserve the next bug id.
    pub fn next_bug_id(&self) -> BugId {
        BugId(self.bugs.len() as u16)
    }

    /// Register a planted bug.
    pub fn add_bug(&mut self, spec: BugSpec) {
        assert_eq!(spec.id, self.next_bug_id(), "bug ids must be registered in order");
        self.bugs.push(spec);
    }

    /// Finish the build and validate the image.
    ///
    /// # Panics
    /// Panics if validation fails — the generator must never emit a
    /// malformed kernel.
    pub fn finish(self, version: &str) -> Kernel {
        assert!(self.cur_func.is_none(), "finish with an open function");
        let kernel = Kernel {
            version: version.to_string(),
            blocks: self.blocks,
            funcs: self.funcs,
            subsystems: self.subsystems,
            regions: self.regions,
            syscalls: self.syscalls,
            bugs: self.bugs,
            mem_words: self.mem_words,
            num_locks: self.num_locks,
            init_mem: self.init_mem,
        };
        let errs = kernel.validate();
        assert!(errs.is_empty(), "generated kernel failed validation: {errs:?}");
        kernel
    }
}

impl Default for KernelBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Generate a kernel from `config`.
pub fn generate(config: &GenConfig) -> Kernel {
    let mut kb = KernelBuilder::new();
    let mut layouts = Vec::new();

    // Kernel-global shared state, visible to every subsystem.
    let global_sub = kb.add_subsystem("kernelglobal");
    let gflags: u32 = 8;
    let gstats: u32 = 4;
    let gflags_base = kb.alloc_region(global_sub, RegionKind::Flags, gflags, "global.flags", 0);
    let gstats_base =
        kb.alloc_region(global_sub, RegionKind::StatsCounter, gstats, "global.stats", 0);

    // Lay out subsystems: memory regions + locks.
    for si in 0..config.num_subsystems {
        let name = SUBSYSTEM_NAMES[si % SUBSYSTEM_NAMES.len()];
        let id = kb.add_subsystem(name);
        let objects_base = kb.alloc_region(
            id,
            RegionKind::ObjectArray,
            config.objects * config.fields,
            &format!("{name}.objects"),
            0,
        );
        let flags_base =
            kb.alloc_region(id, RegionKind::Flags, config.flags, &format!("{name}.flags"), 0);
        let stats_base = kb.alloc_region(
            id,
            RegionKind::StatsCounter,
            config.stats,
            &format!("{name}.stats"),
            0,
        );
        let bug_words = 24;
        let bug_base =
            kb.alloc_region(id, RegionKind::Flags, bug_words, &format!("{name}.bugstate"), 0);
        let locks = (0..config.locks).map(|_| kb.alloc_lock(id)).collect();
        layouts.push(SubsysLayout {
            id,
            objects_base,
            objects: config.objects,
            fields: config.fields,
            flags_base,
            flags: config.flags,
            stats_base,
            stats: config.stats,
            bug_base,
            bug_words,
            locks,
            gflags_base,
            gflags,
            gstats_base,
            gstats,
        });
    }

    // Helper functions first so syscalls can call them.
    let mut helpers: Vec<Vec<FuncId>> = vec![Vec::new(); config.num_subsystems];
    for (si, layout) in layouts.iter().enumerate() {
        for hi in 0..config.helpers_per_subsystem {
            let slot = slot_key(si, ROLE_HELPER, hi);
            let mut rng = ChaCha8Rng::seed_from_u64(config.func_seed(slot));
            let name = format!(
                "{}_{}_helper",
                SUBSYSTEM_NAMES[si % SUBSYSTEM_NAMES.len()],
                segments::HELPER_VERBS[hi % segments::HELPER_VERBS.len()]
            );
            let fid = kb.begin_func(&name, layout.id);
            let n = rng.gen_range(1..=3);
            for _ in 0..n {
                segments::emit_segment(&mut kb, layout, &[], &mut rng);
            }
            kb.end_func();
            helpers[si].push(fid);
        }
    }

    // Plain syscalls.
    for (si, layout) in layouts.iter().enumerate() {
        let sub_name = SUBSYSTEM_NAMES[si % SUBSYSTEM_NAMES.len()];
        for ci in 0..config.syscalls_per_subsystem {
            let slot = slot_key(si, ROLE_SYSCALL, ci);
            let mut rng = ChaCha8Rng::seed_from_u64(config.func_seed(slot));
            let verb = segments::SYSCALL_VERBS[ci % segments::SYSCALL_VERBS.len()];
            let name = format!("{sub_name}_{verb}");
            let fid = kb.begin_func(&name, layout.id);
            let (lo, hi) = config.segments_per_syscall;
            let n = rng.gen_range(lo..=hi);
            for _ in 0..n {
                segments::emit_segment(&mut kb, layout, &helpers[si], &mut rng);
            }
            kb.end_func();
            kb.add_syscall(&name, fid, layout.id, vec![i64::from(config.objects) - 1]);
        }
    }

    // Planted bugs: round-robin across subsystems, two carrier syscalls each.
    // Slot keys and bug-state words are derived from (difficulty, index
    // within difficulty) so that evolving a version by *adding* bugs of one
    // difficulty never perturbs the code of pre-existing bugs.
    let plan = [
        (BugDifficulty::Easy, config.bugs.easy, ROLE_BUG, 0usize),
        (BugDifficulty::Medium, config.bugs.medium, ROLE_BUG + 1, 2),
        (BugDifficulty::Hard, config.bugs.hard, ROLE_BUG + 2, 4),
    ];
    for (difficulty, count, role, band) in plan {
        for wi in 0..count {
            let si = wi % config.num_subsystems;
            let slot = slot_key(si, role, wi);
            let mut rng = ChaCha8Rng::seed_from_u64(config.func_seed(slot));
            let local_slot = band + wi / config.num_subsystems;
            let tag = band * 100 + wi;
            bugplant::plant_bug(
                &mut kb,
                &layouts[si],
                tag,
                local_slot,
                difficulty,
                &helpers[si],
                &mut rng,
            );
        }
    }

    kb.finish(&config.version)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_generation_validates() {
        let k = generate(&GenConfig::default());
        assert!(k.validate().is_empty());
        assert!(k.num_blocks() > 100, "kernel too small: {}", k.num_blocks());
        assert_eq!(k.bugs.len(), GenConfig::default().bugs.total());
        // Every planted bug names two existing syscalls.
        for b in &k.bugs {
            assert!(b.syscalls.0.index() < k.syscalls.len());
            assert!(b.syscalls.1.index() < k.syscalls.len());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&GenConfig::default());
        let b = generate(&GenConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GenConfig::default());
        let b = generate(&GenConfig { seed: 1234, ..GenConfig::default() });
        assert_ne!(a, b);
    }

    #[test]
    fn salts_change_only_targeted_function() {
        let base = GenConfig::default();
        let slot = slot_key(0, ROLE_SYSCALL, 0);
        let salted = GenConfig { salts: vec![(slot, 42)], ..base.clone() };
        let a = generate(&base);
        let b = generate(&salted);
        // The first fs syscall changed...
        let fa = a.syscalls[0].func;
        let fb = b.syscalls[0].func;
        let body_a: Vec<_> = a.func(fa).blocks.iter().map(|&x| a.block(x).clone()).collect();
        let body_b: Vec<_> = b.func(fb).blocks.iter().map(|&x| b.block(x).clone()).collect();
        assert_ne!(body_a, body_b, "salted function should regenerate differently");
        // ...but another subsystem's syscall did not (same instruction
        // sequence even if block ids shifted).
        let ga = a.syscalls[base.syscalls_per_subsystem].func;
        let gb = b.syscalls[base.syscalls_per_subsystem].func;
        let instrs_a: Vec<_> =
            a.func(ga).blocks.iter().flat_map(|&x| a.block(x).instrs.clone()).collect();
        let instrs_b: Vec<_> =
            b.func(gb).blocks.iter().flat_map(|&x| b.block(x).instrs.clone()).collect();
        assert_eq!(instrs_a, instrs_b);
    }

    #[test]
    fn builder_rejects_cross_function_set_cur() {
        let mut kb = KernelBuilder::new();
        let sub = kb.add_subsystem("t");
        kb.begin_func("a", sub);
        let blk = kb.cur();
        kb.end_func();
        kb.begin_func("b", sub);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| kb.set_cur(blk)));
        assert!(res.is_err());
    }
}
