//! Filler code segments.
//!
//! Syscall bodies are assembled from the idioms that dominate real kernel
//! code paths and that matter to concurrency testing:
//!
//! * **flag guards** — load a shared flag, branch; the rarely-taken arm is a
//!   1-hop URB whenever no earlier syscall set the flag, and whether it runs
//!   concurrently depends on the interleaving (this is the learnable signal
//!   the PIC model must discover),
//! * **flag setters** — the producers for those guards,
//! * **locked / unlocked read-modify-writes** on object fields,
//! * **statistics bumps** — unprotected counter increments (benign races),
//! * **object state machines** — branchy field updates, and
//! * **helper calls**.

use super::{KernelBuilder, SubsysLayout};
use crate::ids::{FuncId, Reg};
use crate::instr::{AddrExpr, BinOp, CmpOp, Instr};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Verbs used to name plain syscalls (wraps around if more are needed).
pub const SYSCALL_VERBS: &[&str] =
    &["open", "close", "read", "write", "ioctl", "poll", "mmap", "seek", "stat", "sync"];

/// Verbs used to name helper functions.
pub const HELPER_VERBS: &[&str] = &["init", "update", "check", "flush", "lookup"];

/// The value a flag's setters store and its guards test. Tying the value to
/// the flag index means any (guard, setter) pair on the same flag is a
/// producer/consumer match, which is what makes URB coverage genuinely
/// schedule-dependent (and thus learnable) rather than vanishingly rare.
pub fn flag_value(flag: u32) -> i64 {
    1 + i64::from(flag % 3)
}

/// Scratch registers (r3..r15); r0..r2 hold syscall arguments.
fn scratch(rng: &mut ChaCha8Rng) -> Reg {
    Reg(rng.gen_range(3..16))
}

/// An argument register (syscall args land in r0..r2).
fn arg_reg(rng: &mut ChaCha8Rng) -> Reg {
    Reg(rng.gen_range(0..3))
}

/// Effective address of field `field` across the subsystem object array,
/// indexed by `idx_reg`.
fn obj_field(layout: &SubsysLayout, field: u32, idx_reg: Reg) -> AddrExpr {
    AddrExpr::Indexed {
        base: layout.objects_base.offset(field),
        reg: idx_reg,
        stride: layout.fields,
        len: layout.objects,
    }
}

/// Emit one randomly chosen segment into the current function.
pub fn emit_segment(
    kb: &mut KernelBuilder,
    layout: &SubsysLayout,
    helpers: &[FuncId],
    rng: &mut ChaCha8Rng,
) {
    // Weighted choice; flag guards and setters are common because they are
    // the raw material of schedule-dependent coverage.
    let roll = rng.gen_range(0u32..100);
    match roll {
        0..=24 => flag_guard(kb, layout, rng),
        25..=39 => flag_set(kb, layout, rng),
        40..=54 => locked_rmw(kb, layout, rng),
        55..=64 => unlocked_rmw(kb, layout, rng),
        65..=74 => stat_bump(kb, layout, rng),
        75..=89 => state_machine(kb, layout, rng),
        _ => {
            if helpers.is_empty() {
                stat_bump(kb, layout, rng);
            } else {
                helper_call(kb, helpers, rng);
            }
        }
    }
}

/// `ld rT, [flag]; if rT == v { rare arm } else { common arm }`.
///
/// `v` is the flag's designated value ([`flag_value`]) and flags boot as 0,
/// so the then-arm only runs if some other code set the flag first —
/// sequentially rare, concurrently reachable.
pub fn flag_guard(kb: &mut KernelBuilder, layout: &SubsysLayout, rng: &mut ChaCha8Rng) {
    let (addr, v) = pick_flag(layout, rng);
    let rt = scratch(rng);
    kb.emit(Instr::Load { dst: rt, addr: AddrExpr::Fixed(addr) });
    let (then_blk, else_blk) = kb.branch(rt, CmpOp::Eq, v);
    let merge = kb.new_block();

    // Rare arm: touch state so covering it is observable and consequential.
    kb.set_cur(then_blk);
    match rng.gen_range(0u32..3) {
        0 => {
            // Propagate into another flag (creates URB chains).
            let (gaddr, gv) = pick_flag(layout, rng);
            let rv = scratch(rng);
            kb.emit(Instr::Const { dst: rv, val: gv });
            kb.emit(Instr::Store { addr: AddrExpr::Fixed(gaddr), src: rv });
        }
        1 => {
            // Update an object field.
            let ra = arg_reg(rng);
            let rv = scratch(rng);
            let field = rng.gen_range(0..layout.fields);
            kb.emit(Instr::Load { dst: rv, addr: obj_field(layout, field, ra) });
            let one = scratch(rng);
            kb.emit(Instr::Const { dst: one, val: 1 });
            kb.emit(Instr::BinOp { op: BinOp::Add, dst: rv, lhs: rv, rhs: one });
            kb.emit(Instr::Store { addr: obj_field(layout, field, ra), src: rv });
        }
        _ => {
            kb.emit(Instr::Nop);
            kb.emit(Instr::Nop);
        }
    }
    kb.jump_to(merge);

    // Common arm.
    kb.set_cur(else_blk);
    if rng.gen_bool(0.5) {
        let rs = scratch(rng);
        kb.emit(Instr::Const { dst: rs, val: 0 });
    }
    kb.jump_to(merge);

    kb.set_cur(merge);
}

/// `st [flag], v` — the producer side of [`flag_guard`].
pub fn flag_set(kb: &mut KernelBuilder, layout: &SubsysLayout, rng: &mut ChaCha8Rng) {
    let (addr, v) = pick_flag(layout, rng);
    let rv = scratch(rng);
    kb.emit(Instr::Const { dst: rv, val: v });
    kb.emit(Instr::Store { addr: AddrExpr::Fixed(addr), src: rv });
}

/// Choose a flag word: kernel-global with probability 1/4 (cross-subsystem
/// interaction), subsystem-local otherwise. Returns (address, designated
/// value).
fn pick_flag(layout: &SubsysLayout, rng: &mut ChaCha8Rng) -> (crate::ids::Addr, i64) {
    if layout.gflags > 0 && rng.gen_bool(0.25) {
        let f = rng.gen_range(0..layout.gflags);
        (layout.gflags_base.offset(f), flag_value(f))
    } else {
        let f = rng.gen_range(0..layout.flags);
        (layout.flags_base.offset(f), flag_value(f))
    }
}

/// `lock; ld; add; st; unlock` on a random object field.
pub fn locked_rmw(kb: &mut KernelBuilder, layout: &SubsysLayout, rng: &mut ChaCha8Rng) {
    let lock = layout.locks[rng.gen_range(0..layout.locks.len())];
    let ra = arg_reg(rng);
    let field = rng.gen_range(0..layout.fields);
    let rv = scratch(rng);
    let rc = scratch(rng);
    kb.emit(Instr::Lock { lock });
    kb.emit(Instr::Load { dst: rv, addr: obj_field(layout, field, ra) });
    kb.emit(Instr::Const { dst: rc, val: rng.gen_range(1..=4) });
    kb.emit(Instr::BinOp { op: BinOp::Add, dst: rv, lhs: rv, rhs: rc });
    kb.emit(Instr::Store { addr: obj_field(layout, field, ra), src: rv });
    kb.emit(Instr::Unlock { lock });
}

/// Same read-modify-write but without the lock — a race candidate.
pub fn unlocked_rmw(kb: &mut KernelBuilder, layout: &SubsysLayout, rng: &mut ChaCha8Rng) {
    let ra = arg_reg(rng);
    let field = rng.gen_range(0..layout.fields);
    let rv = scratch(rng);
    let rc = scratch(rng);
    kb.emit(Instr::Load { dst: rv, addr: obj_field(layout, field, ra) });
    kb.emit(Instr::Const { dst: rc, val: rng.gen_range(1..=4) });
    kb.emit(Instr::BinOp { op: BinOp::Xor, dst: rv, lhs: rv, rhs: rc });
    kb.emit(Instr::Store { addr: obj_field(layout, field, ra), src: rv });
}

/// Unprotected statistics counter increment — the canonical benign race.
pub fn stat_bump(kb: &mut KernelBuilder, layout: &SubsysLayout, rng: &mut ChaCha8Rng) {
    let addr = if layout.gstats > 0 && rng.gen_bool(0.25) {
        layout.gstats_base.offset(rng.gen_range(0..layout.gstats))
    } else {
        layout.stats_base.offset(rng.gen_range(0..layout.stats))
    };
    let rv = scratch(rng);
    let one = scratch(rng);
    kb.emit(Instr::Load { dst: rv, addr: AddrExpr::Fixed(addr) });
    kb.emit(Instr::Const { dst: one, val: 1 });
    kb.emit(Instr::BinOp { op: BinOp::Add, dst: rv, lhs: rv, rhs: one });
    kb.emit(Instr::Store { addr: AddrExpr::Fixed(addr), src: rv });
}

/// Branch on an object's state word and advance/reset the state machine.
pub fn state_machine(kb: &mut KernelBuilder, layout: &SubsysLayout, rng: &mut ChaCha8Rng) {
    let ra = arg_reg(rng);
    let state_field = 0; // field 0 is the conventional state word
    let rv = scratch(rng);
    kb.emit(Instr::Load { dst: rv, addr: obj_field(layout, state_field, ra) });
    let limit = rng.gen_range(2..=4i64);
    let (then_blk, else_blk) = kb.branch(rv, CmpOp::Lt, limit);
    let merge = kb.new_block();

    kb.set_cur(then_blk);
    let one = scratch(rng);
    kb.emit(Instr::Const { dst: one, val: 1 });
    kb.emit(Instr::BinOp { op: BinOp::Add, dst: rv, lhs: rv, rhs: one });
    kb.emit(Instr::Store { addr: obj_field(layout, state_field, ra), src: rv });
    kb.jump_to(merge);

    kb.set_cur(else_blk);
    let zero = scratch(rng);
    kb.emit(Instr::Const { dst: zero, val: 0 });
    kb.emit(Instr::Store { addr: obj_field(layout, state_field, ra), src: zero });
    kb.jump_to(merge);

    kb.set_cur(merge);
}

/// Call a subsystem helper.
pub fn helper_call(kb: &mut KernelBuilder, helpers: &[FuncId], rng: &mut ChaCha8Rng) {
    let func = helpers[rng.gen_range(0..helpers.len())];
    kb.emit(Instr::Call { func });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GenConfig, KernelBuilder};
    use crate::program::RegionKind;
    use rand::SeedableRng;

    fn test_layout(kb: &mut KernelBuilder) -> SubsysLayout {
        let id = kb.add_subsystem("t");
        let objects_base = kb.alloc_region(id, RegionKind::ObjectArray, 24, "t.objects", 0);
        let flags_base = kb.alloc_region(id, RegionKind::Flags, 8, "t.flags", 0);
        let stats_base = kb.alloc_region(id, RegionKind::StatsCounter, 4, "t.stats", 0);
        let bug_base = kb.alloc_region(id, RegionKind::Flags, 8, "t.bugstate", 0);
        let gflags_base = kb.alloc_region(id, RegionKind::Flags, 4, "t.gflags", 0);
        let gstats_base = kb.alloc_region(id, RegionKind::StatsCounter, 2, "t.gstats", 0);
        let locks = vec![kb.alloc_lock(id)];
        SubsysLayout {
            id,
            objects_base,
            objects: 4,
            fields: 6,
            flags_base,
            flags: 8,
            stats_base,
            stats: 4,
            bug_base,
            bug_words: 8,
            locks,
            gflags_base,
            gflags: 4,
            gstats_base,
            gstats: 2,
        }
    }

    #[test]
    fn every_segment_produces_valid_kernel() {
        // Emit each segment kind many times; the finished kernel must pass
        // structural validation (balanced branches, in-range addresses).
        let mut kb = KernelBuilder::new();
        let layout = test_layout(&mut kb);
        let f = kb.begin_func("t_all", layout.id);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        for _ in 0..50 {
            emit_segment(&mut kb, &layout, &[], &mut rng);
        }
        kb.end_func();
        kb.add_syscall("t_all", f, layout.id, vec![3]);
        let k = kb.finish("t");
        assert!(k.validate().is_empty());
    }

    #[test]
    fn flag_guard_produces_branch_with_rare_arm() {
        let mut kb = KernelBuilder::new();
        let layout = test_layout(&mut kb);
        kb.begin_func("t_g", layout.id);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        flag_guard(&mut kb, &layout, &mut rng);
        kb.end_func();
        let k = kb.finish("t");
        // Entry block must end in a Branch whose compared immediate is 1..=3.
        let entry = k.func(crate::ids::FuncId(0)).entry;
        match k.block(entry).term {
            crate::instr::Terminator::Branch { imm, cmp, .. } => {
                assert_eq!(cmp, CmpOp::Eq);
                assert!((1..=3).contains(&imm));
            }
            ref t => panic!("expected branch, got {t:?}"),
        }
    }

    #[test]
    fn locked_rmw_is_balanced() {
        let mut kb = KernelBuilder::new();
        let layout = test_layout(&mut kb);
        kb.begin_func("t_l", layout.id);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        locked_rmw(&mut kb, &layout, &mut rng);
        kb.end_func();
        let k = kb.finish("t");
        let blk = k.block(k.func(crate::ids::FuncId(0)).entry);
        let locks = blk.instrs.iter().filter(|i| matches!(i, Instr::Lock { .. })).count();
        let unlocks = blk.instrs.iter().filter(|i| matches!(i, Instr::Unlock { .. })).count();
        assert_eq!(locks, 1);
        assert_eq!(unlocks, 1);
    }

    #[test]
    fn default_config_has_syscall_verbs_for_all_slots() {
        let c = GenConfig::default();
        assert!(c.syscalls_per_subsystem <= SYSCALL_VERBS.len());
        assert!(c.helpers_per_subsystem <= HELPER_VERBS.len());
    }
}
