//! Planting concurrency bugs.
//!
//! Each planted bug gets a *pair of carrier syscalls* whose concurrent
//! execution can expose it, padded with ordinary filler segments so the
//! carriers look like any other syscall. Three patterns are used, graded by
//! how many ordering constraints the exposing interleaving must satisfy:
//!
//! * **Easy / data race** — a lock-protected read-modify-write in one syscall
//!   versus an unprotected one in the other, on the same word. No oracle; the
//!   race detector finds it (disjoint locksets).
//! * **Easy / order violation** — a producer that publishes `ready` *before*
//!   writing `data` (the planted mistake); a consumer that checks `ready` and
//!   then asserts `data` is initialized. The consumer's guarded arm is a URB
//!   in sequential runs (`ready` boots as 0).
//! * **Medium / atomicity violation** — two syscalls perform an unprotected
//!   check-then-claim on an owner word and re-check their claim; a remote
//!   claim landing inside the window fires the oracle.
//! * **Hard / multi-order** — a faithful miniature of the paper's bug #7
//!   (vivid driver, 9 years latent): exposing it requires a chain of three
//!   ordering constraints across a lock region, an owner hand-off and a
//!   double-initialization check.

use super::segments;
use super::{KernelBuilder, SubsysLayout};
use crate::bugs::{BugDifficulty, BugKind, BugSpec};
use crate::ids::{Addr, Reg};
use crate::instr::{AddrExpr, BinOp, CmpOp, Instr};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Words of bug state each planted bug reserves.
pub const WORDS_PER_BUG: u32 = 4;

struct BugWords {
    w0: Addr,
    w1: Addr,
    w2: Addr,
}

fn bug_words(layout: &SubsysLayout, local_slot: usize) -> BugWords {
    let base = layout.bug_base.offset((local_slot as u32 * WORDS_PER_BUG) % layout.bug_words);
    BugWords { w0: base, w1: base.offset(1), w2: base.offset(2) }
}

/// Emit `n` filler segments (camouflage around the bug pattern).
fn filler(
    kb: &mut KernelBuilder,
    layout: &SubsysLayout,
    helpers: &[crate::ids::FuncId],
    rng: &mut ChaCha8Rng,
    n: usize,
) {
    for _ in 0..n {
        segments::emit_segment(kb, layout, helpers, rng);
    }
}

fn window(kb: &mut KernelBuilder, rng: &mut ChaCha8Rng, min: usize, max: usize) {
    for _ in 0..rng.gen_range(min..=max) {
        kb.emit(Instr::Nop);
    }
}

/// Plant bug number `global_idx` (difficulty-graded) into `layout`'s
/// subsystem. `local_slot` is the per-subsystem bug index used to carve out
/// disjoint bug-state words.
pub fn plant_bug(
    kb: &mut KernelBuilder,
    layout: &SubsysLayout,
    global_idx: usize,
    local_slot: usize,
    difficulty: BugDifficulty,
    helpers: &[crate::ids::FuncId],
    rng: &mut ChaCha8Rng,
) {
    match difficulty {
        BugDifficulty::Easy => {
            if global_idx.is_multiple_of(2) {
                plant_data_race(kb, layout, global_idx, local_slot, helpers, rng)
            } else {
                plant_order_violation(kb, layout, global_idx, local_slot, helpers, rng)
            }
        }
        BugDifficulty::Medium => {
            plant_atomicity_violation(kb, layout, global_idx, local_slot, helpers, rng)
        }
        BugDifficulty::Hard => plant_multi_order(kb, layout, global_idx, local_slot, helpers, rng),
    }
}

/// Easy: protected vs unprotected RMW on the same word.
fn plant_data_race(
    kb: &mut KernelBuilder,
    layout: &SubsysLayout,
    global_idx: usize,
    local_slot: usize,
    helpers: &[crate::ids::FuncId],
    rng: &mut ChaCha8Rng,
) {
    let id = kb.next_bug_id();
    let w = bug_words(layout, local_slot);
    let lock = layout.locks[0];
    let sub = kb_subsys_name(kb, layout);
    let mut racing = Vec::new();

    // Carrier A: locked increment of the shared word.
    let name_a = format!("{sub}_acct_commit{global_idx}");
    let fa = kb.begin_func(&name_a, layout.id);
    filler(kb, layout, helpers, rng, 1);
    let rv = Reg(4);
    let rc = Reg(5);
    kb.emit(Instr::Lock { lock });
    kb.emit(Instr::Load { dst: rv, addr: AddrExpr::Fixed(w.w0) });
    racing.push(kb.last_loc());
    kb.emit(Instr::Const { dst: rc, val: 1 });
    kb.emit(Instr::BinOp { op: BinOp::Add, dst: rv, lhs: rv, rhs: rc });
    kb.emit(Instr::Store { addr: AddrExpr::Fixed(w.w0), src: rv });
    racing.push(kb.last_loc());
    kb.emit(Instr::Unlock { lock });
    filler(kb, layout, helpers, rng, 1);
    kb.end_func();
    let sa = kb.add_syscall(&name_a, fa, layout.id, vec![i64::from(layout.objects) - 1]);

    // Carrier B: unprotected update of the same word (the planted mistake).
    let name_b = format!("{sub}_acct_reset{global_idx}");
    let fb = kb.begin_func(&name_b, layout.id);
    filler(kb, layout, helpers, rng, 1);
    let rz = Reg(6);
    kb.emit(Instr::Load { dst: rz, addr: AddrExpr::Fixed(w.w0) });
    racing.push(kb.last_loc());
    window(kb, rng, 1, 3);
    let r0 = Reg(7);
    kb.emit(Instr::Const { dst: r0, val: 0 });
    kb.emit(Instr::Store { addr: AddrExpr::Fixed(w.w0), src: r0 });
    racing.push(kb.last_loc());
    filler(kb, layout, helpers, rng, 1);
    kb.end_func();
    let sb = kb.add_syscall(&name_b, fb, layout.id, vec![i64::from(layout.objects) - 1]);

    kb.add_bug(BugSpec {
        id,
        kind: BugKind::DataRace,
        difficulty: BugDifficulty::Easy,
        subsystem: layout.id,
        summary: format!("DR: {name_a}() & {name_b}()"),
        syscalls: (sa, sb),
        racing_instrs: racing,
        harmful: !global_idx.is_multiple_of(4), // a minority are judged benign, as in Table 3
    });
}

/// Easy: producer publishes `ready` before `data`; consumer asserts on it.
fn plant_order_violation(
    kb: &mut KernelBuilder,
    layout: &SubsysLayout,
    global_idx: usize,
    local_slot: usize,
    helpers: &[crate::ids::FuncId],
    rng: &mut ChaCha8Rng,
) {
    let id = kb.next_bug_id();
    let w = bug_words(layout, local_slot);
    let ready = w.w0;
    let data = w.w1;
    const MAGIC: i64 = 42;
    let sub = kb_subsys_name(kb, layout);
    let mut racing = Vec::new();

    // Producer: the mistake is publishing `ready` first.
    let name_p = format!("{sub}_attach{global_idx}");
    let fp = kb.begin_func(&name_p, layout.id);
    filler(kb, layout, helpers, rng, 1);
    let r1 = Reg(4);
    kb.emit(Instr::Const { dst: r1, val: 1 });
    kb.emit(Instr::Store { addr: AddrExpr::Fixed(ready), src: r1 });
    racing.push(kb.last_loc());
    window(kb, rng, 2, 5);
    let rm = Reg(5);
    kb.emit(Instr::Const { dst: rm, val: MAGIC });
    kb.emit(Instr::Store { addr: AddrExpr::Fixed(data), src: rm });
    racing.push(kb.last_loc());
    filler(kb, layout, helpers, rng, 1);
    kb.end_func();
    let sp = kb.add_syscall(&name_p, fp, layout.id, vec![i64::from(layout.objects) - 1]);

    // Consumer: `if ready { assert data initialized }` — the guarded arm is a
    // URB when run sequentially (ready boots 0).
    let name_c = format!("{sub}_consume{global_idx}");
    let fc = kb.begin_func(&name_c, layout.id);
    filler(kb, layout, helpers, rng, 1);
    let rr = Reg(6);
    kb.emit(Instr::Load { dst: rr, addr: AddrExpr::Fixed(ready) });
    racing.push(kb.last_loc());
    let (then_blk, else_blk) = kb.branch(rr, CmpOp::Eq, 1);
    let merge = kb.new_block();
    kb.set_cur(then_blk);
    let rd = Reg(7);
    kb.emit(Instr::Load { dst: rd, addr: AddrExpr::Fixed(data) });
    racing.push(kb.last_loc());
    kb.emit(Instr::BugIf { bug: id, reg: rd, cmp: CmpOp::Ne, imm: MAGIC });
    kb.jump_to(merge);
    kb.set_cur(else_blk);
    kb.jump_to(merge);
    kb.set_cur(merge);
    filler(kb, layout, helpers, rng, 1);
    kb.end_func();
    let sc = kb.add_syscall(&name_c, fc, layout.id, vec![i64::from(layout.objects) - 1]);

    kb.add_bug(BugSpec {
        id,
        kind: BugKind::OrderViolation,
        difficulty: BugDifficulty::Easy,
        subsystem: layout.id,
        summary: format!("OV: {name_p}() & {name_c}()"),
        syscalls: (sp, sc),
        racing_instrs: racing,
        harmful: true,
    });
}

/// Medium: unprotected check-then-claim with a re-check oracle on both sides.
fn plant_atomicity_violation(
    kb: &mut KernelBuilder,
    layout: &SubsysLayout,
    global_idx: usize,
    local_slot: usize,
    helpers: &[crate::ids::FuncId],
    rng: &mut ChaCha8Rng,
) {
    let id = kb.next_bug_id();
    let w = bug_words(layout, local_slot);
    let owner = w.w0;
    let sub = kb_subsys_name(kb, layout);
    let mut racing = Vec::new();
    let mut syscalls = Vec::new();

    for (tag, verb) in [(1i64, "claim"), (2i64, "grab")] {
        let name = format!("{sub}_{verb}{global_idx}");
        let f = kb.begin_func(&name, layout.id);
        filler(kb, layout, helpers, rng, 1);
        let r = Reg(4);
        kb.emit(Instr::Load { dst: r, addr: AddrExpr::Fixed(owner) });
        racing.push(kb.last_loc());
        let (then_blk, else_blk) = kb.branch(r, CmpOp::Eq, 0);
        let merge = kb.new_block();

        // Claim arm: the check-act window the other thread can split.
        kb.set_cur(then_blk);
        window(kb, rng, 2, 4);
        let rt = Reg(5);
        kb.emit(Instr::Const { dst: rt, val: tag });
        kb.emit(Instr::Store { addr: AddrExpr::Fixed(owner), src: rt });
        racing.push(kb.last_loc());
        let rc = Reg(6);
        kb.emit(Instr::Load { dst: rc, addr: AddrExpr::Fixed(owner) });
        kb.emit(Instr::BugIf { bug: id, reg: rc, cmp: CmpOp::Ne, imm: tag });
        // Release.
        let rz = Reg(7);
        kb.emit(Instr::Const { dst: rz, val: 0 });
        kb.emit(Instr::Store { addr: AddrExpr::Fixed(owner), src: rz });
        kb.jump_to(merge);

        kb.set_cur(else_blk);
        kb.jump_to(merge);
        kb.set_cur(merge);
        filler(kb, layout, helpers, rng, 1);
        kb.end_func();
        syscalls.push(kb.add_syscall(&name, f, layout.id, vec![i64::from(layout.objects) - 1]));
    }

    let (name_a, name_b) = {
        let a = &kb_syscall_name(kb, syscalls[0]);
        let b = &kb_syscall_name(kb, syscalls[1]);
        (a.clone(), b.clone())
    };
    kb.add_bug(BugSpec {
        id,
        kind: BugKind::AtomicityViolation,
        difficulty: BugDifficulty::Medium,
        subsystem: layout.id,
        summary: format!("AV: {name_a}() & {name_b}()"),
        syscalls: (syscalls[0], syscalls[1]),
        racing_instrs: racing,
        harmful: true,
    });
}

/// Hard: the bug-#7 miniature — lock hand-off, owner transfer, double init.
fn plant_multi_order(
    kb: &mut KernelBuilder,
    layout: &SubsysLayout,
    global_idx: usize,
    local_slot: usize,
    helpers: &[crate::ids::FuncId],
    rng: &mut ChaCha8Rng,
) {
    let id = kb.next_bug_id();
    let w = bug_words(layout, local_slot);
    let rds_owner = w.w0;
    let init_done = w.w1;
    let init_cnt = w.w2;
    const TAG_B: i64 = 2;
    let lock = layout.locks[layout.locks.len() - 1];
    let sub = kb_subsys_name(kb, layout);
    let mut racing = Vec::new();

    // Carrier A — `fop_release`-like: lock region, then conditionally clear
    // the owner. The clear arm is a URB sequentially (owner boots 0).
    let name_a = format!("{sub}_release{global_idx}");
    let fa = kb.begin_func(&name_a, layout.id);
    filler(kb, layout, helpers, rng, 1);
    kb.emit(Instr::Lock { lock });
    window(kb, rng, 1, 2);
    kb.emit(Instr::Unlock { lock });
    let r = Reg(4);
    kb.emit(Instr::Load { dst: r, addr: AddrExpr::Fixed(rds_owner) });
    racing.push(kb.last_loc());
    let (then_blk, else_blk) = kb.branch(r, CmpOp::Eq, TAG_B);
    let merge = kb.new_block();
    kb.set_cur(then_blk);
    window(kb, rng, 1, 2);
    let rz = Reg(5);
    kb.emit(Instr::Const { dst: rz, val: 0 });
    kb.emit(Instr::Store { addr: AddrExpr::Fixed(rds_owner), src: rz });
    racing.push(kb.last_loc());
    kb.jump_to(merge);
    kb.set_cur(else_blk);
    kb.jump_to(merge);
    kb.set_cur(merge);
    kb.end_func();
    let sa = kb.add_syscall(&name_a, fa, layout.id, vec![i64::from(layout.objects) - 1]);

    // Carrier B — `radio_rx_read`-like.
    let name_b = format!("{sub}_rx_read{global_idx}");
    let fb = kb.begin_func(&name_b, layout.id);
    filler(kb, layout, helpers, rng, 1);
    // Legitimate one-time init.
    let ri = Reg(4);
    kb.emit(Instr::Load { dst: ri, addr: AddrExpr::Fixed(init_done) });
    let (init_blk, no_init) = kb.branch(ri, CmpOp::Eq, 0);
    let after_init = kb.new_block();
    kb.set_cur(init_blk);
    let rc = Reg(5);
    let one = Reg(6);
    kb.emit(Instr::Load { dst: rc, addr: AddrExpr::Fixed(init_cnt) });
    kb.emit(Instr::Const { dst: one, val: 1 });
    kb.emit(Instr::BinOp { op: BinOp::Add, dst: rc, lhs: rc, rhs: one });
    kb.emit(Instr::Store { addr: AddrExpr::Fixed(init_cnt), src: rc });
    kb.emit(Instr::Store { addr: AddrExpr::Fixed(init_done), src: one });
    kb.jump_to(after_init);
    kb.set_cur(no_init);
    kb.jump_to(after_init);
    kb.set_cur(after_init);
    // Take the lock and claim ownership (constraint 1→2 with A's lock region).
    kb.emit(Instr::Lock { lock });
    let rt = Reg(7);
    kb.emit(Instr::Const { dst: rt, val: TAG_B });
    kb.emit(Instr::Store { addr: AddrExpr::Fixed(rds_owner), src: rt });
    racing.push(kb.last_loc());
    kb.emit(Instr::Unlock { lock });
    window(kb, rng, 2, 4);
    // Re-read the owner; if A cleared it in between (2→3, 3→4), re-init.
    let rr = Reg(8);
    kb.emit(Instr::Load { dst: rr, addr: AddrExpr::Fixed(rds_owner) });
    racing.push(kb.last_loc());
    let (reinit, no_reinit) = kb.branch(rr, CmpOp::Eq, 0);
    let done = kb.new_block();
    kb.set_cur(reinit);
    let rc2 = Reg(9);
    let one2 = Reg(10);
    kb.emit(Instr::Load { dst: rc2, addr: AddrExpr::Fixed(init_cnt) });
    kb.emit(Instr::Const { dst: one2, val: 1 });
    kb.emit(Instr::BinOp { op: BinOp::Add, dst: rc2, lhs: rc2, rhs: one2 });
    kb.emit(Instr::Store { addr: AddrExpr::Fixed(init_cnt), src: rc2 });
    // Double initialization: the counter reaches 2 only on the buggy path.
    kb.emit(Instr::BugIf { bug: id, reg: rc2, cmp: CmpOp::Ge, imm: 2 });
    kb.jump_to(done);
    kb.set_cur(no_reinit);
    kb.jump_to(done);
    kb.set_cur(done);
    kb.end_func();
    let sb = kb.add_syscall(&name_b, fb, layout.id, vec![i64::from(layout.objects) - 1]);

    kb.add_bug(BugSpec {
        id,
        kind: BugKind::MultiOrder,
        difficulty: BugDifficulty::Hard,
        subsystem: layout.id,
        summary: format!("AV: {name_a}() & {name_b}()"),
        syscalls: (sa, sb),
        racing_instrs: racing,
        harmful: true,
    });
}

fn kb_subsys_name(kb: &KernelBuilder, layout: &SubsysLayout) -> String {
    kb.subsystem_name(layout.id)
}

fn kb_syscall_name(kb: &KernelBuilder, id: crate::ids::SyscallId) -> String {
    kb.syscall_name(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use crate::instr::Instr;

    #[test]
    fn planted_bugs_have_oracles_or_racing_instrs() {
        let k = generate(&GenConfig::default());
        for bug in &k.bugs {
            assert!(
                !bug.racing_instrs.is_empty(),
                "bug {} has no racing instructions recorded",
                bug.id
            );
            // Oracle bugs must have a BugIf referencing them somewhere.
            if bug.kind != BugKind::DataRace {
                let has_oracle = k.blocks.iter().any(|b| {
                    b.instrs
                        .iter()
                        .any(|i| matches!(i, Instr::BugIf { bug: bid, .. } if *bid == bug.id))
                });
                assert!(has_oracle, "bug {} ({:?}) lacks an oracle", bug.id, bug.kind);
            }
        }
    }

    #[test]
    fn racing_instrs_are_valid_locations() {
        let k = generate(&GenConfig::default());
        for bug in &k.bugs {
            for loc in &bug.racing_instrs {
                assert!(loc.block.index() < k.blocks.len());
                assert!((loc.idx as usize) < k.block(loc.block).instrs.len());
            }
        }
    }

    #[test]
    fn bug_carrier_syscalls_are_distinct() {
        let k = generate(&GenConfig::default());
        for bug in &k.bugs {
            assert_ne!(bug.syscalls.0, bug.syscalls.1, "bug {} carriers collide", bug.id);
        }
    }
}
