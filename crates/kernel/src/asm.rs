//! Pseudo-assembly rendering and tokenization.
//!
//! The paper embeds each basic block by feeding its assembly *as text* to a
//! BERT-style encoder, after eliding numerical tokens ("such as register
//! offsets, since they do not provide much useful signal"). We reproduce both
//! halves: [`render_block`] prints a block the way a disassembler would, and
//! [`tokenize_block`] produces the numeric-elided token stream consumed by
//! the `snowcat-nn` assembly encoder.

use crate::instr::{AddrExpr, Instr, Terminator};
use crate::program::{Block, Kernel, RegionKind};

/// Token used in place of any elided numeric operand.
pub const NUM_TOKEN: &str = "<num>";

fn addr_tokens(kernel: &Kernel, addr: &AddrExpr, out: &mut Vec<String>) {
    // Numeric values are elided, but the *class* of memory touched is real
    // signal (the paper's graphs carry it via data-flow edges; we keep the
    // textual channel honest by naming the region kind, as a symbol table
    // in a disassembly would).
    let (start, _) = addr.static_range();
    let kind = kernel.region_of(start).map(|r| r.kind);
    let kind_tok = match kind {
        Some(RegionKind::ObjectArray) => "obj",
        Some(RegionKind::Flags) => "flag",
        Some(RegionKind::StatsCounter) => "stat",
        Some(RegionKind::Config) => "cfg",
        None => "mem",
    };
    match addr {
        AddrExpr::Fixed(_) => {
            out.push(format!("[{kind_tok}+{NUM_TOKEN}]"));
        }
        AddrExpr::Indexed { reg, .. } => {
            out.push(format!("[{kind_tok}+r{}*{NUM_TOKEN}]", reg.0));
        }
    }
}

/// Tokenize one instruction (numeric-elided).
pub fn tokenize_instr(kernel: &Kernel, ins: &Instr) -> Vec<String> {
    let mut t = Vec::with_capacity(4);
    match ins {
        Instr::Const { dst, .. } => {
            t.push("mov".into());
            t.push(format!("r{}", dst.0));
            t.push(NUM_TOKEN.into());
        }
        Instr::BinOp { op, dst, lhs, rhs } => {
            t.push(op.mnemonic().into());
            t.push(format!("r{}", dst.0));
            t.push(format!("r{}", lhs.0));
            t.push(format!("r{}", rhs.0));
        }
        Instr::Load { dst, addr } => {
            t.push("ld".into());
            t.push(format!("r{}", dst.0));
            addr_tokens(kernel, addr, &mut t);
        }
        Instr::Store { addr, src } => {
            t.push("st".into());
            addr_tokens(kernel, addr, &mut t);
            t.push(format!("r{}", src.0));
        }
        Instr::Lock { .. } => {
            t.push("lock".into());
            t.push(NUM_TOKEN.into());
        }
        Instr::Unlock { .. } => {
            t.push("unlock".into());
            t.push(NUM_TOKEN.into());
        }
        Instr::Call { func } => {
            t.push("call".into());
            // Function names carry subsystem + role words, which is exactly
            // the kind of "natural assembly" signal BERT picks up.
            if let Some(f) = kernel.funcs.get(func.index()) {
                for part in f.name.split('_') {
                    t.push(part.to_string());
                }
            } else {
                t.push(NUM_TOKEN.into());
            }
        }
        Instr::BugIf { reg, cmp, .. } => {
            t.push("chk".into());
            t.push(cmp.mnemonic().into());
            t.push(format!("r{}", reg.0));
            t.push(NUM_TOKEN.into());
        }
        Instr::Nop => t.push("nop".into()),
    }
    t
}

/// Tokenize the terminator.
pub fn tokenize_term(term: &Terminator) -> Vec<String> {
    match term {
        Terminator::Jump(_) => vec!["jmp".into(), NUM_TOKEN.into()],
        Terminator::Branch { lhs, cmp, .. } => {
            vec![format!("b{}", cmp.mnemonic()), format!("r{}", lhs.0), NUM_TOKEN.into()]
        }
        Terminator::Ret => vec!["ret".into()],
    }
}

/// Tokenize a whole block: instruction tokens then terminator tokens.
pub fn tokenize_block(kernel: &Kernel, block: &Block) -> Vec<String> {
    let mut out = Vec::with_capacity(block.instrs.len() * 3 + 3);
    for ins in &block.instrs {
        out.extend(tokenize_instr(kernel, ins));
    }
    out.extend(tokenize_term(&block.term));
    out
}

/// Render a block as human-readable pseudo-assembly (numbers included; this
/// is the debugging view, not the model input).
pub fn render_block(kernel: &Kernel, block: &Block) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for ins in &block.instrs {
        match ins {
            Instr::Const { dst, val } => writeln!(s, "  mov {dst}, {val}").unwrap(),
            Instr::BinOp { op, dst, lhs, rhs } => {
                writeln!(s, "  {} {dst}, {lhs}, {rhs}", op.mnemonic()).unwrap()
            }
            Instr::Load { dst, addr } => match addr {
                AddrExpr::Fixed(a) => writeln!(s, "  ld {dst}, [{a}]").unwrap(),
                AddrExpr::Indexed { base, reg, stride, len } => {
                    writeln!(s, "  ld {dst}, [{base}+{reg}%{len}*{stride}]").unwrap()
                }
            },
            Instr::Store { addr, src } => match addr {
                AddrExpr::Fixed(a) => writeln!(s, "  st [{a}], {src}").unwrap(),
                AddrExpr::Indexed { base, reg, stride, len } => {
                    writeln!(s, "  st [{base}+{reg}%{len}*{stride}], {src}").unwrap()
                }
            },
            Instr::Lock { lock } => writeln!(s, "  lock {lock}").unwrap(),
            Instr::Unlock { lock } => writeln!(s, "  unlock {lock}").unwrap(),
            Instr::Call { func } => {
                let name = kernel.funcs.get(func.index()).map(|f| f.name.as_str()).unwrap_or("?");
                writeln!(s, "  call {name}").unwrap()
            }
            Instr::BugIf { bug, reg, cmp, imm } => {
                writeln!(s, "  chk.{} {reg}, {imm} ; bug {bug}", cmp.mnemonic()).unwrap()
            }
            Instr::Nop => writeln!(s, "  nop").unwrap(),
        }
    }
    match &block.term {
        Terminator::Jump(t) => writeln!(s, "  jmp {t}").unwrap(),
        Terminator::Branch { lhs, cmp, imm, then_blk, else_blk } => {
            writeln!(s, "  b{} {lhs}, {imm} -> {then_blk} / {else_blk}", cmp.mnemonic()).unwrap()
        }
        Terminator::Ret => writeln!(s, "  ret").unwrap(),
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Addr, BlockId, FuncId, Reg, SubsystemId};
    use crate::instr::{BinOp, CmpOp};
    use crate::program::{Function, MemRegion, Subsystem, SyscallSpec};

    fn kernel_with_block(instrs: Vec<Instr>, term: Terminator) -> (Kernel, Block) {
        let block = Block { func: FuncId(0), instrs, term };
        let kernel = Kernel {
            version: "t".into(),
            blocks: vec![block.clone()],
            funcs: vec![Function {
                name: "fs_open_file".into(),
                subsystem: SubsystemId(0),
                entry: BlockId(0),
                blocks: vec![BlockId(0)],
            }],
            subsystems: vec![Subsystem { name: "fs".into(), locks: vec![], regions: vec![0] }],
            regions: vec![MemRegion {
                subsystem: SubsystemId(0),
                kind: RegionKind::Flags,
                start: Addr(0),
                len: 16,
                name: "fs.flags".into(),
            }],
            syscalls: vec![SyscallSpec {
                name: "fs_open".into(),
                func: FuncId(0),
                subsystem: SubsystemId(0),
                arg_max: vec![],
            }],
            bugs: vec![],
            mem_words: 16,
            num_locks: 1,
            init_mem: vec![0; 16],
        };
        (kernel, block)
    }

    #[test]
    fn numeric_operands_are_elided() {
        let (k, b) = kernel_with_block(
            vec![
                Instr::Const { dst: Reg(1), val: 77 },
                Instr::Load { dst: Reg(2), addr: AddrExpr::Fixed(Addr(3)) },
            ],
            Terminator::Ret,
        );
        let toks = tokenize_block(&k, &b);
        assert!(
            toks.iter().all(|t| !t.contains("77") && !t.contains('3') || t.contains("r")),
            "tokens leaked a number: {toks:?}"
        );
        assert!(toks.contains(&NUM_TOKEN.to_string()));
        assert!(toks.contains(&"[flag+<num>]".to_string()));
    }

    #[test]
    fn call_tokens_include_function_name_words() {
        let (k, b) = kernel_with_block(vec![Instr::Call { func: FuncId(0) }], Terminator::Ret);
        let toks = tokenize_block(&k, &b);
        assert!(toks.contains(&"fs".to_string()));
        assert!(toks.contains(&"open".to_string()));
        assert!(toks.contains(&"file".to_string()));
    }

    #[test]
    fn branch_terminator_tokenizes_with_condition() {
        let t = Terminator::Branch {
            lhs: Reg(4),
            cmp: CmpOp::Ne,
            imm: 0,
            then_blk: BlockId(0),
            else_blk: BlockId(0),
        };
        assert_eq!(tokenize_term(&t), vec!["bne", "r4", NUM_TOKEN]);
    }

    #[test]
    fn render_is_stable_and_nonempty() {
        let (k, b) = kernel_with_block(
            vec![Instr::BinOp { op: BinOp::Add, dst: Reg(0), lhs: Reg(1), rhs: Reg(2) }],
            Terminator::Jump(BlockId(0)),
        );
        let s = render_block(&k, &b);
        assert!(s.contains("add r0, r1, r2"));
        assert!(s.contains("jmp"));
    }
}
