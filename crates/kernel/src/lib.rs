//! # snowcat-kernel — the synthetic kernel substrate
//!
//! Snowcat (SOSP 2023) tests the Linux kernel inside a modified QEMU. This
//! reproduction replaces that substrate with a *procedurally generated
//! synthetic kernel*: a program over a small typed instruction set with the
//! structural properties concurrency testing actually exercises:
//!
//! * **syscalls** — entry functions grouped into subsystems (`fs`, `net`, …),
//! * **shared state** — a flat kernel address space of words partitioned into
//!   per-subsystem regions (objects, flags, counters, statistics),
//! * **locks** — subsystem mutexes guarding some (but deliberately not all)
//!   accesses,
//! * **interleaving-dependent control flow** — branches whose predicates read
//!   flags written by sibling syscalls, so which side of the branch runs
//!   depends on the thread schedule (these produce the paper's *uncovered
//!   reachable blocks*), and
//! * **planted concurrency bugs** — atomicity violations, order violations and
//!   multi-constraint bugs (modelled on the paper's bug #7) that fire a bug
//!   oracle only under specific interleavings.
//!
//! Kernel *versions* (the paper evolves from Linux 5.12 → 5.13 → 6.1) are
//! modelled by [`version::KernelVersion`]: an evolution pass regenerates a
//! fraction of functions, appends syscalls and plants additional bugs, so a
//! predictor trained on one version faces a realistic generalization gap on
//! the next.
//!
//! Everything is deterministic given the generator seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod bugs;
pub mod gen;
pub mod ids;
pub mod instr;
pub mod program;
pub mod stats;
pub mod version;

pub use bugs::{BugKind, BugSpec};
pub use gen::{generate, BugPlan, GenConfig, KernelBuilder};
pub use ids::{
    Addr, BlockId, BugId, FuncId, InstrLoc, LockId, Reg, SubsystemId, SyscallId, ThreadId,
};
pub use instr::{AddrExpr, BinOp, CmpOp, Instr, Terminator};
pub use program::{Block, Function, Kernel, MemRegion, RegionKind, Subsystem, SyscallSpec};
pub use stats::{InstrMix, KernelStats};
pub use version::{Evolution, KernelVersion, VersionSpec};
