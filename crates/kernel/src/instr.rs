//! The synthetic kernel's instruction set.
//!
//! The instruction set is deliberately small but sufficient to express the
//! concurrency structures kernel testing cares about: shared-memory loads and
//! stores (direct and object-indexed), mutex acquire/release, arithmetic to
//! derive predicates, calls to helper functions, and a bug-oracle instruction
//! that models kernel assertion/consistency-check sites.
//!
//! Control flow lives in the block [`Terminator`], so a block is a maximal
//! straight-line instruction sequence, exactly matching the paper's notion of
//! a basic block ("sequences of assembly instructions uninterrupted by
//! control-flow entry or exit").

use crate::ids::{Addr, BlockId, BugId, FuncId, LockId, Reg};
use serde::{Deserialize, Serialize};

/// Binary arithmetic/logic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
}

impl BinOp {
    /// Evaluate the operation on two word values.
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
        }
    }

    /// Assembly mnemonic used by the renderer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
        }
    }
}

/// Comparison operators used by branches and bug oracles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-than.
    Gt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-or-equal.
    Ge,
}

impl CmpOp {
    /// Evaluate the comparison.
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Gt => a > b,
            CmpOp::Le => a <= b,
            CmpOp::Ge => a >= b,
        }
    }

    /// Assembly mnemonic used by the renderer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Gt => "gt",
            CmpOp::Le => "le",
            CmpOp::Ge => "ge",
        }
    }
}

/// An effective-address expression for loads and stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AddrExpr {
    /// A fixed kernel address (global flag, counter, …).
    Fixed(Addr),
    /// An object-indexed address: `base + (reg mod len) * stride`.
    ///
    /// This models per-object state (inodes, sockets, devices): the object
    /// index usually comes from a syscall argument register, so different
    /// invocations touch different but overlapping-by-class memory.
    Indexed {
        /// Start of the object array.
        base: Addr,
        /// Register holding the object index.
        reg: Reg,
        /// Words per object.
        stride: u32,
        /// Number of objects (index is taken modulo this, so any register
        /// value yields an in-bounds address).
        len: u32,
    },
}

impl AddrExpr {
    /// Resolve the effective address given a register file.
    ///
    /// Indexed addresses wrap the index modulo the array length, so the
    /// result is always within the region the generator allocated.
    #[inline]
    pub fn resolve(self, regs: &[i64]) -> Addr {
        match self {
            AddrExpr::Fixed(a) => a,
            AddrExpr::Indexed { base, reg, stride, len } => {
                let idx = (regs[reg.index()].rem_euclid(i64::from(len.max(1)))) as u32;
                Addr(base.0 + idx * stride)
            }
        }
    }

    /// The full range of words this expression may touch, `[start, end)`.
    ///
    /// Used by the static race analysis ("potential data flow occurs between
    /// two instructions … that address overlapping memory ranges").
    pub fn static_range(self) -> (Addr, Addr) {
        match self {
            AddrExpr::Fixed(a) => (a, Addr(a.0 + 1)),
            AddrExpr::Indexed { base, stride, len, .. } => {
                (base, Addr(base.0 + stride * len.max(1)))
            }
        }
    }
}

/// One instruction of the synthetic kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instr {
    /// `dst = val`
    Const {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        val: i64,
    },
    /// `dst = lhs <op> rhs`
    BinOp {
        /// Operation.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        lhs: Reg,
        /// Right operand register.
        rhs: Reg,
    },
    /// `dst = mem[addr]` — a shared-memory read.
    Load {
        /// Destination register.
        dst: Reg,
        /// Effective address.
        addr: AddrExpr,
    },
    /// `mem[addr] = src` — a shared-memory write.
    Store {
        /// Effective address.
        addr: AddrExpr,
        /// Source register.
        src: Reg,
    },
    /// Acquire a kernel mutex; blocks the thread if held by another thread.
    Lock {
        /// The mutex.
        lock: LockId,
    },
    /// Release a kernel mutex held by this thread.
    Unlock {
        /// The mutex.
        lock: LockId,
    },
    /// Call a helper function; execution resumes after this instruction when
    /// the callee returns.
    Call {
        /// Callee.
        func: FuncId,
    },
    /// A bug oracle: if `reg <cmp> imm` holds when executed, planted bug
    /// `bug` has been triggered (modelled on kernel consistency checks:
    /// double-init detection, use-of-uninitialized, state-machine violation).
    ///
    /// Triggering records a bug event in the trace; execution continues, like
    /// a KASAN/KCSAN report rather than a panic, so one run can witness
    /// multiple bugs.
    BugIf {
        /// Which planted bug fires.
        bug: BugId,
        /// Register holding the checked value.
        reg: Reg,
        /// Comparison operator.
        cmp: CmpOp,
        /// Immediate compared against.
        imm: i64,
    },
    /// No operation (padding; keeps generated block sizes diverse).
    Nop,
}

impl Instr {
    /// Whether this instruction reads or writes shared kernel memory.
    #[inline]
    pub fn is_mem_access(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Store { .. })
    }

    /// Whether this instruction writes shared kernel memory.
    #[inline]
    pub fn is_store(&self) -> bool {
        matches!(self, Instr::Store { .. })
    }

    /// The address expression of a memory access, if this is one.
    #[inline]
    pub fn addr_expr(&self) -> Option<AddrExpr> {
        match self {
            Instr::Load { addr, .. } | Instr::Store { addr, .. } => Some(*addr),
            _ => None,
        }
    }

    /// The fixed address a memory access certainly touches, if its address
    /// expression is [`AddrExpr::Fixed`].
    #[inline]
    pub fn fixed_addr(&self) -> Option<Addr> {
        match self.addr_expr() {
            Some(AddrExpr::Fixed(a)) => Some(a),
            _ => None,
        }
    }
}

/// Block terminator — the only place control flow happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch on `lhs <cmp> imm`.
    Branch {
        /// Register holding the tested value (often freshly loaded from
        /// shared memory, making the branch interleaving-dependent).
        lhs: Reg,
        /// Comparison operator.
        cmp: CmpOp,
        /// Immediate operand.
        imm: i64,
        /// Successor when the comparison holds.
        then_blk: BlockId,
        /// Successor when it does not.
        else_blk: BlockId,
    },
    /// Return from the current function (or finish the syscall if this is the
    /// outermost frame).
    Ret,
}

impl Terminator {
    /// Static successor blocks within the same function.
    pub fn successors(&self) -> impl Iterator<Item = BlockId> + '_ {
        let (a, b) = match *self {
            Terminator::Jump(t) => (Some(t), None),
            Terminator::Branch { then_blk, else_blk, .. } => (Some(then_blk), Some(else_blk)),
            Terminator::Ret => (None, None),
        };
        a.into_iter().chain(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_wraps() {
        assert_eq!(BinOp::Add.eval(i64::MAX, 1), i64::MIN);
        assert_eq!(BinOp::Sub.eval(3, 5), -2);
        assert_eq!(BinOp::Xor.eval(0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn cmp_eval() {
        assert!(CmpOp::Eq.eval(4, 4));
        assert!(CmpOp::Ne.eval(4, 5));
        assert!(CmpOp::Lt.eval(-1, 0));
        assert!(CmpOp::Ge.eval(0, 0));
        assert!(!CmpOp::Gt.eval(0, 0));
        assert!(CmpOp::Le.eval(-5, -5));
    }

    #[test]
    fn fixed_addr_resolves_to_itself() {
        let regs = [0i64; 16];
        assert_eq!(AddrExpr::Fixed(Addr(7)).resolve(&regs), Addr(7));
    }

    #[test]
    fn indexed_addr_wraps_modulo_len() {
        let mut regs = [0i64; 16];
        regs[2] = 5; // index 5 mod 4 == 1
        let e = AddrExpr::Indexed { base: Addr(100), reg: Reg(2), stride: 8, len: 4 };
        assert_eq!(e.resolve(&regs), Addr(108));
        regs[2] = -1; // rem_euclid keeps the index non-negative
        assert_eq!(e.resolve(&regs), Addr(124));
    }

    #[test]
    fn indexed_static_range_covers_whole_array() {
        let e = AddrExpr::Indexed { base: Addr(100), reg: Reg(0), stride: 8, len: 4 };
        assert_eq!(e.static_range(), (Addr(100), Addr(132)));
    }

    #[test]
    fn instr_memory_queries() {
        let load = Instr::Load { dst: Reg(1), addr: AddrExpr::Fixed(Addr(9)) };
        let store = Instr::Store {
            addr: AddrExpr::Indexed { base: Addr(4), reg: Reg(0), stride: 2, len: 3 },
            src: Reg(1),
        };
        assert!(load.is_mem_access() && !load.is_store());
        assert!(store.is_mem_access() && store.is_store());
        assert_eq!(load.fixed_addr(), Some(Addr(9)));
        assert_eq!(store.fixed_addr(), None, "indexed addresses are not fixed");
        assert!(store.addr_expr().is_some());
        assert_eq!(Instr::Nop.addr_expr(), None);
        assert_eq!(Instr::Nop.fixed_addr(), None);
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::Branch {
            lhs: Reg(0),
            cmp: CmpOp::Eq,
            imm: 0,
            then_blk: BlockId(1),
            else_blk: BlockId(2),
        };
        let succ: Vec<_> = t.successors().collect();
        assert_eq!(succ, vec![BlockId(1), BlockId(2)]);
        assert_eq!(Terminator::Ret.successors().count(), 0);
    }
}
