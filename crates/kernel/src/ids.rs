//! Strongly-typed identifiers used across the workspace.
//!
//! Every entity in the synthetic kernel (function, basic block, lock, planted
//! bug, …) is referred to by a small copyable newtype over an integer index.
//! Using distinct types prevents the classic off-by-one-crate mistakes of
//! passing a block index where a function index is expected.

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $inner:ty) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw index as a `usize` for table lookups.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$inner> for $name {
            #[inline]
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// A function in the synthetic kernel (syscall entry point or helper).
    FuncId,
    u32
);
id_type!(
    /// A basic block. Block ids are *global* across the whole kernel, so a
    /// coverage map is a single bitmap indexed by `BlockId`.
    BlockId,
    u32
);
id_type!(
    /// A kernel mutex. Locks are global objects; subsystems own disjoint
    /// ranges of them.
    LockId,
    u16
);
id_type!(
    /// A planted concurrency bug registered in the [`crate::bugs`] registry.
    BugId,
    u16
);
id_type!(
    /// A subsystem (fs, net, drivers, …) of the synthetic kernel.
    SubsystemId,
    u16
);
id_type!(
    /// An entry in the syscall catalogue.
    SyscallId,
    u32
);
id_type!(
    /// A virtual CPU / kernel thread index inside the VM (0 or 1 for a CT).
    ThreadId,
    u8
);

/// A word address in the flat kernel address space.
///
/// The synthetic kernel's memory is a vector of `i64` words; an `Addr` is an
/// index into it. Regions of the space are assigned to subsystems by the
/// generator (see [`crate::program::MemRegion`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Addr(pub u32);

impl Addr {
    /// Raw index into the kernel memory vector.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Address `offset` words after `self`.
    #[inline]
    pub fn offset(self, offset: u32) -> Addr {
        Addr(self.0 + offset)
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// A general-purpose register inside an interpreter frame.
///
/// Frames have [`NUM_REGS`] registers; syscall arguments are passed in
/// `r0..r3` by the VM when it enters a syscall function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(pub u8);

/// Number of registers in a frame.
pub const NUM_REGS: usize = 16;

impl Reg {
    /// Raw index into the frame register file.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The static location of one instruction: a block plus the index within it.
///
/// `InstrLoc` is the identity used to deduplicate data races ("unique
/// potential data races" in the paper are unordered pairs of static
/// instructions) and to express scheduling hints in graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstrLoc {
    /// Block containing the instruction.
    pub block: BlockId,
    /// Index of the instruction within the block body.
    pub idx: u16,
}

impl InstrLoc {
    /// Convenience constructor.
    #[inline]
    pub fn new(block: BlockId, idx: u16) -> Self {
        Self { block, idx }
    }
}

impl std::fmt::Display for InstrLoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.block, self.idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip_and_display() {
        let b = BlockId(42);
        assert_eq!(b.index(), 42);
        assert_eq!(b.to_string(), "BlockId(42)");
        assert_eq!(BlockId::from(42u32), b);
    }

    #[test]
    fn addr_offset() {
        let a = Addr(0x100);
        assert_eq!(a.offset(8), Addr(0x108));
        assert_eq!(a.to_string(), "0x100");
    }

    #[test]
    fn instr_loc_ordering_groups_by_block() {
        let a = InstrLoc::new(BlockId(1), 9);
        let b = InstrLoc::new(BlockId(2), 0);
        assert!(a < b);
    }

    #[test]
    fn reg_display() {
        assert_eq!(Reg(7).to_string(), "r7");
    }
}
