//! Whole-kernel program representation.
//!
//! A [`Kernel`] owns every basic block in a single global table so that block
//! coverage is one bitmap and the whole-kernel CFG (built by `snowcat-cfg`)
//! can address blocks uniformly — mirroring how the paper treats the compiled
//! Linux image as one pool of ~2.7M blocks.

use crate::bugs::BugSpec;
use crate::ids::{Addr, BlockId, FuncId, InstrLoc, LockId, SubsystemId, SyscallId};
use crate::instr::{Instr, Terminator};
use serde::{Deserialize, Serialize};

/// A basic block: straight-line instructions plus a terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Function this block belongs to.
    pub func: FuncId,
    /// Straight-line body.
    pub instrs: Vec<Instr>,
    /// Control-flow exit.
    pub term: Terminator,
}

impl Block {
    /// Number of dynamic instructions executed when the block runs (the body;
    /// the terminator is free, matching how hardware branch exits are not
    /// separately counted by SKI's instruction-granularity scheduler).
    #[inline]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the body is empty (the block is just a jump/branch).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

/// A function: an entry block plus the set of blocks it owns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Human-readable name (`fs_inode_write`, `net_sock_poll_helper`, …).
    pub name: String,
    /// Subsystem this function belongs to.
    pub subsystem: SubsystemId,
    /// Entry block.
    pub entry: BlockId,
    /// All blocks of this function, in creation order (entry first).
    pub blocks: Vec<BlockId>,
}

/// What a memory region is used for. Drives the benign-race classifier:
/// races on pure statistics counters are the paper's canonical benign races.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionKind {
    /// Per-object state (inode tables, socket state, device registers).
    ObjectArray,
    /// Global flags / state-machine words; races here are suspicious.
    Flags,
    /// Statistics counters; races here are typically benign.
    StatsCounter,
    /// Scratch configuration words written at init only.
    Config,
}

/// A named region of the kernel address space owned by one subsystem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemRegion {
    /// Owning subsystem.
    pub subsystem: SubsystemId,
    /// Purpose of the region.
    pub kind: RegionKind,
    /// First word of the region.
    pub start: Addr,
    /// Number of words.
    pub len: u32,
    /// Debug name (`fs.objects`, `net.flags`, …).
    pub name: String,
}

impl MemRegion {
    /// Whether `addr` falls inside this region.
    #[inline]
    pub fn contains(&self, addr: Addr) -> bool {
        addr.0 >= self.start.0 && addr.0 < self.start.0 + self.len
    }
}

/// A subsystem groups syscalls, locks and memory regions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Subsystem {
    /// Subsystem name (`fs`, `net`, `drivers`, …).
    pub name: String,
    /// Locks owned by this subsystem.
    pub locks: Vec<LockId>,
    /// Indices into [`Kernel::regions`].
    pub regions: Vec<usize>,
}

/// An entry in the syscall catalogue.
///
/// The STI fuzzer draws invocations from this spec: a syscall is a function
/// plus the domains of its (up to three) integer arguments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyscallSpec {
    /// Syscall name (`fs_open`, `net_sendmsg`, …).
    pub name: String,
    /// Entry function.
    pub func: FuncId,
    /// Owning subsystem.
    pub subsystem: SubsystemId,
    /// Inclusive upper bound of each argument (arg i is drawn from
    /// `0..=arg_max[i]`); empty slice means the syscall takes no arguments.
    pub arg_max: Vec<i64>,
}

/// The synthetic kernel image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Human-readable version tag (`"5.12"`, `"6.1"`, …).
    pub version: String,
    /// Global block table.
    pub blocks: Vec<Block>,
    /// Function table.
    pub funcs: Vec<Function>,
    /// Subsystem table.
    pub subsystems: Vec<Subsystem>,
    /// Memory region table.
    pub regions: Vec<MemRegion>,
    /// Syscall catalogue.
    pub syscalls: Vec<SyscallSpec>,
    /// Planted bugs.
    pub bugs: Vec<BugSpec>,
    /// Total words of kernel memory.
    pub mem_words: u32,
    /// Total number of locks.
    pub num_locks: u16,
    /// Initial memory image (values at boot). Same length as `mem_words`.
    pub init_mem: Vec<i64>,
}

impl Kernel {
    /// Look up a block.
    #[inline]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Look up a function.
    #[inline]
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Look up a syscall spec.
    #[inline]
    pub fn syscall(&self, id: SyscallId) -> &SyscallSpec {
        &self.syscalls[id.index()]
    }

    /// Number of basic blocks in the image.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Look up the instruction at a static location, if it exists.
    pub fn instr(&self, loc: InstrLoc) -> Option<&Instr> {
        self.blocks.get(loc.block.index()).and_then(|b| b.instrs.get(usize::from(loc.idx)))
    }

    /// The region containing `addr`, if any.
    pub fn region_of(&self, addr: Addr) -> Option<&MemRegion> {
        self.regions.iter().find(|r| r.contains(addr))
    }

    /// Structural validation: every cross-reference must be in range and
    /// intra-function terminator targets must stay within the function.
    ///
    /// The generator calls this after every build; tests call it on evolved
    /// versions. Returns a list of human-readable violations (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        for (fi, f) in self.funcs.iter().enumerate() {
            if f.entry.index() >= self.blocks.len() {
                errs.push(format!("func {fi} entry {} out of range", f.entry));
                continue;
            }
            if self.blocks[f.entry.index()].func.index() != fi {
                errs.push(format!("func {fi} entry block owned by other function"));
            }
            for &b in &f.blocks {
                if b.index() >= self.blocks.len() {
                    errs.push(format!("func {fi} references missing block {b}"));
                    continue;
                }
                let blk = &self.blocks[b.index()];
                if blk.func.index() != fi {
                    errs.push(format!("block {b} listed in func {fi} but owned by {}", blk.func));
                }
                for succ in blk.term.successors() {
                    if succ.index() >= self.blocks.len() {
                        errs.push(format!("block {b} terminator targets missing block {succ}"));
                    } else if self.blocks[succ.index()].func.index() != fi {
                        errs.push(format!("block {b} terminator escapes function {fi}"));
                    }
                }
                for (ii, ins) in blk.instrs.iter().enumerate() {
                    match ins {
                        Instr::Call { func } if func.index() >= self.funcs.len() => {
                            errs.push(format!("block {b} instr {ii} calls missing func {func}"));
                        }
                        Instr::Lock { lock } | Instr::Unlock { lock }
                            if lock.index() >= usize::from(self.num_locks) =>
                        {
                            errs.push(format!("block {b} instr {ii} uses missing lock {lock}"));
                        }
                        Instr::Load { addr, .. } | Instr::Store { addr, .. } => {
                            let (_, end) = addr.static_range();
                            if end.0 > self.mem_words {
                                errs.push(format!(
                                    "block {b} instr {ii} may access {end} beyond memory ({})",
                                    self.mem_words
                                ));
                            }
                        }
                        Instr::BugIf { bug, .. } if bug.index() >= self.bugs.len() => {
                            errs.push(format!("block {b} instr {ii} references missing bug {bug}"));
                        }
                        _ => {}
                    }
                }
            }
        }
        for (si, s) in self.syscalls.iter().enumerate() {
            if s.func.index() >= self.funcs.len() {
                errs.push(format!("syscall {si} entry func out of range"));
            }
            if s.arg_max.len() > 3 {
                errs.push(format!("syscall {si} has more than 3 args"));
            }
        }
        if self.init_mem.len() != self.mem_words as usize {
            errs.push(format!(
                "init_mem length {} != mem_words {}",
                self.init_mem.len(),
                self.mem_words
            ));
        }
        errs
    }

    /// Total static instruction count (body instructions across all blocks).
    pub fn num_instrs(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Reg;
    use crate::instr::{AddrExpr, CmpOp};

    fn tiny_kernel() -> Kernel {
        // One function, two blocks: entry branches to a ret block.
        let blocks = vec![
            Block {
                func: FuncId(0),
                instrs: vec![Instr::Load { dst: Reg(0), addr: AddrExpr::Fixed(Addr(0)) }],
                term: Terminator::Branch {
                    lhs: Reg(0),
                    cmp: CmpOp::Eq,
                    imm: 0,
                    then_blk: BlockId(1),
                    else_blk: BlockId(1),
                },
            },
            Block { func: FuncId(0), instrs: vec![], term: Terminator::Ret },
        ];
        Kernel {
            version: "test".into(),
            blocks,
            funcs: vec![Function {
                name: "f".into(),
                subsystem: SubsystemId(0),
                entry: BlockId(0),
                blocks: vec![BlockId(0), BlockId(1)],
            }],
            subsystems: vec![Subsystem { name: "t".into(), locks: vec![], regions: vec![] }],
            regions: vec![MemRegion {
                subsystem: SubsystemId(0),
                kind: RegionKind::Flags,
                start: Addr(0),
                len: 4,
                name: "t.flags".into(),
            }],
            syscalls: vec![SyscallSpec {
                name: "t_call".into(),
                func: FuncId(0),
                subsystem: SubsystemId(0),
                arg_max: vec![3],
            }],
            bugs: vec![],
            mem_words: 4,
            num_locks: 0,
            init_mem: vec![0; 4],
        }
    }

    #[test]
    fn tiny_kernel_validates() {
        assert!(tiny_kernel().validate().is_empty());
    }

    #[test]
    fn validation_catches_escaping_terminator() {
        let mut k = tiny_kernel();
        k.blocks[0].term = Terminator::Jump(BlockId(99));
        assert!(!k.validate().is_empty());
    }

    #[test]
    fn validation_catches_out_of_range_memory() {
        let mut k = tiny_kernel();
        k.blocks[0].instrs.push(Instr::Store { addr: AddrExpr::Fixed(Addr(100)), src: Reg(0) });
        assert!(k.validate().iter().any(|e| e.contains("beyond memory")));
    }

    #[test]
    fn validation_catches_bad_init_mem() {
        let mut k = tiny_kernel();
        k.init_mem.pop();
        assert!(k.validate().iter().any(|e| e.contains("init_mem")));
    }

    #[test]
    fn region_lookup() {
        let k = tiny_kernel();
        assert_eq!(k.region_of(Addr(2)).unwrap().name, "t.flags");
        assert!(k.region_of(Addr(9)).is_none());
    }

    #[test]
    fn num_instrs_counts_bodies() {
        assert_eq!(tiny_kernel().num_instrs(), 1);
    }
}
