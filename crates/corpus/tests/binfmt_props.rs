//! Property tests for the SCDS binary dataset format: arbitrary synthetic
//! datasets must round-trip exactly, and corrupted payloads must fail
//! cleanly rather than panic.

use proptest::prelude::*;
use snowcat_corpus::{decode_dataset, encode_dataset, Dataset, Example};
use snowcat_graph::{CtGraph, Edge, EdgeKind, SchedMark, StaticFeats, VertKind, Vertex};
use snowcat_kernel::{BlockId, ThreadId};
use snowcat_vm::{ScheduleHints, SwitchPoint};

fn arb_vertex() -> impl Strategy<Value = Vertex> {
    (
        (0u32..100_000, any::<u32>()),
        0u8..2,
        proptest::bool::ANY,
        0u8..3,
        proptest::bool::ANY,
        proptest::collection::vec(0u32..512, 0..12),
    )
        .prop_map(|((block, feats), thread, urb, mark, may_race, tokens)| Vertex {
            block: BlockId(block),
            thread: ThreadId(thread),
            kind: if urb { VertKind::Urb } else { VertKind::Scb },
            sched_mark: match mark {
                0 => SchedMark::None,
                1 => SchedMark::YieldSource,
                _ => SchedMark::ResumeTarget,
            },
            may_race,
            tokens,
            static_feats: StaticFeats {
                alias_density: feats as u8,
                lockset: (feats >> 8) as u8,
                race_degree: (feats >> 16) as u8,
            },
        })
}

fn arb_example() -> impl Strategy<Value = Example> {
    proptest::collection::vec(arb_vertex(), 1..20).prop_flat_map(|verts| {
        let n = verts.len() as u32;
        (
            Just(verts),
            proptest::collection::vec((0..n, 0..n, 0usize..6), 0..40),
            0usize..1000,
            proptest::collection::vec((0u8..2, 0u64..10_000), 0..4),
        )
            .prop_flat_map(|(verts, raw_edges, cti_index, switches)| {
                let nv = verts.len();
                let ne = raw_edges.len();
                (
                    Just(verts),
                    Just(raw_edges),
                    Just(cti_index),
                    Just(switches),
                    proptest::collection::vec(proptest::bool::ANY, nv..=nv),
                    proptest::collection::vec(proptest::bool::ANY, ne..=ne),
                )
            })
            .prop_map(|(verts, raw_edges, cti_index, switches, labels, flow_labels)| {
                let edges: Vec<Edge> = raw_edges
                    .into_iter()
                    .map(|(from, to, k)| Edge { from, to, kind: EdgeKind::ALL[k] })
                    .collect();
                Example {
                    cti_index,
                    graph: CtGraph { verts, edges },
                    labels,
                    flow_labels,
                    hints: ScheduleHints {
                        first: ThreadId(0),
                        switches: switches
                            .into_iter()
                            .map(|(t, after)| SwitchPoint { thread: ThreadId(t), after })
                            .collect(),
                    },
                }
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_datasets_roundtrip(examples in proptest::collection::vec(arb_example(), 0..6)) {
        let ds = Dataset { examples };
        let encoded = encode_dataset(&ds);
        let decoded = decode_dataset(encoded).unwrap();
        prop_assert_eq!(ds, decoded);
    }

    #[test]
    fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..400)) {
        // Must return an error or (astronomically unlikely) a dataset —
        // never panic.
        let _ = decode_dataset(bytes::Bytes::from(data));
    }

    #[test]
    fn bit_flips_fail_cleanly(examples in proptest::collection::vec(arb_example(), 1..3),
                              pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let ds = Dataset { examples };
        let mut raw = encode_dataset(&ds).to_vec();
        let pos = ((raw.len() - 1) as f64 * pos_frac) as usize;
        raw[pos] ^= 1 << bit;
        // SCDS v4 frames the payload with a CRC32, so *any* single-bit flip
        // anywhere in the file must be detected as a typed error — never a
        // panic, never a silently different dataset.
        prop_assert!(decode_dataset(bytes::Bytes::from(raw)).is_err());
    }

    #[test]
    fn truncation_fails_cleanly(examples in proptest::collection::vec(arb_example(), 1..3),
                                cut_frac in 0.0f64..1.0) {
        let ds = Dataset { examples };
        let raw = encode_dataset(&ds).to_vec();
        // Truncate at every possible offset short of the full length: the
        // length framing must catch the tear with a typed error.
        let cut = ((raw.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(decode_dataset(bytes::Bytes::from(raw[..cut].to_vec())).is_err());
    }
}
