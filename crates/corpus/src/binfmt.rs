//! Compact binary (de)serialization for labelled datasets.
//!
//! JSON datasets are convenient but ~20× larger than necessary; a default
//! training collection is thousands of graphs. This module provides a dense
//! little-endian binary format (`SCDS`, versioned) used by the CLI's
//! `collect`/`train` split and anywhere datasets are stored.

use crate::dataset::{Dataset, Example};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use snowcat_graph::{CtGraph, Edge, EdgeKind, SchedMark, StaticFeats, VertKind, Vertex};
use snowcat_kernel::{BlockId, ThreadId};
use snowcat_vm::{ScheduleHints, SwitchPoint};

/// Format magic.
const MAGIC: &[u8; 4] = b"SCDS";
/// Format version written by [`encode_dataset`]. Version 3 added a
/// per-vertex flags byte (bit 0 = `may_race`); version 4 wrapped the payload
/// in a checksummed length frame (see [`frame_checksummed`]) so truncated
/// and bit-flipped files are detected instead of decoding to garbage;
/// version 5 added three per-vertex static feature bytes (alias density,
/// lockset size, race degree) right after the flags byte.
/// Version-2/3 payloads still decode, without integrity checking; version-4
/// frames decode with zeroed static features.
const VERSION: u16 = 5;
/// Oldest version [`decode_dataset`] accepts.
const MIN_VERSION: u16 = 2;
/// First version whose payload is CRC-framed.
const FRAMED_VERSION: u16 = 4;

/// Vertex flags byte, bit 0: static may-race mark.
const VFLAG_MAY_RACE: u8 = 1;

/// Errors produced by [`decode_dataset`] and [`unframe_checksummed`].
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Input ended prematurely or a length field is inconsistent.
    Truncated,
    /// The framed payload length disagrees with the bytes actually present.
    BadLength {
        /// Length recorded in the frame header.
        framed: u64,
        /// Bytes actually available after the header.
        actual: u64,
    },
    /// The payload checksum does not match (bit rot or a torn write).
    BadChecksum {
        /// CRC recorded in the frame header.
        expected: u32,
        /// CRC recomputed over the payload.
        actual: u32,
    },
    /// An enum discriminant is out of range.
    BadEnum(&'static str, u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a SCDS dataset (bad magic)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported SCDS version {v}"),
            DecodeError::Truncated => write!(f, "truncated SCDS payload"),
            DecodeError::BadLength { framed, actual } => {
                write!(f, "framed length {framed} B but {actual} B present (truncated or torn)")
            }
            DecodeError::BadChecksum { expected, actual } => {
                write!(
                    f,
                    "payload checksum mismatch (header {expected:#010x}, data {actual:#010x})"
                )
            }
            DecodeError::BadEnum(what, v) => write!(f, "invalid {what} discriminant {v}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Slicing-by-8 lookup tables for the reflected IEEE polynomial, built at
/// compile time. `TABLES[0]` is the classic byte-at-a-time table; table `j`
/// advances a byte through `j` additional zero bytes, letting [`crc32`]
/// consume eight input bytes per step.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut k = 0;
        while k < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            k += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[j - 1][i];
            t[j][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    t
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `bytes`.
///
/// Dependency-free slicing-by-8 implementation used to integrity-check SCDS
/// datasets and campaign/training checkpoints. Checkpoints are checksummed
/// on every epoch, so the checksum must stay a small fraction of an epoch;
/// eight bytes per table step keeps it an order of magnitude faster than the
/// textbook bit-at-a-time loop while remaining pure safe Rust.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for c in chunks.by_ref() {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Wrap `payload` in a checksummed length frame:
/// `magic(4) | version(u16 le) | payload_len(u64 le) | crc32(u32 le) | payload`.
///
/// The frame makes truncation (length mismatch) and bit rot (checksum
/// mismatch) detectable at decode time; both SCDS v4 datasets and SCCP
/// campaign checkpoints use it.
pub fn frame_checksummed(magic: &[u8; 4], version: u16, payload: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + 2 + 8 + 4 + payload.len());
    buf.put_slice(magic);
    buf.put_u16_le(version);
    buf.put_u64_le(payload.len() as u64);
    buf.put_u32_le(crc32(payload));
    buf.put_slice(payload);
    buf.freeze()
}

/// Undo [`frame_checksummed`]: verify magic, version range, framed length and
/// checksum, returning `(version, payload)`. Every malformed input — wrong
/// magic, unknown version, truncation at any offset, any flipped bit in
/// header or payload — yields a typed [`DecodeError`], never a panic.
pub fn unframe_checksummed(
    magic: &[u8; 4],
    min_version: u16,
    max_version: u16,
    mut buf: Bytes,
) -> Result<(u16, Bytes), DecodeError> {
    if buf.remaining() < 4 + 2 + 8 + 4 {
        return Err(DecodeError::Truncated);
    }
    let mut got = [0u8; 4];
    buf.copy_to_slice(&mut got);
    if &got != magic {
        return Err(DecodeError::BadMagic);
    }
    let version = buf.get_u16_le();
    if !(min_version..=max_version).contains(&version) {
        return Err(DecodeError::BadVersion(version));
    }
    let framed = buf.get_u64_le();
    let expected = buf.get_u32_le();
    let actual_len = buf.remaining() as u64;
    if framed != actual_len {
        return Err(DecodeError::BadLength { framed, actual: actual_len });
    }
    let payload = buf.slice(0..buf.remaining());
    let actual = crc32(&payload);
    if actual != expected {
        return Err(DecodeError::BadChecksum { expected, actual });
    }
    Ok((version, payload))
}

fn put_bits(buf: &mut BytesMut, bits: &[bool]) {
    buf.put_u32_le(bits.len() as u32);
    let mut byte = 0u8;
    for (i, &b) in bits.iter().enumerate() {
        if b {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            buf.put_u8(byte);
            byte = 0;
        }
    }
    if !bits.len().is_multiple_of(8) {
        buf.put_u8(byte);
    }
}

fn get_bits(buf: &mut Bytes) -> Result<Vec<bool>, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let n = buf.get_u32_le() as usize;
    let nbytes = n.div_ceil(8);
    if buf.remaining() < nbytes {
        return Err(DecodeError::Truncated);
    }
    let mut out = Vec::with_capacity(n);
    let mut cur = 0u8;
    for i in 0..n {
        if i % 8 == 0 {
            cur = buf.get_u8();
        }
        out.push(cur & (1 << (i % 8)) != 0);
    }
    Ok(out)
}

fn encode_graph(buf: &mut BytesMut, g: &CtGraph) {
    buf.put_u32_le(g.verts.len() as u32);
    for v in &g.verts {
        buf.put_u32_le(v.block.0);
        buf.put_u8(v.thread.0);
        buf.put_u8(match v.kind {
            VertKind::Scb => 0,
            VertKind::Urb => 1,
        });
        buf.put_u8(v.sched_mark.index() as u8);
        buf.put_u8(if v.may_race { VFLAG_MAY_RACE } else { 0 });
        buf.put_slice(&v.static_feats.bytes());
        buf.put_u16_le(v.tokens.len() as u16);
        for &t in &v.tokens {
            buf.put_u16_le(t as u16); // vocabulary is < 2^16
        }
    }
    buf.put_u32_le(g.edges.len() as u32);
    for e in &g.edges {
        buf.put_u32_le(e.from);
        buf.put_u32_le(e.to);
        buf.put_u8(e.kind.index() as u8);
    }
}

fn decode_graph(buf: &mut Bytes, version: u16) -> Result<CtGraph, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let flags_bytes = usize::from(version >= 3);
    let static_bytes = if version >= 5 { snowcat_graph::STATIC_CHANNELS } else { 0 };
    let nv = buf.get_u32_le() as usize;
    let mut verts = Vec::with_capacity(nv.min(1 << 20));
    for _ in 0..nv {
        if buf.remaining() < 4 + 1 + 1 + 1 + flags_bytes + static_bytes + 2 {
            return Err(DecodeError::Truncated);
        }
        let block = BlockId(buf.get_u32_le());
        let thread = ThreadId(buf.get_u8());
        let kind = match buf.get_u8() {
            0 => VertKind::Scb,
            1 => VertKind::Urb,
            x => return Err(DecodeError::BadEnum("vertex kind", x)),
        };
        let sched_mark = match buf.get_u8() {
            0 => SchedMark::None,
            1 => SchedMark::YieldSource,
            2 => SchedMark::ResumeTarget,
            x => return Err(DecodeError::BadEnum("sched mark", x)),
        };
        let may_race = if version >= 3 { buf.get_u8() & VFLAG_MAY_RACE != 0 } else { false };
        let static_feats = if version >= 5 {
            let mut b = [0u8; snowcat_graph::STATIC_CHANNELS];
            buf.copy_to_slice(&mut b);
            StaticFeats::from_bytes(b)
        } else {
            StaticFeats::default()
        };
        let nt = buf.get_u16_le() as usize;
        if buf.remaining() < nt * 2 {
            return Err(DecodeError::Truncated);
        }
        let tokens = (0..nt).map(|_| u32::from(buf.get_u16_le())).collect();
        verts.push(Vertex { block, thread, kind, sched_mark, may_race, static_feats, tokens });
    }
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let ne = buf.get_u32_le() as usize;
    let mut edges = Vec::with_capacity(ne.min(1 << 22));
    for _ in 0..ne {
        if buf.remaining() < 4 + 4 + 1 {
            return Err(DecodeError::Truncated);
        }
        let from = buf.get_u32_le();
        let to = buf.get_u32_le();
        let kind = match buf.get_u8() {
            0 => EdgeKind::ScbFlow,
            1 => EdgeKind::UrbFlow,
            2 => EdgeKind::IntraFlow,
            3 => EdgeKind::InterFlow,
            4 => EdgeKind::Schedule,
            5 => EdgeKind::Shortcut,
            x => return Err(DecodeError::BadEnum("edge kind", x)),
        };
        edges.push(Edge { from, to, kind });
    }
    Ok(CtGraph { verts, edges })
}

/// Encode a dataset into the compact binary format (v4: checksummed frame).
pub fn encode_dataset(ds: &Dataset) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 << 20);
    buf.put_u32_le(ds.examples.len() as u32);
    for e in &ds.examples {
        buf.put_u32_le(e.cti_index as u32);
        encode_graph(&mut buf, &e.graph);
        put_bits(&mut buf, &e.labels);
        put_bits(&mut buf, &e.flow_labels);
        buf.put_u8(e.hints.first.0);
        buf.put_u16_le(e.hints.switches.len() as u16);
        for sw in &e.hints.switches {
            buf.put_u8(sw.thread.0);
            buf.put_u64_le(sw.after);
        }
    }
    frame_checksummed(MAGIC, VERSION, &buf.freeze())
}

/// Decode a dataset from the compact binary format.
///
/// v4 payloads are length- and CRC-checked first, so truncation and bit rot
/// anywhere in the file surface as typed errors; v2/v3 payloads decode with
/// structural validation only (their headers carry no checksum).
pub fn decode_dataset(mut buf: Bytes) -> Result<Dataset, DecodeError> {
    if buf.remaining() < 4 + 2 {
        return Err(DecodeError::Truncated);
    }
    // Peek the version to route framed vs legacy layouts.
    let peeked_version = u16::from_le_bytes([buf[4], buf[5]]);
    if peeked_version >= FRAMED_VERSION || !(MIN_VERSION..=VERSION).contains(&peeked_version) {
        // Framed layout (or an invalid version, which unframing reports
        // with the same typed errors as the legacy path would).
        let (ver, payload) = unframe_checksummed(MAGIC, MIN_VERSION, VERSION, buf)?;
        // A v4 frame carries the v3 example layout (per-vertex flags);
        // v5+ frames carry their own layout (static feature bytes).
        return decode_examples(payload, if ver >= 5 { ver } else { 3 });
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = buf.get_u16_le();
    decode_examples(buf, version)
}

/// Decode the example section (`count u32 | examples…`) of an SCDS payload.
fn decode_examples(mut buf: Bytes, version: u16) -> Result<Dataset, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::Truncated);
    }
    let n = buf.get_u32_le() as usize;
    let mut examples = Vec::with_capacity(n.min(1 << 24));
    for _ in 0..n {
        if buf.remaining() < 4 {
            return Err(DecodeError::Truncated);
        }
        let cti_index = buf.get_u32_le() as usize;
        let graph = decode_graph(&mut buf, version)?;
        let labels = get_bits(&mut buf)?;
        let flow_labels = get_bits(&mut buf)?;
        if buf.remaining() < 1 + 2 {
            return Err(DecodeError::Truncated);
        }
        let first = ThreadId(buf.get_u8());
        let ns = buf.get_u16_le() as usize;
        if buf.remaining() < ns * 9 {
            return Err(DecodeError::Truncated);
        }
        let switches = (0..ns)
            .map(|_| SwitchPoint { thread: ThreadId(buf.get_u8()), after: buf.get_u64_le() })
            .collect();
        examples.push(Example {
            cti_index,
            graph,
            labels,
            flow_labels,
            hints: ScheduleHints { first, switches },
        });
    }
    Ok(Dataset { examples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{build_dataset, random_cti_pairs, DatasetConfig};
    use crate::fuzzer::StiFuzzer;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use snowcat_cfg::KernelCfg;
    use snowcat_kernel::{generate, GenConfig};

    fn sample_dataset() -> Dataset {
        let k = generate(&GenConfig::default());
        let cfg = KernelCfg::build(&k);
        let mut fz = StiFuzzer::new(&k, 1);
        fz.seed_each_syscall();
        let corpus = fz.into_corpus();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ctis = random_cti_pairs(&mut rng, corpus.len(), 3);
        build_dataset(&k, &cfg, &corpus, &ctis, DatasetConfig { interleavings_per_cti: 3, seed: 5 })
    }

    #[test]
    fn roundtrip_preserves_dataset_exactly() {
        let ds = sample_dataset();
        let bytes = encode_dataset(&ds);
        let back = decode_dataset(bytes).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        let ds = sample_dataset();
        let bin = encode_dataset(&ds).len();
        let json = ds.to_json().unwrap().len();
        assert!(bin * 3 < json, "binary ({bin} B) should be ≥3x smaller than JSON ({json} B)");
    }

    #[test]
    fn may_race_bits_roundtrip() {
        let mut ds = sample_dataset();
        for (i, e) in ds.examples.iter_mut().enumerate() {
            for (j, v) in e.graph.verts.iter_mut().enumerate() {
                v.may_race = (i + j) % 2 == 0;
            }
        }
        let back = decode_dataset(encode_dataset(&ds)).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn static_feat_bytes_roundtrip() {
        let mut ds = sample_dataset();
        for (i, e) in ds.examples.iter_mut().enumerate() {
            for (j, v) in e.graph.verts.iter_mut().enumerate() {
                v.static_feats = StaticFeats {
                    alias_density: (i + j) as u8,
                    lockset: j as u8,
                    race_degree: (i * 3 + j) as u8,
                };
            }
        }
        let back = decode_dataset(encode_dataset(&ds)).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn version_4_frames_still_decode_with_zeroed_static_feats() {
        // Hand-build a v4 frame: the v3 example layout (flags byte, no
        // static feature bytes) inside the checksummed frame.
        let mut body = BytesMut::new();
        body.put_u32_le(1); // examples
        body.put_u32_le(7); // cti_index
        body.put_u32_le(1); // verts
        body.put_u32_le(3); // block
        body.put_u8(1); // thread
        body.put_u8(1); // kind = Urb
        body.put_u8(0); // sched mark = None
        body.put_u8(VFLAG_MAY_RACE); // flags
        body.put_u16_le(1); // tokens
        body.put_u16_le(42);
        body.put_u32_le(0); // edges
        body.put_u32_le(0); // labels
        body.put_u32_le(0); // flow labels
        body.put_u8(0); // hints.first
        body.put_u16_le(0); // switches
        let framed = frame_checksummed(MAGIC, 4, &body.freeze());
        let ds = decode_dataset(framed).unwrap();
        let v = &ds.examples[0].graph.verts[0];
        assert!(v.may_race);
        assert_eq!(v.static_feats, StaticFeats::default(), "v4 vertices have zero channels");
    }

    #[test]
    fn version_2_payloads_still_decode() {
        // Hand-build a v2 payload (no per-vertex flags byte): one example,
        // one vertex, no edges, no labels, no switches.
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u16_le(2); // version
        buf.put_u32_le(1); // examples
        buf.put_u32_le(7); // cti_index
        buf.put_u32_le(1); // verts
        buf.put_u32_le(3); // block
        buf.put_u8(1); // thread
        buf.put_u8(1); // kind = Urb
        buf.put_u8(0); // sched mark = None
        buf.put_u16_le(1); // tokens
        buf.put_u16_le(42);
        buf.put_u32_le(0); // edges
        buf.put_u32_le(0); // labels
        buf.put_u32_le(0); // flow labels
        buf.put_u8(0); // hints.first
        buf.put_u16_le(0); // switches
        let ds = decode_dataset(buf.freeze()).unwrap();
        assert_eq!(ds.examples.len(), 1);
        let v = &ds.examples[0].graph.verts[0];
        assert_eq!(v.block, BlockId(3));
        assert!(!v.may_race, "v2 vertices default to may_race = false");
    }

    #[test]
    fn future_versions_are_rejected() {
        let framed = frame_checksummed(MAGIC, VERSION + 1, &[0, 0, 0, 0]);
        assert_eq!(decode_dataset(framed).unwrap_err(), DecodeError::BadVersion(VERSION + 1));
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn frame_roundtrips_and_reports_typed_corruption() {
        let payload = b"campaign state goes here";
        let framed = frame_checksummed(b"SCCP", 1, payload);
        let (v, back) = unframe_checksummed(b"SCCP", 1, 1, framed.clone()).unwrap();
        assert_eq!(v, 1);
        assert_eq!(back.as_slice(), payload);

        // Wrong magic.
        assert_eq!(
            unframe_checksummed(b"XXXX", 1, 1, framed.clone()).unwrap_err(),
            DecodeError::BadMagic
        );
        // Truncated payload → length mismatch.
        let torn = framed.slice(0..framed.len() - 3);
        assert!(matches!(
            unframe_checksummed(b"SCCP", 1, 1, torn).unwrap_err(),
            DecodeError::BadLength { .. }
        ));
        // Truncated header.
        assert_eq!(
            unframe_checksummed(b"SCCP", 1, 1, framed.slice(0..9)).unwrap_err(),
            DecodeError::Truncated
        );
        // Any payload bit flip → checksum mismatch.
        let mut flipped = framed.to_vec();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(matches!(
            unframe_checksummed(b"SCCP", 1, 1, Bytes::from(flipped)).unwrap_err(),
            DecodeError::BadChecksum { .. }
        ));
    }

    #[test]
    fn v4_datasets_detect_any_bit_flip() {
        let ds = sample_dataset();
        let bytes = encode_dataset(&ds).to_vec();
        // Flip one bit at a spread of offsets: decode must always fail with
        // a typed error (the CRC frame leaves no undetectable positions).
        for pos in (0..bytes.len()).step_by(131) {
            let mut raw = bytes.clone();
            raw[pos] ^= 0x10;
            assert!(
                decode_dataset(Bytes::from(raw)).is_err(),
                "flip at byte {pos} decoded successfully"
            );
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = decode_dataset(Bytes::from_static(b"NOPE\x02\x00\x00\x00\x00\x00"));
        assert_eq!(err.unwrap_err(), DecodeError::BadMagic);
    }

    #[test]
    fn truncation_is_detected_everywhere() {
        let ds = sample_dataset();
        let bytes = encode_dataset(&ds);
        // Chop the payload at many offsets: every prefix must fail cleanly,
        // never panic.
        for cut in (0..bytes.len() - 1).step_by(97) {
            let res = decode_dataset(bytes.slice(0..cut));
            assert!(res.is_err(), "prefix of {cut} bytes decoded successfully");
        }
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let ds = Dataset::default();
        let back = decode_dataset(encode_dataset(&ds)).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn bitpacking_roundtrips_odd_lengths() {
        for n in [0usize, 1, 7, 8, 9, 63, 64, 65] {
            let bits: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            let mut buf = BytesMut::new();
            put_bits(&mut buf, &bits);
            let mut b = buf.freeze();
            assert_eq!(get_bits(&mut b).unwrap(), bits, "length {n}");
        }
    }
}
