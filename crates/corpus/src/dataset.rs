//! Labelled-graph dataset construction (§5.1.1 of the paper).
//!
//! The paper collects CTIs (random pairs of STIs), explores N interleavings
//! of each, executes them, and labels every CT graph vertex with the
//! observed concurrent coverage. We reproduce the pipeline at laptop scale:
//! counts are configurable, ratios (train/validation/evaluation CTI split,
//! many-interleavings-for-eval) follow the paper.

use crate::fuzzer::StiProfile;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use snowcat_cfg::KernelCfg;
use snowcat_graph::{CtGraph, CtGraphBuilder, GraphStats, StaticFeats};
use snowcat_kernel::Kernel;
use snowcat_vm::{propose_hints, run_ct, Cti, ScheduleHints, VmConfig};

/// One training/evaluation example: a CT graph plus per-vertex coverage
/// labels from its dynamic execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Example {
    /// Which CTI of the source list this example came from.
    pub cti_index: usize,
    /// The CT graph (vertices, typed edges, schedule edges for this
    /// particular interleaving).
    pub graph: CtGraph,
    /// Ground-truth labels: vertex covered during the concurrent execution.
    pub labels: Vec<bool>,
    /// Ground-truth inter-thread-flow labels, aligned with `graph.edges`
    /// (true only on realized `InterFlow` edges; §6 future-work task).
    #[serde(default)]
    pub flow_labels: Vec<bool>,
    /// The hint schedule this example encodes.
    pub hints: ScheduleHints,
}

/// A labelled dataset.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Examples in collection order.
    pub examples: Vec<Example>,
}

impl Dataset {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Aggregate graph statistics (for the §5.1.1 composition table).
    pub fn stats(&self) -> GraphStats {
        let mut s = GraphStats::default();
        for e in &self.examples {
            s.add(&e.graph.stats());
        }
        s
    }

    /// Fraction of URB vertices with a positive label — the base rate the
    /// paper's biased-coin baseline uses (~1.1% there).
    pub fn urb_positive_rate(&self) -> f64 {
        let mut pos = 0usize;
        let mut total = 0usize;
        for e in &self.examples {
            for i in e.graph.urb_indices() {
                total += 1;
                if e.labels[i] {
                    pos += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            pos as f64 / total as f64
        }
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> serde_json::Result<Self> {
        serde_json::from_str(s)
    }
}

/// Structural validation of one example, beyond what the on-disk frame
/// checksum covers: a CRC proves the bytes are the ones written, not that
/// the writer produced a well-formed example. Checks graph invariants (edge
/// endpoints in range), label/graph alignment, flow-label/edge alignment
/// and token-vocabulary range. Returns a human-readable reason on failure.
pub fn validate_example(e: &Example) -> Result<(), String> {
    e.graph.validate()?;
    if e.labels.len() != e.graph.num_verts() {
        return Err(format!(
            "label count {} does not match vertex count {}",
            e.labels.len(),
            e.graph.num_verts()
        ));
    }
    if !e.flow_labels.is_empty() && e.flow_labels.len() != e.graph.edges.len() {
        return Err(format!(
            "flow-label count {} does not match edge count {}",
            e.flow_labels.len(),
            e.graph.edges.len()
        ));
    }
    for (vi, v) in e.graph.verts.iter().enumerate() {
        for &t in &v.tokens {
            if t == 0 || t as usize >= snowcat_graph::VOCAB_SIZE {
                return Err(format!(
                    "vertex {vi} token {t} outside 1..{}",
                    snowcat_graph::VOCAB_SIZE
                ));
            }
        }
    }
    Ok(())
}

/// Validate every example of a dataset shard, naming the first offender.
pub fn validate_dataset(ds: &Dataset) -> Result<(), String> {
    for (i, e) in ds.examples.iter().enumerate() {
        validate_example(e).map_err(|m| format!("example {i}: {m}"))?;
    }
    Ok(())
}

/// Dataset-construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct DatasetConfig {
    /// Interleavings explored (and executed) per CTI.
    pub interleavings_per_cti: usize,
    /// RNG seed for schedule proposals.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self { interleavings_per_cti: 8, seed: 0xD47A }
    }
}

/// Pair up random CTIs (indices into a corpus), the paper's "random pairs of
/// sequential test inputs from SKI".
pub fn random_cti_pairs<R: Rng>(rng: &mut R, corpus_len: usize, n: usize) -> Vec<(usize, usize)> {
    assert!(corpus_len > 0, "empty corpus");
    (0..n).map(|_| (rng.gen_range(0..corpus_len), rng.gen_range(0..corpus_len))).collect()
}

/// Pair up CTIs whose constituent STIs *interact*: one's sequential run
/// writes an address the other's reads (or vice versa). This mirrors how
/// the SKI/Snowboard lineage actually sources CTIs — Snowboard's INS-PAIR
/// analysis pairs inputs with observed shared-memory contact — and is the
/// realistic input stream for schedule-exploration experiments (a fully
/// random pair across isolated subsystems usually has no concurrent
/// behaviour to explore at all).
///
/// Falls back to random pairs if fewer than `n` interacting pairs exist.
pub fn interacting_cti_pairs<R: Rng>(
    rng: &mut R,
    corpus: &[StiProfile],
    n: usize,
) -> Vec<(usize, usize)> {
    use std::collections::HashSet;
    assert!(!corpus.is_empty(), "empty corpus");
    let writes: Vec<HashSet<u32>> = corpus
        .iter()
        .map(|p| p.seq.accesses.iter().filter(|a| a.is_write).map(|a| a.addr.0).collect())
        .collect();
    let reads: Vec<HashSet<u32>> = corpus
        .iter()
        .map(|p| p.seq.accesses.iter().filter(|a| !a.is_write).map(|a| a.addr.0).collect())
        .collect();
    let interacts =
        |a: usize, b: usize| !writes[a].is_disjoint(&reads[b]) || !writes[b].is_disjoint(&reads[a]);
    let mut out = Vec::with_capacity(n);
    let mut attempts = 0usize;
    while out.len() < n && attempts < n * 200 {
        attempts += 1;
        let a = rng.gen_range(0..corpus.len());
        let b = rng.gen_range(0..corpus.len());
        if a != b && interacts(a, b) {
            out.push((a, b));
        }
    }
    while out.len() < n {
        out.push((rng.gen_range(0..corpus.len()), rng.gen_range(0..corpus.len())));
    }
    out
}

/// Build a labelled dataset: for each CTI, propose `interleavings_per_cti`
/// random 2-switch schedules, run them, and label the graphs.
pub fn build_dataset(
    kernel: &Kernel,
    cfg: &KernelCfg,
    corpus: &[StiProfile],
    ctis: &[(usize, usize)],
    dcfg: DatasetConfig,
) -> Dataset {
    let mut builder = CtGraphBuilder::new(kernel, cfg);
    // Static feature channels (alias-class density, must-lockset size,
    // refined may-race degree) come from the PR 8 value-flow analysis and
    // are stamped onto every vertex of every graph built below.
    let analysis = snowcat_analysis::analyze(kernel, cfg);
    builder.block_static_feats = Some(
        analysis
            .block_static_feats(kernel)
            .into_iter()
            .map(|[alias_density, lockset, race_degree]| StaticFeats {
                alias_density,
                lockset,
                race_degree,
            })
            .collect(),
    );
    let mut rng = ChaCha8Rng::seed_from_u64(dcfg.seed);
    let mut examples = Vec::new();
    for (ci, &(ia, ib)) in ctis.iter().enumerate() {
        let pa = &corpus[ia];
        let pb = &corpus[ib];
        let base = builder.build_base(&pa.seq, &pb.seq);
        let cti = Cti::new(pa.sti.clone(), pb.sti.clone());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..dcfg.interleavings_per_cti {
            let hints = propose_hints(&mut rng, pa.seq.steps, pb.seq.steps);
            if !seen.insert(hints.clone()) {
                continue; // paper reports *unique* interleavings per CTI
            }
            let graph = builder.with_schedule(&base, &pa.seq, &pb.seq, &hints);
            let ct = run_ct(kernel, &cti, hints.clone(), VmConfig::default());
            let labels = builder.label(&graph, &ct);
            let flow_labels = builder.flow_labels(&graph, &ct);
            examples.push(Example { cti_index: ci, graph, labels, flow_labels, hints });
        }
    }
    Dataset { examples }
}

/// Train/validation/evaluation CTI index splits, following the paper's
/// unusual mix (large evaluation split, since all examples are "tests").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Splits {
    /// Training CTI pairs.
    pub train: Vec<(usize, usize)>,
    /// Validation CTI pairs (threshold tuning).
    pub valid: Vec<(usize, usize)>,
    /// Evaluation CTI pairs.
    pub eval: Vec<(usize, usize)>,
}

/// Split `n_ctis` CTI pairs into train/valid/eval with the paper's
/// approximate proportions (≈48%/6%/46%). Pairs are a 50/50 mix of
/// interaction-biased and uniformly random pairs, interleaved, so every
/// split sees both populations (the SKI CTI source the paper draws from is
/// itself interaction-biased).
pub fn make_splits<R: Rng>(rng: &mut R, corpus: &[StiProfile], n_ctis: usize) -> Splits {
    let inter = interacting_cti_pairs(rng, corpus, n_ctis / 2);
    let rand_pairs = random_cti_pairs(rng, corpus.len(), n_ctis - inter.len());
    let mut pairs = Vec::with_capacity(n_ctis);
    let mut it_a = inter.into_iter();
    let mut it_b = rand_pairs.into_iter();
    loop {
        match (it_a.next(), it_b.next()) {
            (None, None) => break,
            (a, b) => {
                pairs.extend(a);
                pairs.extend(b);
            }
        }
    }
    let n_train = n_ctis * 48 / 100;
    let n_valid = (n_ctis * 6 / 100).max(1);
    let train = pairs[..n_train.min(pairs.len())].to_vec();
    let valid = pairs[n_train.min(pairs.len())..(n_train + n_valid).min(pairs.len())].to_vec();
    let eval = pairs[(n_train + n_valid).min(pairs.len())..].to_vec();
    Splits { train, valid, eval }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzzer::StiFuzzer;
    use snowcat_kernel::{generate, GenConfig};

    fn setup() -> (Kernel, KernelCfg, Vec<StiProfile>) {
        let k = generate(&GenConfig::default());
        let cfg = KernelCfg::build(&k);
        let mut f = StiFuzzer::new(&k, 1);
        f.seed_each_syscall();
        f.fuzz(30);
        let corpus = f.into_corpus();
        (k, cfg, corpus)
    }

    #[test]
    fn dataset_builds_with_labels_aligned() {
        let (k, cfg, corpus) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ctis = random_cti_pairs(&mut rng, corpus.len(), 4);
        let ds = build_dataset(
            &k,
            &cfg,
            &corpus,
            &ctis,
            DatasetConfig { interleavings_per_cti: 3, seed: 5 },
        );
        assert!(!ds.is_empty());
        for e in &ds.examples {
            assert_eq!(e.labels.len(), e.graph.num_verts());
            assert!(e.graph.validate().is_ok());
        }
        // Most SCBs should be covered concurrently too (labels mostly true
        // on SCBs), while URB positives are rare.
        let rate = ds.urb_positive_rate();
        assert!(rate < 0.5, "URB positive rate should be skewed low, got {rate}");
    }

    #[test]
    fn dataset_roundtrips_through_json() {
        let (k, cfg, corpus) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let ctis = random_cti_pairs(&mut rng, corpus.len(), 2);
        let ds = build_dataset(
            &k,
            &cfg,
            &corpus,
            &ctis,
            DatasetConfig { interleavings_per_cti: 2, seed: 6 },
        );
        let json = ds.to_json().unwrap();
        let back = Dataset::from_json(&json).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn validation_accepts_built_datasets_and_names_defects() {
        let (k, cfg, corpus) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let ctis = random_cti_pairs(&mut rng, corpus.len(), 2);
        let mut ds = build_dataset(
            &k,
            &cfg,
            &corpus,
            &ctis,
            DatasetConfig { interleavings_per_cti: 2, seed: 22 },
        );
        assert!(validate_dataset(&ds).is_ok());

        let mut truncated = ds.clone();
        truncated.examples[0].labels.pop();
        let err = validate_dataset(&truncated).unwrap_err();
        assert!(err.contains("example 0") && err.contains("label count"), "{err}");

        let mut bad_tok = ds.clone();
        bad_tok.examples[0].graph.verts[0].tokens.push(9999);
        assert!(validate_dataset(&bad_tok).unwrap_err().contains("token 9999"));

        let last = ds.examples.len() - 1;
        ds.examples[last].graph.edges[0].to = u32::MAX;
        assert!(validate_dataset(&ds).unwrap_err().contains(&format!("example {last}")));
    }

    #[test]
    fn splits_partition_all_pairs() {
        let (_k, _cfg, corpus) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let s = make_splits(&mut rng, &corpus, 100);
        assert_eq!(s.train.len() + s.valid.len() + s.eval.len(), 100);
        assert!(s.train.len() > s.valid.len());
        assert!(s.eval.len() > s.valid.len());
    }

    #[test]
    fn duplicate_hint_proposals_are_deduped() {
        let (k, cfg, corpus) = setup();
        // A single-syscall STI has few steps; with many interleavings
        // requested, proposals collide and must be deduped.
        let ctis = vec![(0usize, 0usize)];
        let ds = build_dataset(
            &k,
            &cfg,
            &corpus,
            &ctis,
            DatasetConfig { interleavings_per_cti: 64, seed: 7 },
        );
        let mut hints: Vec<_> = ds.examples.iter().map(|e| e.hints.clone()).collect();
        let before = hints.len();
        hints.sort_by_key(|h| {
            (h.switches.first().map(|s| s.after), h.switches.get(1).map(|s| s.after))
        });
        hints.dedup();
        assert_eq!(before, hints.len(), "examples must have unique schedules");
    }

    #[test]
    fn interacting_pairs_share_memory() {
        let (_k, _cfg, corpus) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let pairs = interacting_cti_pairs(&mut rng, &corpus, 10);
        assert_eq!(pairs.len(), 10);
        let mut found_overlap = 0;
        for (a, b) in pairs {
            let wa: std::collections::HashSet<u32> =
                corpus[a].seq.accesses.iter().filter(|x| x.is_write).map(|x| x.addr.0).collect();
            let rb: std::collections::HashSet<u32> =
                corpus[b].seq.accesses.iter().filter(|x| !x.is_write).map(|x| x.addr.0).collect();
            let wb: std::collections::HashSet<u32> =
                corpus[b].seq.accesses.iter().filter(|x| x.is_write).map(|x| x.addr.0).collect();
            let ra: std::collections::HashSet<u32> =
                corpus[a].seq.accesses.iter().filter(|x| !x.is_write).map(|x| x.addr.0).collect();
            if !wa.is_disjoint(&rb) || !wb.is_disjoint(&ra) {
                found_overlap += 1;
            }
        }
        assert!(found_overlap >= 8, "most pairs should interact: {found_overlap}/10");
    }

    #[test]
    fn built_datasets_carry_static_feature_channels() {
        let (k, cfg, corpus) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let ctis = random_cti_pairs(&mut rng, corpus.len(), 2);
        let ds = build_dataset(
            &k,
            &cfg,
            &corpus,
            &ctis,
            DatasetConfig { interleavings_per_cti: 2, seed: 32 },
        );
        let s = ds.stats();
        assert!(
            s.static_feat_verts > 0,
            "analysis-derived static channels should be stamped on some vertices"
        );
        // Channels must survive the SCDS v5 binary round-trip.
        let back = crate::decode_dataset(crate::encode_dataset(&ds)).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn stats_accumulate() {
        let (k, cfg, corpus) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let ctis = random_cti_pairs(&mut rng, corpus.len(), 3);
        let ds = build_dataset(
            &k,
            &cfg,
            &corpus,
            &ctis,
            DatasetConfig { interleavings_per_cti: 2, seed: 9 },
        );
        let s = ds.stats();
        assert_eq!(s.verts, ds.examples.iter().map(|e| e.graph.num_verts()).sum::<usize>());
        assert!(s.urbs > 0);
    }
}
