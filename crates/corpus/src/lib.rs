//! # snowcat-corpus — test-input generation and dataset construction
//!
//! Plays two roles from the paper's workflow:
//!
//! 1. the **STI source** (Syzkaller's role): a coverage-feedback fuzzer over
//!    the synthetic kernel's syscall catalogue ([`StiFuzzer`]), and
//! 2. the **graph dataset collector** (the modified-SKI role): pairing STIs
//!    into CTIs, exploring random interleavings of each, executing them, and
//!    labelling the resulting CT graphs with observed coverage
//!    ([`build_dataset`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binfmt;
pub mod dataset;
pub mod fuzzer;

pub use binfmt::{
    crc32, decode_dataset, encode_dataset, frame_checksummed, unframe_checksummed, DecodeError,
};
pub use dataset::{
    build_dataset, interacting_cti_pairs, make_splits, random_cti_pairs, validate_dataset,
    validate_example, Dataset, DatasetConfig, Example, Splits,
};
pub use fuzzer::{FuzzConfig, FuzzStats, StiFuzzer, StiProfile};
