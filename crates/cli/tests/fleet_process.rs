//! Process-transport fleet smoke tests: SIGKILL a `fleet-worker`
//! subprocess mid-shard, SIGKILL the coordinator and check for orphans,
//! force graceful degradation below `--min-workers`, and drive a
//! poison-shard crash loop into quarantine — all while the merged report
//! stays byte-identical to an uninterrupted thread-transport fleet.

use std::path::Path;
use std::process::Command;
use std::time::{Duration, Instant};

fn snowcat() -> Command {
    Command::new(env!("CARGO_BIN_EXE_snowcat"))
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("snowcat-fleet-process-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const COMMON: &[&str] = &["fleet", "--seed", "77", "--ctis", "16", "--budget", "5"];

/// Unfaulted thread-transport fleet with the same stream: the byte-level
/// oracle for every process-transport run below (process ≡ thread).
fn run_reference(dir: &Path) -> String {
    let report = dir.join("ref.json");
    let status = snowcat()
        .args(COMMON)
        .args(["--workers", "2"])
        .args(["--dir", dir.join("ref").to_str().unwrap()])
        .args(["--report", report.to_str().unwrap()])
        .status()
        .expect("binary runs");
    assert!(status.success(), "reference fleet failed");
    std::fs::read_to_string(&report).unwrap()
}

/// PIDs of live `fleet-worker` subprocesses whose parent is `coord`,
/// discovered via /proc so the test never confuses another test's fleet
/// (the suite runs its cases in parallel threads of one process).
fn worker_children_of(coord: u32) -> Vec<u32> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return out;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(pid) = name.to_str().and_then(|s| s.parse::<u32>().ok()) else {
            continue;
        };
        let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
            continue;
        };
        // The ppid is the 4th stat field, but comm (field 2) may itself
        // contain spaces — split after the closing paren instead.
        let Some(idx) = stat.rfind(')') else { continue };
        let mut fields = stat[idx + 1..].split_whitespace();
        let _state = fields.next();
        let Some(ppid) = fields.next().and_then(|p| p.parse::<u32>().ok()) else {
            continue;
        };
        if ppid != coord {
            continue;
        }
        let Ok(cmdline) = std::fs::read_to_string(format!("/proc/{pid}/cmdline")) else {
            continue;
        };
        if cmdline.contains("fleet-worker") {
            out.push(pid);
        }
    }
    out
}

fn is_live_fleet_worker(pid: u32) -> bool {
    // PID reuse shows up as a live /proc entry with a different cmdline.
    std::fs::read_to_string(format!("/proc/{pid}/cmdline"))
        .map(|c| c.contains("fleet-worker"))
        .unwrap_or(false)
}

fn sigkill(pid: u32) {
    let status = Command::new("kill").args(["-9", &pid.to_string()]).status().expect("kill runs");
    assert!(status.success(), "kill -9 {pid} failed");
}

#[test]
fn process_single_worker_fleet_equals_campaign() {
    let dir = tmp_dir("n1");
    let campaign_report = dir.join("campaign.json");
    let fleet_report = dir.join("fleet.json");
    let status = snowcat()
        .args(["campaign", "--seed", "77", "--ctis", "16", "--budget", "5"])
        .args(["--report", campaign_report.to_str().unwrap()])
        .status()
        .expect("binary runs");
    assert!(status.success());
    let status = snowcat()
        .args(COMMON)
        .args(["--workers", "1", "--transport", "process"])
        .args(["--dir", dir.join("f1").to_str().unwrap()])
        .args(["--report", fleet_report.to_str().unwrap()])
        .status()
        .expect("binary runs");
    assert!(status.success());
    assert_eq!(
        std::fs::read_to_string(&campaign_report).unwrap(),
        std::fs::read_to_string(&fleet_report).unwrap(),
        "a single-worker process fleet must report byte-identically to snowcat campaign"
    );
}

#[test]
fn sigkilled_worker_subprocess_is_stolen_and_report_is_unchanged() {
    let dir = tmp_dir("worker-kill");
    let reference = run_reference(&dir);
    let fleet_dir = dir.join("victim");
    let report = dir.join("report.json");

    let mut child = snowcat()
        .args(COMMON)
        .args(["--workers", "2", "--transport", "process"])
        .args(["--dir", fleet_dir.to_str().unwrap()])
        .args(["--report", report.to_str().unwrap()])
        .args(["--checkpoint-every", "1", "--stall-ms", "150", "--lease-ms", "4000"])
        .spawn()
        .expect("binary spawns");
    let coord = child.id();

    // Once a shard checkpoint proves progress, SIGKILL one live worker
    // subprocess out from under its lease.
    let deadline = Instant::now() + Duration::from_secs(60);
    let killed = loop {
        assert!(Instant::now() < deadline, "no killable worker appeared within 60s");
        assert!(
            child.try_wait().expect("try_wait").is_none(),
            "fleet finished before we could kill a worker — raise --stall-ms"
        );
        let workers = worker_children_of(coord);
        let progressed =
            fleet_dir.join("shard-0.ckpt").exists() || fleet_dir.join("shard-1.ckpt").exists();
        if progressed {
            if let Some(&pid) = workers.first() {
                sigkill(pid);
                break pid;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    let status = child.wait().expect("reaped");
    assert!(
        status.success(),
        "fleet must survive SIGKILL of worker subprocess {killed}: {status:?}"
    );
    assert_eq!(
        std::fs::read_to_string(&report).unwrap(),
        reference,
        "a stolen shard must merge byte-identically after the worker subprocess was SIGKILLed"
    );
}

#[test]
fn sigkilled_coordinator_leaves_no_orphans_and_resumes_byte_identically() {
    let dir = tmp_dir("coord-kill");
    let reference = run_reference(&dir);
    let fleet_dir = dir.join("victim");

    let mut child = snowcat()
        .args(COMMON)
        .args(["--workers", "2", "--transport", "process"])
        .args(["--dir", fleet_dir.to_str().unwrap()])
        .args(["--checkpoint-every", "1", "--stall-ms", "150", "--lease-ms", "4000"])
        .spawn()
        .expect("binary spawns");
    let coord = child.id();

    // Wait until workers are live and a shard checkpoint exists, note the
    // worker PIDs, then SIGKILL the coordinator out from under them.
    let deadline = Instant::now() + Duration::from_secs(60);
    let workers = loop {
        assert!(Instant::now() < deadline, "fleet produced no live workers within 60s");
        assert!(
            child.try_wait().expect("try_wait").is_none(),
            "fleet finished before we could kill it — raise --stall-ms"
        );
        let workers = worker_children_of(coord);
        let progressed =
            fleet_dir.join("shard-0.ckpt").exists() || fleet_dir.join("shard-1.ckpt").exists();
        if progressed && !workers.is_empty() {
            break workers;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    child.kill().expect("SIGKILL coordinator");
    child.wait().expect("reaped");

    // Orphan reaping: every worker subprocess must notice the dead wire
    // (EPIPE on its next heartbeat) and exit on its own.
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let orphans: Vec<u32> =
            workers.iter().copied().filter(|&p| is_live_fleet_worker(p)).collect();
        if orphans.is_empty() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "fleet-worker subprocess(es) {orphans:?} outlived the coordinator by 15s"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    let resumed_report = dir.join("resumed.json");
    let status = snowcat()
        .args(COMMON)
        .args(["--workers", "2", "--transport", "process", "--resume"])
        .args(["--dir", fleet_dir.to_str().unwrap()])
        .args(["--report", resumed_report.to_str().unwrap()])
        .status()
        .expect("binary runs");
    assert!(status.success(), "process fleet --resume after coordinator SIGKILL failed");
    assert_eq!(
        std::fs::read_to_string(&resumed_report).unwrap(),
        reference,
        "coordinator SIGKILL + resume must merge byte-identically"
    );
}

#[test]
fn degraded_fleet_exits_8_and_resumes_byte_identically() {
    let dir = tmp_dir("degraded");
    let reference = run_reference(&dir);
    let fleet_dir = dir.join("victim");

    // kill-worker@0 fires once; --max-steals 0 turns that single death
    // into a crash loop, the slot retires, and 1 live worker < the
    // --min-workers floor of 2 — graceful degradation, not fleet failure.
    let out = snowcat()
        .args(COMMON)
        .args(["--workers", "2", "--transport", "process"])
        .args(["--min-workers", "2", "--max-steals", "0"])
        .args(["--fault-plan", "kill-worker@0"])
        .args(["--checkpoint-every", "1"])
        .args(["--dir", fleet_dir.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(8), "degradation below --min-workers is exit code 8");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("fleet degraded"), "stderr names the degradation: {stderr}");
    assert!(stderr.contains("--min-workers"), "stderr names the floor: {stderr}");
    assert!(stderr.contains("resume"), "stderr hints at resume: {stderr}");
    assert!(fleet_dir.join("fleet.scfc").exists(), "degradation must leave the SCFC behind");

    let resumed_report = dir.join("resumed.json");
    let status = snowcat()
        .args(COMMON)
        .args(["--workers", "2", "--transport", "process", "--resume"])
        .args(["--dir", fleet_dir.to_str().unwrap()])
        .args(["--report", resumed_report.to_str().unwrap()])
        .status()
        .expect("binary runs");
    assert!(status.success(), "resume after degradation failed");
    assert_eq!(
        std::fs::read_to_string(&resumed_report).unwrap(),
        reference,
        "a degraded-then-resumed fleet must merge byte-identically"
    );
}

#[test]
fn poison_shard_crash_loop_is_quarantined_via_cli() {
    let dir = tmp_dir("poison");
    let fleet_dir = dir.join("victim");
    let out = snowcat()
        .args(COMMON)
        .args(["--workers", "2", "--transport", "process"])
        .args(["--fault-plan", "poison-shard@1", "--max-steals", "2"])
        .args(["--dir", fleet_dir.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "a quarantined poison shard must not fail the fleet: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("1 quarantined shard(s)"),
        "summary counts the quarantined shard: {stdout}"
    );
}

#[test]
fn fault_plan_validation_rejects_out_of_range_targets_before_spawning() {
    // shard 9 cannot exist with 2 workers: reject at config time (exit 2)
    // instead of silently never firing.
    let dir = tmp_dir("badplan");
    let out = snowcat()
        .args(COMMON)
        .args(["--workers", "2", "--transport", "process"])
        .args(["--fault-plan", "poison-shard@9"])
        .args(["--dir", dir.join("f").to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "out-of-range fault target is a config error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("poison-shard@9"), "stderr names the bad token: {stderr}");
    assert!(stderr.contains("silently ignored"), "stderr explains the rejection: {stderr}");
}
