//! End-to-end tests driving the real `snowcat` binary.

use std::process::Command;

fn snowcat(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_snowcat")).args(args).output().expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = snowcat(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("razzer"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let (ok, _, stderr) = snowcat(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn kernel_inventory_is_deterministic() {
    let (ok, a, _) = snowcat(&["kernel", "--version", "5.12", "--seed", "99", "--stats"]);
    assert!(ok, "kernel command failed");
    assert!(a.contains("syscalls"));
    assert!(a.contains("fs"));
    let (_, b, _) = snowcat(&["kernel", "--version", "5.12", "--seed", "99", "--stats"]);
    assert_eq!(a, b);
}

#[test]
fn kernel_rejects_bad_version() {
    let (ok, _, stderr) = snowcat(&["kernel", "--version", "4.20"]);
    assert!(!ok);
    assert!(stderr.contains("unknown kernel version"));
}

#[test]
fn disasm_renders_a_function() {
    let (ok, stdout, _) = snowcat(&["disasm", "--version", "5.12", "--func", "fs_open"]);
    assert!(ok, "disasm failed");
    assert!(stdout.contains("fs_open:"));
    assert!(stdout.contains("ret") || stdout.contains("jmp") || stdout.contains("beq"));
}

#[test]
fn disasm_unknown_function_is_an_error() {
    let (ok, _, stderr) = snowcat(&["disasm", "--version", "5.12", "--func", "nope"]);
    assert!(!ok);
    assert!(stderr.contains("no function named"));
}

#[test]
fn fuzz_reports_coverage_growth() {
    let (ok, stdout, _) = snowcat(&["fuzz", "--version", "5.12", "--iterations", "30"]);
    assert!(ok, "fuzz failed");
    assert!(stdout.contains("covered sequentially"));
}

#[test]
fn collect_writes_a_decodable_dataset() {
    let dir = std::env::temp_dir().join("snowcat-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tiny.scds");
    let (ok, stdout, stderr) = snowcat(&[
        "collect",
        "--version",
        "5.12",
        "--out",
        path.to_str().unwrap(),
        "--ctis",
        "3",
        "--interleavings",
        "2",
    ]);
    assert!(ok, "collect failed: {stderr}");
    assert!(stdout.contains("labelled graphs"));
    let bytes = std::fs::read(&path).unwrap();
    let ds = snowcat_corpus::decode_dataset(bytes::Bytes::from(bytes)).unwrap();
    assert!(!ds.is_empty());
    std::fs::remove_file(&path).ok();
}

#[test]
fn typo_in_option_is_rejected() {
    let (ok, _, stderr) = snowcat(&["fuzz", "--iterationz", "5"]);
    assert!(!ok);
    assert!(stderr.contains("unknown option"));
}
