//! Kill-and-resume smoke tests for `snowcat train`: SIGKILL the trainer
//! mid-run (and, separately, die via an injected `kill@E` fault), resume
//! from the epoch checkpoint, and verify the final report and the written
//! model weights are byte-identical to an uninterrupted run.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

fn snowcat() -> Command {
    Command::new(env!("CARGO_BIN_EXE_snowcat"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("snowcat-train-kill-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Collect two small dataset shards so training runs skip the (slow,
/// checkpoint-free) collection phase and the kill lands during epochs.
fn collect_shards(dir: &Path) -> String {
    let mut spec = Vec::new();
    for (i, seed) in [("0", "11"), ("1", "12")] {
        let p = dir.join(format!("shard{i}.scds"));
        let status = snowcat()
            .args(["collect", "--seed", seed, "--ctis", "4", "--interleavings", "2"])
            .args(["--out", p.to_str().unwrap()])
            .status()
            .expect("binary runs");
        assert!(status.success(), "collect failed");
        spec.push(p.to_str().unwrap().to_string());
    }
    spec.join(",")
}

fn train_args(shards: &str) -> Vec<String> {
    ["train", "--seed", "99", "--epochs", "3", "--data", shards]
        .iter()
        .map(ToString::to_string)
        .collect()
}

/// The unified `--report` JSON, which must be byte-identical between a
/// kill+resume run and an uninterrupted one (no wall-clock fields).
fn result_of(path: &Path) -> String {
    let text = std::fs::read_to_string(path).unwrap();
    let v = serde_json::parse(&text).unwrap();
    assert_eq!(
        v.get("schema_version").cloned(),
        Some(serde_json::Value::UInt(1)),
        "report carries the unified schema version"
    );
    assert!(v.get("train").is_some(), "train report populates the train summary");
    text
}

#[test]
fn killed_training_resumes_to_identical_weights_and_report() {
    let dir = tmp_dir("sigkill");
    let shards = collect_shards(&dir);
    let ckpt = dir.join("train.stcp");
    let (full_bin, full_rep) = (dir.join("full.bin"), dir.join("full.json"));
    let (res_bin, res_rep) = (dir.join("resumed.bin"), dir.join("resumed.json"));

    // Reference: the same training run, uninterrupted.
    let status = snowcat()
        .args(train_args(&shards))
        .args(["--out", full_bin.to_str().unwrap(), "--report", full_rep.to_str().unwrap()])
        .status()
        .expect("binary runs");
    assert!(status.success());

    // Victim: checkpoint every epoch, stall so the kill lands mid-training.
    let mut child = snowcat()
        .args(train_args(&shards))
        .args(["--out", dir.join("victim.bin").to_str().unwrap()])
        .args(["--checkpoint", ckpt.to_str().unwrap()])
        .args(["--checkpoint-every", "1", "--stall-ms", "400"])
        .spawn()
        .expect("binary spawns");
    let deadline = Instant::now() + Duration::from_secs(60);
    while !ckpt.exists() {
        assert!(Instant::now() < deadline, "no training checkpoint appeared within 60s");
        assert!(
            child.try_wait().expect("try_wait").is_none(),
            "training finished before we could kill it — raise --stall-ms"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().expect("SIGKILL");
    child.wait().expect("reaped");

    // Resume — at a different thread count, which must not change a bit.
    let status = snowcat()
        .args(train_args(&shards))
        .args(["--threads", "2", "--checkpoint", ckpt.to_str().unwrap()])
        .arg("--resume")
        .args(["--out", res_bin.to_str().unwrap(), "--report", res_rep.to_str().unwrap()])
        .status()
        .expect("binary runs");
    assert!(status.success(), "resume after SIGKILL failed");

    assert_eq!(
        result_of(&res_rep),
        result_of(&full_rep),
        "kill+resume must reproduce the uninterrupted training report exactly"
    );
    assert_eq!(
        std::fs::read(&res_bin).unwrap(),
        std::fs::read(&full_bin).unwrap(),
        "kill+resume must write byte-identical model weights"
    );
}

#[test]
fn injected_kill_fault_dies_at_137_and_resumes_identically() {
    let dir = tmp_dir("fault");
    let shards = collect_shards(&dir);
    let ckpt = dir.join("train.stcp");
    let (full_bin, full_rep) = (dir.join("full.bin"), dir.join("full.json"));
    let (res_bin, res_rep) = (dir.join("resumed.bin"), dir.join("resumed.json"));

    let status = snowcat()
        .args(train_args(&shards))
        .args(["--out", full_bin.to_str().unwrap(), "--report", full_rep.to_str().unwrap()])
        .status()
        .expect("binary runs");
    assert!(status.success());

    // `kill@1` exits the process right after epoch 1's checkpoint lands.
    let out = snowcat()
        .args(train_args(&shards))
        .args(["--out", dir.join("victim.bin").to_str().unwrap()])
        .args(["--checkpoint", ckpt.to_str().unwrap(), "--fault-plan", "kill@1"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(137), "kill@E emulates SIGKILL");
    assert!(ckpt.exists(), "the checkpoint must land before the kill");

    // Resuming with the same plan must not re-trigger the passed kill.
    let status = snowcat()
        .args(train_args(&shards))
        .args(["--checkpoint", ckpt.to_str().unwrap(), "--fault-plan", "kill@1"])
        .arg("--resume")
        .args(["--out", res_bin.to_str().unwrap(), "--report", res_rep.to_str().unwrap()])
        .status()
        .expect("binary runs");
    assert!(status.success(), "resume after kill@E failed");

    assert_eq!(result_of(&res_rep), result_of(&full_rep));
    assert_eq!(std::fs::read(&res_bin).unwrap(), std::fs::read(&full_bin).unwrap());
}

#[test]
fn corrupt_shard_is_quarantined_and_divergence_is_exit_7() {
    let dir = tmp_dir("quarantine");
    let shards = collect_shards(&dir);

    // Flip shard 1 on the way in: training must still succeed on shard 0
    // and name the quarantined shard on stderr and in the report.
    let rep = dir.join("report.json");
    let out = snowcat()
        .args(train_args(&shards))
        .args(["--fault-plan", "shard@1:flip"])
        .args(["--out", dir.join("pic.bin").to_str().unwrap()])
        .args(["--report", rep.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "quarantined shard must not abort training");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("quarantined shard"), "stderr names the shard: {stderr}");
    let text = std::fs::read_to_string(&rep).unwrap();
    let v = serde_json::parse(&text).unwrap();
    let quarantined = v
        .get("train")
        .and_then(|t| t.get("quarantined_shards"))
        .and_then(|q| q.as_array().map(<[_]>::len));
    assert_eq!(quarantined, Some(1), "report lists the quarantined shard");

    // A fault that persists through every salted retry is exit code 7.
    let out = snowcat()
        .args(train_args(&shards))
        .args(["--fault-plan", "nan@0x9"])
        .args(["--out", dir.join("never.bin").to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(7), "persistent divergence is exit code 7");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("diverged"), "stderr names the failure: {stderr}");
}
