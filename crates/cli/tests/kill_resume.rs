//! Kill-and-resume smoke test: SIGKILL the `snowcat campaign` binary
//! mid-run, resume from its checkpoint, and verify the final coverage is
//! byte-identical to an uninterrupted run with the same seed.

use std::path::Path;
use std::process::Command;
use std::time::{Duration, Instant};

fn snowcat() -> Command {
    Command::new(env!("CARGO_BIN_EXE_snowcat"))
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("snowcat-kill-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The `result` field of a campaign's `--out` JSON (history + bugs), which
/// must be identical between a kill+resume run and an uninterrupted one.
fn result_of(path: &Path) -> serde_json::Value {
    let text = std::fs::read_to_string(path).unwrap();
    let v = serde_json::parse(&text).unwrap();
    v.get("result").expect("out JSON has a result field").clone()
}

const COMMON: &[&str] = &["campaign", "--seed", "77", "--ctis", "8", "--budget", "5"];

#[test]
fn killed_campaign_resumes_to_identical_coverage() {
    let dir = tmp_dir("resume");
    let ckpt = dir.join("campaign.ckpt");
    let full_out = dir.join("full.json");
    let full_report = dir.join("full-report.json");
    let resumed_out = dir.join("resumed.json");

    // Reference: the same campaign, uninterrupted.
    let status = snowcat()
        .args(COMMON)
        .args(["--out", full_out.to_str().unwrap()])
        .args(["--report", full_report.to_str().unwrap()])
        .status()
        .expect("binary runs");
    assert!(status.success());

    // Victim: checkpoint every CTI, stall so the kill lands mid-campaign.
    let mut child = snowcat()
        .args(COMMON)
        .args(["--checkpoint", ckpt.to_str().unwrap()])
        .args(["--checkpoint-every", "1", "--stall-ms", "300"])
        .spawn()
        .expect("binary spawns");

    // Wait for at least one checkpoint to land, then kill without warning.
    let deadline = Instant::now() + Duration::from_secs(30);
    while !ckpt.exists() {
        assert!(Instant::now() < deadline, "no checkpoint appeared within 30s");
        assert!(
            child.try_wait().expect("try_wait").is_none(),
            "campaign finished before we could kill it — raise --stall-ms"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().expect("SIGKILL");
    child.wait().expect("reaped");

    // The checkpoint (or its .prev fallback, if the kill tore the newest
    // write) must load, and the resumed run must finish the campaign.
    // The resumed run keeps checkpointing so a final SCCP snapshot exists
    // for `snowcat status` to summarize.
    let status = snowcat()
        .args(COMMON)
        .args(["--resume", ckpt.to_str().unwrap()])
        .args(["--checkpoint", ckpt.to_str().unwrap()])
        .args(["--out", resumed_out.to_str().unwrap()])
        .status()
        .expect("binary runs");
    assert!(status.success(), "resume after SIGKILL failed");

    assert_eq!(
        result_of(&resumed_out),
        result_of(&full_out),
        "kill+resume must reproduce the uninterrupted campaign exactly"
    );

    // `snowcat status --json` over the kill-and-resumed directory must be
    // byte-identical to the uninterrupted run's unified `--report` file.
    let out =
        snowcat().args(["status", dir.to_str().unwrap(), "--json"]).output().expect("binary runs");
    assert!(out.status.success(), "status failed: {}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(
        String::from_utf8(out.stdout).unwrap(),
        std::fs::read_to_string(&full_report).unwrap(),
        "status --json must equal the uninterrupted run's unified report, byte for byte"
    );
}

#[test]
fn corrupt_checkpoint_without_fallback_exits_4() {
    let dir = tmp_dir("corrupt");
    let ckpt = dir.join("campaign.ckpt");
    std::fs::write(&ckpt, b"definitely not a checkpoint").unwrap();
    let out = snowcat()
        .args(COMMON)
        .args(["--resume", ckpt.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(4), "corrupt checkpoint is exit code 4");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("checkpoint corrupt"), "stderr names the failure: {stderr}");
}

#[test]
fn injected_predictor_style_faults_do_not_abort() {
    // A hang-heavy plan: the campaign must still exit 0 (no --fail-on-hung)
    // and report its recovery counters on stdout.
    let dir = tmp_dir("faulty");
    let out_json = dir.join("out.json");
    let out = snowcat()
        .args(COMMON)
        .args(["--fault-plan", "hang@1,hang@3x3", "--out", out_json.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "faulty campaign must complete");
    let v = serde_json::parse(&std::fs::read_to_string(&out_json).unwrap()).unwrap();
    let hung = v.get("recovery").and_then(|r| r.get("hung_attempts")).cloned();
    assert!(
        matches!(hung, Some(serde_json::Value::UInt(n)) if n >= 4),
        "hang@1 + hang@3x3 means at least 4 hung attempts, got {hung:?}"
    );
    let quarantined = v.get("quarantined").and_then(|q| q.as_array().map(<[_]>::len));
    assert_eq!(quarantined, Some(1), "only the 3x-hung position is quarantined");

    // The same plan with --fail-on-hung is exit code 3.
    let out = snowcat()
        .args(COMMON)
        .args(["--fault-plan", "hang@3x3"])
        .arg("--fail-on-hung")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(3), "hung CT with --fail-on-hung is exit code 3");
}
