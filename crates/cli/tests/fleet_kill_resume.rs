//! Fleet kill-and-resume smoke tests: kill a worker by fault injection,
//! SIGKILL the whole coordinator mid-run, resume, and verify the merged
//! report is byte-identical to an uninterrupted fleet — and that a
//! single-worker fleet is byte-identical to `snowcat campaign`.

use std::path::Path;
use std::process::Command;
use std::time::{Duration, Instant};

fn snowcat() -> Command {
    Command::new(env!("CARGO_BIN_EXE_snowcat"))
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("snowcat-fleet-kill-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const COMMON: &[&str] = &["fleet", "--seed", "77", "--ctis", "16", "--budget", "5"];

fn run_reference(dir: &Path) -> String {
    let report = dir.join("ref.json");
    let status = snowcat()
        .args(COMMON)
        .args(["--workers", "2"])
        .args(["--dir", dir.join("ref").to_str().unwrap()])
        .args(["--report", report.to_str().unwrap()])
        .status()
        .expect("binary runs");
    assert!(status.success(), "reference fleet failed");
    std::fs::read_to_string(&report).unwrap()
}

#[test]
fn single_worker_fleet_report_equals_campaign_report() {
    let dir = tmp_dir("n1");
    let campaign_report = dir.join("campaign.json");
    let fleet_report = dir.join("fleet.json");
    let status = snowcat()
        .args(["campaign", "--seed", "77", "--ctis", "16", "--budget", "5"])
        .args(["--report", campaign_report.to_str().unwrap()])
        .status()
        .expect("binary runs");
    assert!(status.success());
    let status = snowcat()
        .args(COMMON)
        .args(["--workers", "1"])
        .args(["--dir", dir.join("f1").to_str().unwrap()])
        .args(["--report", fleet_report.to_str().unwrap()])
        .status()
        .expect("binary runs");
    assert!(status.success());
    assert_eq!(
        std::fs::read_to_string(&campaign_report).unwrap(),
        std::fs::read_to_string(&fleet_report).unwrap(),
        "a single-worker fleet must report byte-identically to snowcat campaign"
    );
}

#[test]
fn killed_worker_then_killed_coordinator_resumes_byte_identically() {
    let dir = tmp_dir("sigkill");
    let reference = run_reference(&dir);
    let fleet_dir = dir.join("victim");

    // Victim: worker 1 dies after its first shard checkpoint (injected),
    // every position checkpoints, and the stall widens the window so the
    // coordinator SIGKILL lands mid-run.
    let mut child = snowcat()
        .args(COMMON)
        .args(["--workers", "2"])
        .args(["--dir", fleet_dir.to_str().unwrap()])
        .args(["--events", fleet_dir.to_str().unwrap()])
        .args(["--checkpoint-every", "1", "--stall-ms", "150"])
        .args(["--fault-plan", "kill-worker@1"])
        .spawn()
        .expect("binary spawns");

    // Wait until some shard checkpoint has landed, then SIGKILL the whole
    // process — coordinator, monitor, and surviving worker alike.
    let deadline = Instant::now() + Duration::from_secs(30);
    let some_progress =
        || fleet_dir.join("shard-0.ckpt").exists() || fleet_dir.join("shard-1.ckpt").exists();
    while !some_progress() {
        assert!(Instant::now() < deadline, "no shard checkpoint appeared within 30s");
        assert!(
            child.try_wait().expect("try_wait").is_none(),
            "fleet finished before we could kill it — raise --stall-ms"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().expect("SIGKILL");
    child.wait().expect("reaped");
    assert!(
        fleet_dir.join("fleet.scfc").exists(),
        "the SCFC fleet checkpoint must exist from the moment the fleet starts"
    );

    // Resume without the fault plan: incomplete shards re-execute from
    // their persisted checkpoints with unchanged seeds.
    let resumed_report = dir.join("resumed.json");
    let status = snowcat()
        .args(COMMON)
        .args(["--workers", "2", "--resume"])
        .args(["--dir", fleet_dir.to_str().unwrap()])
        .args(["--events", fleet_dir.to_str().unwrap()])
        .args(["--report", resumed_report.to_str().unwrap()])
        .status()
        .expect("binary runs");
    assert!(status.success(), "fleet --resume after SIGKILL failed");
    assert_eq!(
        std::fs::read_to_string(&resumed_report).unwrap(),
        reference,
        "kill-worker + coordinator SIGKILL + resume must merge byte-identically"
    );

    // `status --json` over the fleet directory must agree byte-for-byte,
    // and the self-check must pass on the resumed event stream.
    let out = snowcat()
        .args(["status", fleet_dir.to_str().unwrap(), "--json"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "status failed: {}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8(out.stdout).unwrap(), reference);
    let out = snowcat()
        .args(["status", fleet_dir.to_str().unwrap(), "--self-check"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "self-check failed: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn fleet_that_loses_every_worker_exits_8_and_resumes() {
    let dir = tmp_dir("exit8");
    let reference = run_reference(&dir);
    let fleet_dir = dir.join("victim");
    let out = snowcat()
        .args(COMMON)
        .args(["--workers", "2"])
        .args(["--dir", fleet_dir.to_str().unwrap()])
        .args(["--checkpoint-every", "1"])
        .args(["--fault-plan", "kill-worker@0,kill-worker@1"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(8), "a fleet with no workers left is exit code 8");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("fleet failed"), "stderr names the failure: {stderr}");
    assert!(stderr.contains("--resume") || stderr.contains("resume"), "stderr hints at resume");

    let resumed_report = dir.join("resumed.json");
    let status = snowcat()
        .args(COMMON)
        .args(["--workers", "2", "--resume"])
        .args(["--dir", fleet_dir.to_str().unwrap()])
        .args(["--report", resumed_report.to_str().unwrap()])
        .status()
        .expect("binary runs");
    assert!(status.success(), "resume after total worker loss failed");
    assert_eq!(std::fs::read_to_string(&resumed_report).unwrap(), reference);
}
