//! A small argument parser for the `snowcat` CLI — flags of the form
//! `--name value` and `--flag`, with typed accessors and unknown-flag
//! rejection. Deliberately dependency-free.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag token).
    pub command: Option<String>,
    opts: BTreeMap<String, String>,
    flags: Vec<String>,
    positionals: Vec<String>,
}

/// Parsing errors, rendered to the user as-is.
#[derive(Debug, PartialEq, Eq)]
pub enum ArgError {
    /// A value failed to parse as the requested type.
    BadValue(String, String),
    /// An option the command does not understand.
    Unknown(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::BadValue(k, v) => write!(f, "--{k}: cannot parse {v:?}"),
            ArgError::Unknown(k) => write!(f, "unknown option --{k}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse a token stream (excluding argv[0]).
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut it = tokens.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                // A flag followed by another flag (or nothing) is boolean.
                match it.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let v = it.next().expect("peeked");
                        out.opts.insert(name.to_string(), v);
                    }
                    _ => out.flags.push(name.to_string()),
                }
            } else if out.command.is_none() {
                out.command = Some(tok);
            } else {
                // Positional operands after the subcommand. Most commands
                // take none and reject them in `ensure_known`; the ones
                // that do (e.g. `status <dir>`) read them explicitly.
                out.positionals.push(tok);
            }
        }
        Ok(out)
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.opts.get(key).map(String::as_str)
    }

    /// String option with a default.
    pub fn get_or(&self, key: &str, default: &str) -> String {
        self.get(key).unwrap_or(default).to_string()
    }

    /// Typed option with a default.
    pub fn get_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue(key.to_string(), v.to_string())),
        }
    }

    /// Boolean flag presence.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Positional operand by index (after the subcommand).
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// Reject any option/flag not in `allowed` and any positional operand
    /// (catches typos early). Commands that take positionals use
    /// [`Args::ensure_known_with_positionals`].
    pub fn ensure_known(&self, allowed: &[&str]) -> Result<(), ArgError> {
        self.ensure_known_with_positionals(allowed, 0)
    }

    /// Like [`Args::ensure_known`], but permitting up to `max_positionals`
    /// positional operands.
    pub fn ensure_known_with_positionals(
        &self,
        allowed: &[&str],
        max_positionals: usize,
    ) -> Result<(), ArgError> {
        for k in self.opts.keys().chain(self.flags.iter()) {
            if !allowed.contains(&k.as_str()) {
                return Err(ArgError::Unknown(k.clone()));
            }
        }
        if let Some(extra) = self.positionals.get(max_positionals) {
            return Err(ArgError::Unknown(extra.clone()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse("train --version 6.1 --ctis 40 --verbose");
        assert_eq!(a.command.as_deref(), Some("train"));
        assert_eq!(a.get("version"), Some("6.1"));
        assert_eq!(a.get_parse("ctis", 0usize).unwrap(), 40);
        assert!(a.has_flag("verbose"));
        assert!(!a.has_flag("quiet"));
    }

    #[test]
    fn typed_defaults_apply() {
        let a = parse("fuzz");
        assert_eq!(a.get_parse("iterations", 7usize).unwrap(), 7);
        assert_eq!(a.get_or("version", "5.12"), "5.12");
    }

    #[test]
    fn bad_value_is_reported() {
        let a = parse("fuzz --iterations banana");
        let err = a.get_parse("iterations", 0usize).unwrap_err();
        assert_eq!(err, ArgError::BadValue("iterations".into(), "banana".into()));
    }

    #[test]
    fn unknown_options_are_caught() {
        let a = parse("fuzz --iterations 3 --bogus 1");
        assert!(a.ensure_known(&["iterations"]).is_err());
        assert!(a.ensure_known(&["iterations", "bogus"]).is_ok());
    }

    #[test]
    fn stray_positional_is_an_error() {
        let a = parse("fuzz extra");
        let err = a.ensure_known(&["iterations"]).unwrap_err();
        assert_eq!(err, ArgError::Unknown("extra".into()));
    }

    #[test]
    fn positionals_are_accessible_when_permitted() {
        let a = parse("status /tmp/run --json");
        assert_eq!(a.positional(0), Some("/tmp/run"));
        assert!(a.ensure_known_with_positionals(&["json"], 1).is_ok());
        assert!(a.ensure_known_with_positionals(&["json"], 0).is_err());
    }

    #[test]
    fn trailing_boolean_flag() {
        let a = parse("kernel --stats");
        assert!(a.has_flag("stats"));
    }
}
