//! Implementations of the `snowcat` subcommands.

use crate::args::Args;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use snowcat_analysis::{analyze as run_analysis, Allowlist, Severity};
use snowcat_cfg::KernelCfg;
use snowcat_core::{
    explore_mlpct, explore_pct, find_candidates, find_candidates_prefiltered, load_checkpoint,
    reproduce, save_checkpoint, save_checkpoint_json, save_dataset, CachedPredictor, CostModel,
    CoveragePredictor, ExploreConfig, Explorer, Pic, PipelineConfig, PredictorService,
    RacePrefilter, RazzerMode, S1NewBitmap, SnowcatError, StrategyKind,
};
use snowcat_corpus::{build_dataset, interacting_cti_pairs, DatasetConfig, StiFuzzer};
use snowcat_events::{
    read_stream, validate_trace, CampaignEvent, Event, EventSink, EventWriter, FleetEvent,
    ServeEvent, TrainEvent, EVENTS_FILE, TRACE_FILE,
};
use snowcat_harness::{
    clear_fleet_dir, load_checkpoint_with_fallback, load_fleet_checkpoint_with_fallback,
    load_shards_quarantining_instrumented, load_train_checkpoint_with_fallback,
    report_from_campaign_checkpoint, report_from_fleet_checkpoint, report_from_supervised,
    report_from_train, report_from_train_checkpoint, robust_train, run_fleet,
    run_supervised_campaign, FaultPlan, FleetCheckpoint, FleetConfig, RobustTrainConfig,
    SupervisorConfig, ThreadWorker, TrainFaultPlan,
};
use snowcat_kernel::{asm, Kernel, KernelVersion};
use snowcat_nn::{Checkpoint, PicConfig, PicModel, TrainConfig};
use snowcat_serve::{
    run_served_campaign, ApGate, InferenceServer, OverloadPolicy, RefreshConfig, ServeConfig,
    ServedCampaignConfig,
};

/// Default family seed, matching the experiment harness.
const DEFAULT_SEED: u64 = 0x5EED_2023;

type CmdResult = Result<(), Box<dyn std::error::Error>>;

fn build_kernel(args: &Args) -> Result<Kernel, Box<dyn std::error::Error>> {
    let seed = args.get_parse("seed", DEFAULT_SEED)?;
    let version = match args.get_or("version", "5.12").as_str() {
        "5.12" => KernelVersion::V5_12,
        "5.13" => KernelVersion::V5_13,
        "6.1" => KernelVersion::V6_1,
        other => return Err(format!("unknown kernel version {other:?} (5.12|5.13|6.1)").into()),
    };
    Ok(version.spec(seed).build())
}

/// `snowcat kernel` — inventory, optional block stats and bug registry.
pub fn kernel(args: &Args) -> CmdResult {
    args.ensure_known(&["version", "seed", "stats", "bugs"])?;
    let k = build_kernel(args)?;
    println!("kernel {} (seed {:#x})", k.version, args.get_parse("seed", DEFAULT_SEED)?);
    println!(
        "  {} subsystems, {} functions, {} basic blocks, {} instructions",
        k.subsystems.len(),
        k.funcs.len(),
        k.num_blocks(),
        k.num_instrs()
    );
    println!(
        "  {} syscalls, {} locks, {} memory words, {} planted bugs",
        k.syscalls.len(),
        k.num_locks,
        k.mem_words,
        k.bugs.len()
    );
    if args.has_flag("stats") {
        let stats = snowcat_kernel::KernelStats::compute(&k);
        println!("\ninstruction mix ({} total):", stats.mix.total());
        println!(
            "  loads {} / stores {} ({:.1}% memory), binops {}, consts {}, lock/unlock {}/{}, calls {}, bug checks {}, nops {}",
            stats.mix.loads,
            stats.mix.stores,
            stats.mix.memory_fraction() * 100.0,
            stats.mix.binops,
            stats.mix.consts,
            stats.mix.locks,
            stats.mix.unlocks,
            stats.mix.calls,
            stats.mix.bug_checks,
            stats.mix.nops,
        );
        println!("\nper-subsystem inventory:");
        for (si, sub) in k.subsystems.iter().enumerate() {
            let funcs = k.funcs.iter().filter(|f| f.subsystem.index() == si).count();
            let calls = k.syscalls.iter().filter(|s| s.subsystem.index() == si).count();
            let (_, blocks, instrs) = &stats.per_subsystem[si];
            println!(
                "  {:<14} {} funcs, {} syscalls, {} locks, {} regions, {} blocks, {} instrs",
                sub.name,
                funcs,
                calls,
                sub.locks.len(),
                sub.regions.len(),
                blocks,
                instrs,
            );
        }
    }
    if args.has_flag("bugs") {
        println!("\nplanted bugs:");
        for b in &k.bugs {
            println!(
                "  #{:<3} [{}] {:<9} {}  ({}~{})",
                b.id.0,
                b.kind.code(),
                format!("{:?}", b.difficulty),
                b.summary,
                k.syscall(b.syscalls.0).name,
                k.syscall(b.syscalls.1).name,
            );
        }
    }
    Ok(())
}

/// `snowcat disasm` — pseudo-assembly of one function.
pub fn disasm(args: &Args) -> CmdResult {
    args.ensure_known(&["version", "seed", "func"])?;
    let k = build_kernel(args)?;
    let name = args.get("func").ok_or("--func NAME is required")?;
    let func = k
        .funcs
        .iter()
        .find(|f| f.name == name)
        .ok_or_else(|| format!("no function named {name:?} (try `snowcat kernel --stats`)"))?;
    println!("{}:", func.name);
    for &b in &func.blocks {
        println!(".{b}:");
        print!("{}", asm::render_block(&k, k.block(b)));
    }
    Ok(())
}

/// `snowcat fuzz` — run the STI fuzzer and report coverage growth.
pub fn fuzz(args: &Args) -> CmdResult {
    args.ensure_known(&["version", "seed", "iterations", "minimize"])?;
    let k = build_kernel(args)?;
    let iterations = args.get_parse("iterations", 200usize)?;
    let seed = args.get_parse("seed", DEFAULT_SEED)?;
    let mut fz = StiFuzzer::new(&k, seed);
    fz.seed_each_syscall();
    let mut last = fz.stats().coverage;
    for chunk in 0..10 {
        fz.fuzz(iterations / 10);
        let s = fz.stats();
        println!(
            "after {:>5} executions: {:>5} blocks covered (+{}), corpus {}",
            s.executed,
            s.coverage,
            s.coverage - last,
            s.kept
        );
        last = s.coverage;
        let _ = chunk;
    }
    let total_blocks = k.num_blocks();
    let s = fz.stats();
    println!(
        "final: {}/{} blocks ({:.1}%) covered sequentially",
        s.coverage,
        total_blocks,
        100.0 * s.coverage as f64 / total_blocks as f64
    );
    if args.has_flag("minimize") {
        let before = fz.corpus().len();
        let dropped = fz.minimize();
        println!("minimized corpus: {before} -> {} STIs ({dropped} redundant)", before - dropped);
    }
    Ok(())
}

/// `snowcat collect` — build a labelled dataset and write compact binary.
pub fn collect(args: &Args) -> CmdResult {
    args.ensure_known(&["version", "seed", "out", "ctis", "interleavings"])?;
    let k = build_kernel(args)?;
    let cfg = KernelCfg::build(&k);
    let out = args.get("out").ok_or("--out FILE is required")?;
    let n_ctis = args.get_parse("ctis", 100usize)?;
    let inter = args.get_parse("interleavings", 8usize)?;
    let seed = args.get_parse("seed", DEFAULT_SEED)?;

    let mut fz = StiFuzzer::new(&k, seed);
    fz.seed_each_syscall();
    fz.fuzz(100);
    fz.push_random(50);
    let corpus = fz.into_corpus();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC0);
    let ctis = interacting_cti_pairs(&mut rng, &corpus, n_ctis);
    println!("collecting {} CTIs x {} interleavings ...", ctis.len(), inter);
    let ds = build_dataset(
        &k,
        &cfg,
        &corpus,
        &ctis,
        DatasetConfig { interleavings_per_cti: inter, seed: seed ^ 0xD5 },
    );
    let stats = ds.stats();
    println!(
        "{} labelled graphs ({} vertices, {} edges, URB positive rate {:.2}%)",
        ds.len(),
        stats.verts,
        stats.edges,
        ds.urb_positive_rate() * 100.0
    );
    save_dataset(std::path::Path::new(&out), &ds)?;
    let size = std::fs::metadata(out)?.len();
    println!("wrote {} ({} KiB)", out, size / 1024);
    Ok(())
}

/// `snowcat train` — robust, resumable training pipeline; binary (SCMC)
/// model checkpoint out, epoch-granular (STCP) training checkpoints with
/// `--checkpoint`, anomaly guards with rollback, and shard-quarantining
/// data loading with `--data`.
pub fn train(args: &Args) -> CmdResult {
    args.ensure_known(&[
        "version",
        "seed",
        "out",
        "ctis",
        "epochs",
        "threads",
        "flow",
        "data",
        "checkpoint",
        "checkpoint-every",
        "resume",
        "fault-plan",
        "patience",
        "export-json",
        "report",
        "events",
        "stall-ms",
    ])?;
    let k = build_kernel(args)?;
    let cfg = KernelCfg::build(&k);
    let out = args.get("out").ok_or("--out FILE is required")?;
    let seed = args.get_parse("seed", DEFAULT_SEED)?;
    let train_cfg = TrainConfig {
        epochs: args.get_parse("epochs", 6usize)?,
        threads: args.get_parse("threads", 1usize)?,
        ..TrainConfig::default()
    };
    let pcfg = PipelineConfig::default()
        .with_fuzz_iterations(150)
        .with_n_ctis(args.get_parse("ctis", 200usize)?)
        .with_train_interleavings(12)
        .with_eval_interleavings(12)
        .with_model(PicConfig::default())
        .with_train(train_cfg)
        .with_seed(seed);

    if args.has_flag("flow") {
        // The flow head trains through the plain joint path; the supervised
        // trainer covers the deployed coverage head only.
        for robust in [
            "data",
            "checkpoint",
            "checkpoint-every",
            "resume",
            "fault-plan",
            "patience",
            "report",
            "events",
            "stall-ms",
        ] {
            if args.get(robust).is_some() || args.has_flag(robust) {
                return Err(format!("--flow does not support --{robust}").into());
            }
        }
        println!("training PIC with the inter-thread-flow head ...");
        let data = snowcat_core::collect_data(&k, &cfg, &pcfg);
        let (ck, summary, flow_ap) = snowcat_core::train_on_with_flows(
            &k,
            &data,
            pcfg.model,
            pcfg.train,
            seed,
            "PIC-cli+flow",
        );
        println!(
            "coverage val AP {:.4}, flow AP {:.4}, threshold {:.2}",
            summary.val_urb_ap, flow_ap, ck.threshold
        );
        save_checkpoint(std::path::Path::new(&out), &ck)?;
        println!("wrote checkpoint to {out}");
        if let Some(p) = args.get("export-json") {
            save_checkpoint_json(std::path::Path::new(p), &ck)?;
            println!("wrote JSON export to {p}");
        }
        return Ok(());
    }

    let fault_plan = TrainFaultPlan::parse(&args.get_or("fault-plan", ""))
        .map_err(|e| SnowcatError::Config(format!("--fault-plan: {e}")))?;
    let (sink, writer) = spawn_event_writer(args)?;

    // Data: either quarantine-load shards collected earlier, or collect
    // deterministically from the synthetic kernel (the plain-pipeline path).
    let mut quarantine = None;
    let (train_set, valid_set, eval_set) = match args.get("data") {
        Some(spec) => {
            let paths: Vec<std::path::PathBuf> =
                spec.split(',').filter(|s| !s.is_empty()).map(std::path::PathBuf::from).collect();
            let (merged, q) =
                load_shards_quarantining_instrumented(&paths, &fault_plan, sink.as_ref());
            println!(
                "loaded {}/{} shards ({} examples), {} quarantined",
                q.loaded,
                paths.len(),
                q.examples,
                q.quarantined.len()
            );
            for issue in &q.quarantined {
                eprintln!("warning: quarantined shard {}: {}", issue.path, issue.reason);
            }
            if merged.is_empty() {
                return Err(SnowcatError::Config(
                    "no usable examples: every shard was quarantined".into(),
                )
                .into());
            }
            quarantine = Some(q);
            // Deterministic 90/10 train/valid split by example position.
            let mut tr = snowcat_corpus::Dataset::default();
            let mut va = snowcat_corpus::Dataset::default();
            for (i, e) in merged.examples.into_iter().enumerate() {
                if i % 10 == 9 {
                    va.examples.push(e);
                } else {
                    tr.examples.push(e);
                }
            }
            (tr, va, None)
        }
        None => {
            let data = snowcat_core::collect_data(&k, &cfg, &pcfg);
            (data.train_set, data.valid_set, Some(data.eval_set))
        }
    };

    println!("training PIC ({} train / {} valid graphs) ...", train_set.len(), valid_set.len());
    let pre = snowcat_core::pretrain_encoder(&k, &pcfg.model, seed);
    let mut model = PicModel::new(pcfg.model);
    model.params.tok_emb = pre.tok_emb.clone();
    let train_refs = snowcat_core::as_labeled(&train_set);
    let valid_refs = snowcat_core::as_labeled(&valid_set);

    let mut rcfg = RobustTrainConfig::new(pcfg.train);
    rcfg.checkpoint_path = args.get("checkpoint").map(std::path::PathBuf::from);
    rcfg.checkpoint_every = args.get_parse("checkpoint-every", 1usize)?;
    if let Some(p) = args.get("patience") {
        rcfg.patience = Some(p.parse().map_err(|_| format!("--patience: cannot parse {p:?}"))?);
    }
    rcfg.stall_ms = args.get_parse("stall-ms", 0u64)?;
    rcfg.fault_plan = fault_plan;
    rcfg.events = sink;
    let resume = args.has_flag("resume");
    if resume && rcfg.checkpoint_path.is_none() {
        return Err(SnowcatError::Config("--resume requires --checkpoint FILE".into()).into());
    }

    let report = robust_train(&mut model, &train_refs, &valid_refs, &rcfg, resume)?;
    let threshold = report.threshold.unwrap_or(0.5);
    let checkpoint = Checkpoint::new(&model, threshold, "PIC-cli");
    println!(
        "trained {} epochs; val URB AP {:.4}; threshold {:.2}; {} anomalies survived{}",
        report.epoch_losses.len(),
        report.val_ap.last().copied().unwrap_or(f64::NAN),
        threshold,
        report.anomalies.len(),
        if report.early_stopped { " (early-stopped)" } else { "" },
    );
    for a in &report.anomalies {
        println!("  anomaly: epoch {} attempt {}: {} ({})", a.epoch, a.attempt, a.kind, a.detail);
    }
    if let Some(eval) = &eval_set {
        let eval_refs = snowcat_core::as_labeled(eval);
        let m = snowcat_nn::evaluate(&model, &eval_refs, threshold, true);
        println!("eval URB P/R {:.3}/{:.3} over {} graphs", m.precision, m.recall, eval.len());
    }

    save_checkpoint(std::path::Path::new(&out), &checkpoint)?;
    println!("wrote checkpoint to {out}");
    if let Some(p) = args.get("export-json") {
        save_checkpoint_json(std::path::Path::new(p), &checkpoint)?;
        println!("wrote JSON export to {p}");
    }
    if let Some(p) = args.get("report") {
        // The unified schema serializes deterministically (no wall-clock
        // fields), so a resumed run's report is byte-identical to an
        // uninterrupted one.
        let unified = report_from_train(&report, quarantine.as_ref());
        std::fs::write(p, unified.to_canonical_json())?;
        println!("report written to {p}");
    }
    finish_event_writer(writer)?;
    Ok(())
}

/// Capacity of the in-process event queue: generous enough that a healthy
/// writer thread never causes drops, bounded so a stuck one cannot take the
/// hot loop down with it.
const EVENT_QUEUE_CAP: usize = 1 << 16;

/// Wire up `--events DIR`: a bounded sink plus the writer thread draining
/// it into `DIR/events.jsonl` and `DIR/trace.json`.
fn spawn_event_writer(
    args: &Args,
) -> Result<(Option<EventSink>, Option<EventWriter>), Box<dyn std::error::Error>> {
    match args.get("events") {
        Some(dir) => {
            let sink = EventSink::bounded(EVENT_QUEUE_CAP);
            let writer = EventWriter::spawn(sink.clone(), std::path::Path::new(dir))?;
            Ok((Some(sink), Some(writer)))
        }
        None => Ok((None, None)),
    }
}

/// Flush the event stream and report what landed on disk.
fn finish_event_writer(writer: Option<EventWriter>) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(w) = writer {
        let summary = w.finish()?;
        println!("events: {} written, {} dropped", summary.written, summary.dropped);
    }
    Ok(())
}

fn load_model(args: &Args) -> Result<Checkpoint, Box<dyn std::error::Error>> {
    let path = args.get("model").ok_or("--model FILE is required")?;
    Ok(load_checkpoint(std::path::Path::new(&path))?)
}

/// `snowcat explore` — PCT vs MLPCT-S1 on a CTI stream.
pub fn explore(args: &Args) -> CmdResult {
    args.ensure_known(&["version", "seed", "model", "ctis", "budget"])?;
    let k = build_kernel(args)?;
    let cfg = KernelCfg::build(&k);
    let ck = load_model(args)?;
    let seed = args.get_parse("seed", DEFAULT_SEED)?;
    let n_ctis = args.get_parse("ctis", 20usize)?;
    let budget = args.get_parse("budget", 50usize)?;

    let mut fz = StiFuzzer::new(&k, seed);
    fz.seed_each_syscall();
    fz.fuzz(100);
    let corpus = fz.into_corpus();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xE0);
    let ctis = interacting_cti_pairs(&mut rng, &corpus, n_ctis);

    let explore_cfg =
        ExploreConfig::default().with_exec_budget(budget).with_inference_cap(1600).with_seed(seed);
    let pic = Pic::new(&ck, &k, &cfg);
    // Memoize inference: re-proposed schedules across the CTI stream are
    // served from the cache instead of re-running the model.
    let cached = CachedPredictor::new(&pic, 4096);
    let service = PredictorService::with(&pic, &cached);
    let mut strat = S1NewBitmap::new();
    let (mut pct_r, mut pct_e) = (0usize, 0u64);
    let (mut ml_r, mut ml_e, mut ml_i) = (0usize, 0u64, 0u64);
    let mut all_reports = Vec::new();
    for (ci, &(a, b)) in ctis.iter().enumerate() {
        let c = explore_cfg.with_seed(seed ^ (ci as u64) << 4);
        let p = explore_pct(&k, &corpus[a], &corpus[b], &c);
        pct_r += p.race_keys().len();
        pct_e += p.executions;
        let m = explore_mlpct(&k, &service, &mut strat, &corpus[a], &corpus[b], &c);
        ml_r += m.race_keys().len();
        ml_e += m.executions;
        ml_i += m.inferences;
        all_reports.extend(m.races);
    }
    println!("over {} CTIs with budget {}:", ctis.len(), budget);
    println!(
        "  PCT      : {pct_r} races, {pct_e} executions         (sim {:.0}s)",
        pct_e as f64 * 2.8
    );
    println!(
        "  MLPCT-S1 : {ml_r} races, {ml_e} executions, {ml_i} inferences (sim {:.0}s)",
        ml_e as f64 * 2.8 + ml_i as f64 * 0.015
    );
    let ps = service.stats();
    println!(
        "  predictor: {} via {}, {} model inferences, cache {}/{} hits ({:.0}% hit rate)",
        cached.name(),
        pic.name(),
        ps.inferences(),
        ps.cache_hits(),
        ps.cache_hits() + ps.cache_misses(),
        ps.hit_rate() * 100.0
    );
    println!(
        "  races per execution: PCT {:.2} vs MLPCT {:.2}",
        pct_r as f64 / pct_e.max(1) as f64,
        ml_r as f64 / ml_e.max(1) as f64
    );

    // Triage the MLPCT findings for human review (top 10).
    let mut findings = snowcat_core::triage(&k, &all_reports);
    findings.truncate(10);
    if !findings.is_empty() {
        println!(
            "
{}",
            snowcat_core::render_findings(&k, &findings)
        );
    }
    Ok(())
}

/// `snowcat razzer` — reproduce the hardest planted races.
pub fn razzer(args: &Args) -> CmdResult {
    args.ensure_known(&["version", "seed", "model", "schedules", "coarse", "events"])?;
    let k = build_kernel(args)?;
    let cfg = KernelCfg::build(&k);
    let ck = load_model(args)?;
    let seed = args.get_parse("seed", DEFAULT_SEED)?;
    let schedules = args.get_parse("schedules", 200usize)?;
    let (sink, writer) = spawn_event_writer(args)?;

    let mut fz = StiFuzzer::new(&k, seed ^ 0x4a22);
    fz.seed_each_syscall();
    fz.fuzz(150);
    let corpus = fz.into_corpus();

    // Static may-race pre-filter: vetoes statically impossible targets and
    // density-ranks candidates before the PIC scores them. The default is
    // the alias-refined set; `--coarse` falls back to the alias-blind PR 3
    // set for before/after comparisons.
    let refined = !args.has_flag("coarse");
    let prefilter =
        if refined { RacePrefilter::new(&k, &cfg) } else { RacePrefilter::new_coarse(&k, &cfg) };

    let mut bugs: Vec<&snowcat_kernel::BugSpec> = k.bugs.iter().filter(|b| b.harmful).collect();
    bugs.sort_by_key(|b| std::cmp::Reverse(b.difficulty));
    bugs.truncate(3);
    for bug in bugs {
        println!("race: {}", bug.summary);
        for mode in [RazzerMode::Strict, RazzerMode::Relax, RazzerMode::Pic] {
            let pic;
            let service;
            let svc_ref = if mode == RazzerMode::Pic {
                pic = Pic::new(&ck, &k, &cfg).with_may_race_blocks(prefilter.may_race_blocks());
                service = PredictorService::direct(&pic);
                Some(&service)
            } else {
                None
            };
            let cands = if mode == RazzerMode::Pic {
                find_candidates_prefiltered(&k, &cfg, &corpus, bug, mode, svc_ref, &prefilter, seed)
            } else {
                find_candidates(&k, &cfg, &corpus, bug, mode, svc_ref, seed)
            };
            let res = reproduce(&k, &corpus, &cands, bug, mode, schedules, 2.8, seed ^ 0xF);
            match res.avg_hours {
                Some(h) => println!(
                    "  {:<13} {:>4} candidates, {:>3} TPs, avg {h:.2} sim h",
                    res.mode, res.candidates, res.true_positives
                ),
                None => {
                    println!("  {:<13} {:>4} candidates, NOT reproduced", res.mode, res.candidates)
                }
            }
        }
    }
    println!(
        "prefilter ({}): {} candidates vetoed statically, {} scored by the PIC \
         ({} may-race pairs)",
        if refined { "alias-refined" } else { "coarse" },
        prefilter.vetoed(),
        prefilter.survivors(),
        prefilter.may_race().len()
    );
    if let Some(s) = &sink {
        s.campaign(snowcat_events::CampaignEvent::PrefilterStats {
            vetoed: prefilter.vetoed(),
            survivors: prefilter.survivors(),
            may_race_pairs: prefilter.may_race().len() as u64,
            refined,
        });
    }
    finish_event_writer(writer)?;
    Ok(())
}

/// `snowcat campaign` — run a supervised (fault-tolerant) testing campaign.
pub fn campaign(args: &Args) -> CmdResult {
    args.ensure_known(&[
        "version",
        "seed",
        "ctis",
        "budget",
        "explorer",
        "model",
        "checkpoint",
        "checkpoint-every",
        "resume",
        "fuel-budget",
        "fault-plan",
        "max-hours",
        "stall-ms",
        "stop-after",
        "out",
        "report",
        "events",
        "fail-on-hung",
        "fail-on-degraded",
        "serve",
        "serve-batch",
        "serve-wait-us",
        "serve-workers",
        "refresh",
        "refresh-epochs",
        "refresh-max",
        "refresh-gate",
    ])?;
    let k = build_kernel(args)?;
    let seed = args.get_parse("seed", DEFAULT_SEED)?;
    let n_ctis = args.get_parse("ctis", 20usize)?;
    let budget = args.get_parse("budget", 20usize)?;

    // The corpus and CTI stream are deterministic in (version, seed, ctis),
    // so a resumed invocation regenerates the exact stream the checkpoint
    // was written against.
    let mut fz = StiFuzzer::new(&k, seed);
    fz.seed_each_syscall();
    fz.fuzz(100);
    let corpus = fz.into_corpus();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xE0);
    let stream = interacting_cti_pairs(&mut rng, &corpus, n_ctis);

    let explore_cfg = ExploreConfig::default().with_exec_budget(budget).with_seed(seed);
    let cost = CostModel::default();

    let mut sup = SupervisorConfig::new();
    if let Some(v) = args.get("fuel-budget") {
        sup.fuel_budget =
            Some(v.parse().map_err(|_| format!("--fuel-budget: cannot parse {v:?}"))?);
    }
    sup.checkpoint_path = args.get("checkpoint").map(std::path::PathBuf::from);
    sup.checkpoint_every = args.get_parse("checkpoint-every", 25usize)?;
    if let Some(v) = args.get("max-hours") {
        sup.max_hours = Some(v.parse().map_err(|_| format!("--max-hours: cannot parse {v:?}"))?);
    }
    sup.stall_ms = args.get_parse("stall-ms", 0u64)?;
    if let Some(v) = args.get("stop-after") {
        sup.stop_after = Some(v.parse().map_err(|_| format!("--stop-after: cannot parse {v:?}"))?);
    }
    sup.fault_plan = FaultPlan::parse(&args.get_or("fault-plan", ""))?;
    // No fleet here: 0 workers rejects any fleet directive outright.
    sup.fault_plan.validate(stream.len(), 0)?;
    let (sink, writer) = spawn_event_writer(args)?;
    sup.events = sink;

    let resume = match args.get("resume") {
        Some(p) => {
            let (ck, fell_back) = load_checkpoint_with_fallback(std::path::Path::new(p))?;
            if fell_back {
                eprintln!("warning: {p} was corrupt; resuming from the previous good snapshot");
            }
            println!("resuming at stream position {} of {}", ck.position, stream.len());
            Some(ck)
        }
        None => None,
    };

    let supervised = match args.get_or("explorer", "pct").as_str() {
        "pct" => {
            if args.has_flag("serve") {
                return Err("--serve requires an MLPCT explorer (s1|s2|s3)".into());
            }
            run_supervised_campaign(
                &k,
                &corpus,
                &stream,
                Explorer::Pct,
                &explore_cfg,
                &cost,
                &sup,
                resume,
            )?
        }
        s @ ("s1" | "s2" | "s3") => {
            let ck = load_model(args)?;
            let cfg = KernelCfg::build(&k);
            let kind = match s {
                "s1" => StrategyKind::S1,
                "s2" => StrategyKind::S2,
                _ => StrategyKind::S3(2),
            };
            if args.has_flag("serve") {
                served_campaign(
                    args,
                    &k,
                    &cfg,
                    &corpus,
                    &stream,
                    &ck,
                    &explore_cfg,
                    &cost,
                    &sup,
                    kind,
                    seed,
                    resume,
                )?
            } else {
                let pic = Pic::new(&ck, &k, &cfg);
                run_supervised_campaign(
                    &k,
                    &corpus,
                    &stream,
                    Explorer::mlpct(&pic, kind.build()),
                    &explore_cfg,
                    &cost,
                    &sup,
                    resume,
                )?
            }
        }
        other => return Err(format!("unknown explorer {other:?} (pct|s1|s2|s3)").into()),
    };

    let last = supervised.result.last();
    println!(
        "{}: {} CTIs, {} executions, {} races ({} harmful), {} sched-dep blocks, {} bugs, {:.2} sim h",
        supervised.result.label,
        last.ctis,
        last.executions,
        last.races,
        last.harmful_races,
        last.sched_dep_blocks,
        last.bugs,
        last.hours,
    );
    let r = &supervised.recovery;
    println!(
        "recovery: {} hung attempts, {} retries, {} wasted executions, {} checkpoints",
        r.hung_attempts, r.retries, r.wasted_executions, r.checkpoints_written,
    );
    if !supervised.quarantined.is_empty() {
        println!(
            "quarantined CT pairs ({} skipped later): {:?}",
            r.skipped_quarantined, supervised.quarantined
        );
    }
    if let Some(stats) = &supervised.predictor_stats {
        println!(
            "predictor: {} batches, {} degraded, {} fallback predictions",
            stats.batches(),
            stats.degraded_batches(),
            stats.fallback_predictions()
        );
    }

    if let Some(path) = args.get("out") {
        // Legacy shape, kept for existing tooling; the unified schema is
        // `--report` (and `snowcat status --json` over a checkpoint dir).
        std::fs::write(path, serde_json::to_string_pretty(&supervised)?)?;
        println!("result written to {path}");
    }
    if let Some(path) = args.get("report") {
        let report = report_from_supervised(&supervised, seed);
        std::fs::write(path, report.to_canonical_json())?;
        println!("report written to {path}");
    }
    finish_event_writer(writer)?;

    if args.has_flag("fail-on-hung") {
        if let Some(&cti) = supervised.quarantined.first() {
            return Err(Box::new(SnowcatError::ExecutionHung {
                cti,
                fuel: sup.fuel_budget.unwrap_or(explore_cfg.fuel_budget),
            }));
        }
    }
    if args.has_flag("fail-on-degraded") {
        if let Some(stats) = &supervised.predictor_stats {
            if stats.degraded_batches() > 0 {
                return Err(Box::new(SnowcatError::PredictorDegraded {
                    chain: supervised.result.label.clone(),
                    degraded_batches: stats.degraded_batches(),
                }));
            }
        }
    }
    Ok(())
}

/// `campaign --serve`: the same supervised MLPCT campaign, with inference
/// routed through a live micro-batching server and (optionally) the online
/// refresher fine-tuning on the campaign's own fresh CTs.
#[allow(clippy::too_many_arguments)]
fn served_campaign(
    args: &Args,
    k: &Kernel,
    kcfg: &KernelCfg,
    corpus: &[snowcat_corpus::StiProfile],
    stream: &[(usize, usize)],
    ck: &Checkpoint,
    explore_cfg: &ExploreConfig,
    cost: &CostModel,
    sup: &SupervisorConfig,
    kind: StrategyKind,
    seed: u64,
    resume: Option<snowcat_harness::CampaignCheckpoint>,
) -> Result<snowcat_harness::SupervisedResult, Box<dyn std::error::Error>> {
    let serve = ServeConfig {
        max_batch: args.get_parse("serve-batch", 16usize)?,
        max_wait_us: args.get_parse("serve-wait-us", 200u64)?,
        workers: args.get_parse("serve-workers", 1usize)?,
        ..ServeConfig::default()
    };
    let min_pairs = args.get_parse("refresh", 0usize)?;
    let refresh = (min_pairs > 0).then_some(RefreshConfig {
        min_pairs,
        epochs: args.get_parse("refresh-epochs", 1usize)?,
        max_refreshes: args.get_parse("refresh-max", 0u64)?,
        seed: seed ^ 0xF5E5,
        ..RefreshConfig::default()
    });

    // The AP-regression gate needs ground-truth labels, which only exist by
    // executing CTs: hold out a few pairs, label them the same way dataset
    // collection does, and let the breaker judge every refreshed candidate
    // against the incumbent on that fixed set.
    let gate_pairs = args.get_parse("refresh-gate", if refresh.is_some() { 4usize } else { 0 })?;
    let gate = if gate_pairs > 0 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x6A7E);
        let pairs = snowcat_corpus::random_cti_pairs(&mut rng, corpus.len(), gate_pairs);
        let ds = build_dataset(
            k,
            kcfg,
            corpus,
            &pairs,
            DatasetConfig { interleavings_per_cti: 2, seed: seed ^ 0x6A7E },
        );
        ApGate::new(ds.examples.into_iter().map(|e| (e.graph, e.labels)).collect(), 0.01)
    } else {
        ApGate::disabled()
    };

    let outcome = run_served_campaign(
        k,
        kcfg,
        corpus,
        stream,
        ck,
        explore_cfg,
        cost,
        sup,
        &gate,
        &ServedCampaignConfig { serve, strategy: kind, refresh, ..Default::default() },
        resume,
    )?;
    let sv = &outcome.serving;
    println!(
        "serving: {} requests, {} graphs, {} flushes ({:.0}% fill), {} shed, \
         queue depth max {}, p50 {}us, p99 {}us",
        sv.requests,
        sv.graphs,
        sv.flushes,
        sv.batch_fill * 100.0,
        sv.shed,
        sv.queue_depth_max,
        sv.p50_us,
        sv.p99_us,
    );
    println!("serving model: {} (epoch {}, {} swaps installed)", sv.model_name, sv.epoch, sv.swaps);
    if let Some(r) = &outcome.refresh {
        println!(
            "refresh: {} rounds ({} installed, {} rejected, {} rolled back), \
             {} fresh CT pairs consumed",
            r.refreshes, r.installed, r.rejected, r.rolled_back, r.pairs_consumed
        );
    }
    Ok(outcome.result)
}

/// `snowcat fleet` — the supervised campaign sharded across N workers with
/// lease-based work stealing and a crash-consistent SCFC fleet checkpoint.
/// At `--workers 1` with no faults the merged report is byte-identical to
/// `snowcat campaign` with the same seed; after killing any worker (or the
/// whole process) a `--resume` run completes with the same merged bytes.
pub fn fleet(args: &Args) -> CmdResult {
    args.ensure_known(&[
        "version",
        "seed",
        "ctis",
        "budget",
        "workers",
        "explorer",
        "model",
        "dir",
        "resume",
        "lease-ms",
        "max-steals",
        "checkpoint-every",
        "fault-plan",
        "stall-ms",
        "transport",
        "min-workers",
        "spawn-timeout-ms",
        "respawn-backoff-ms",
        "report",
        "events",
        "serve",
        "serve-batch",
        "serve-wait-us",
        "serve-workers",
    ])?;
    let k = build_kernel(args)?;
    let seed = args.get_parse("seed", DEFAULT_SEED)?;
    let n_ctis = args.get_parse("ctis", 20usize)?;
    let budget = args.get_parse("budget", 20usize)?;
    let workers = args.get_parse("workers", 2usize)?;
    let transport = args.get_or("transport", "thread");
    if !matches!(transport.as_str(), "thread" | "process") {
        return Err(format!("unknown transport {transport:?} (thread|process)").into());
    }
    let dir = std::path::PathBuf::from(
        args.get("dir").ok_or("fleet: --dir DIR is required (holds shard + fleet checkpoints)")?,
    );

    // Corpus and stream are deterministic in (version, seed, ctis) and
    // IDENTICAL to `snowcat campaign`'s: the fleet shards the same stream
    // the single campaign would walk.
    let mut fz = StiFuzzer::new(&k, seed);
    fz.seed_each_syscall();
    fz.fuzz(100);
    let corpus = fz.into_corpus();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xE0);
    let stream = interacting_cti_pairs(&mut rng, &corpus, n_ctis);

    let explore_cfg = ExploreConfig::default().with_exec_budget(budget).with_seed(seed);
    let cost = CostModel::default();

    let mut cfg = FleetConfig::new(workers, &dir);
    cfg.lease_ms = args.get_parse("lease-ms", 2_000u64)?;
    cfg.max_steals = args.get_parse("max-steals", 3u64)?;
    cfg.checkpoint_every = args.get_parse("checkpoint-every", 25usize)?;
    cfg.stall_ms = args.get_parse("stall-ms", 0u64)?;
    cfg.fault_plan = FaultPlan::parse(&args.get_or("fault-plan", ""))?;
    cfg.fault_plan.validate(stream.len(), workers)?;
    cfg.min_workers = args.get_parse("min-workers", 1usize)?;
    if cfg.min_workers > workers {
        return Err(format!("--min-workers {} exceeds --workers {workers}", cfg.min_workers).into());
    }
    cfg.spawn_timeout_ms = args.get_parse("spawn-timeout-ms", 10_000u64)?;
    cfg.respawn_backoff_ms = args.get_parse("respawn-backoff-ms", 100u64)?;
    // Process workers are expendable: their slots respawn (with backoff
    // and a crash-loop breaker) instead of retiring on first death.
    cfg.respawn = transport == "process";
    let (sink, writer) = spawn_event_writer(args)?;
    cfg.events = sink.clone();

    let resume = args.has_flag("resume");
    if resume {
        println!("resuming fleet from {}", dir.join(snowcat_harness::FLEET_CKPT_FILE).display());
    } else {
        // A fresh run over a reused directory must not resurrect stale
        // shard checkpoints from an earlier fleet.
        clear_fleet_dir(&dir)?;
    }

    let explorer = args.get_or("explorer", "pct");
    // Even a failed or degraded fleet must seal its event stream — the
    // degradation and crash-loop events are exactly what a post-mortem
    // (`snowcat status DIR`) needs to see.
    let fleet_result = (|| -> Result<FleetCheckpoint, Box<dyn std::error::Error>> {
        Ok(if transport == "process" {
            if args.has_flag("serve") {
                return Err("--serve requires --transport thread: the in-process \
                        inference server cannot be shared across worker processes"
                    .into());
            }
            let label = match explorer.as_str() {
                "pct" => "PCT".to_string(),
                s @ ("s1" | "s2" | "s3") => {
                    // Validate the model now for a fast config error; each
                    // worker subprocess reloads it from --model itself.
                    load_model(args)?;
                    let kind = match s {
                        "s1" => StrategyKind::S1,
                        "s2" => StrategyKind::S2,
                        _ => StrategyKind::S3(2),
                    };
                    format!("MLPCT-{}", kind.build().name())
                }
                other => return Err(format!("unknown explorer {other:?} (pct|s1|s2|s3)").into()),
            };
            // The worker command must rebuild the exact same kernel, corpus,
            // stream, and explorer — the wire handshake cross-checks
            // (label, seed, stream_len) and refuses a mismatched worker.
            let mut wargs = vec![
                "fleet-worker".to_string(),
                "--version".into(),
                args.get_or("version", "5.12"),
                "--seed".into(),
                seed.to_string(),
                "--ctis".into(),
                n_ctis.to_string(),
                "--budget".into(),
                budget.to_string(),
                "--explorer".into(),
                explorer.clone(),
                "--dir".into(),
                dir.display().to_string(),
                "--lease-ms".into(),
                cfg.lease_ms.to_string(),
                "--max-steals".into(),
                cfg.max_steals.to_string(),
                "--checkpoint-every".into(),
                cfg.checkpoint_every.to_string(),
                "--stall-ms".into(),
                cfg.stall_ms.to_string(),
            ];
            if let Some(model) = args.get("model") {
                wargs.push("--model".into());
                wargs.push(model.to_string());
            }
            let fault_plan = args.get_or("fault-plan", "");
            if !fault_plan.is_empty() {
                wargs.push("--fault-plan".into());
                wargs.push(fault_plan);
            }
            let command = snowcat_harness::WorkerCommand {
                program: std::env::current_exe().map_err(|e| {
                    format!("cannot locate the snowcat binary to spawn workers: {e}")
                })?,
                args: wargs,
            };
            let worker = snowcat_harness::ProcessWorker {
                command,
                cfg: &cfg,
                label: label.clone(),
                seed,
                stream_len: stream.len(),
            };
            run_fleet(&worker, &label, seed, stream.len(), &cfg, resume)?
        } else {
            match explorer.as_str() {
                "pct" => {
                    if args.has_flag("serve") {
                        return Err("--serve requires an MLPCT explorer (s1|s2|s3)".into());
                    }
                    let make = |_slot: usize| Explorer::Pct;
                    let worker = ThreadWorker {
                        kernel: &k,
                        corpus: &corpus,
                        stream: &stream,
                        explore_cfg: &explore_cfg,
                        cost: &cost,
                        cfg: &cfg,
                        make_explorer: &make,
                    };
                    run_fleet(&worker, "PCT", seed, stream.len(), &cfg, resume)?
                }
                s @ ("s1" | "s2" | "s3") => {
                    let ck = load_model(args)?;
                    let kcfg = KernelCfg::build(&k);
                    let kind = match s {
                        "s1" => StrategyKind::S1,
                        "s2" => StrategyKind::S2,
                        _ => StrategyKind::S3(2),
                    };
                    let label = format!("MLPCT-{}", kind.build().name());
                    // Every worker slot gets its own Pic (graph builder + cache);
                    // with --serve they all route inference through one shared
                    // micro-batching server instead of predicting inline.
                    let pics: Vec<Pic> = (0..workers).map(|_| Pic::new(&ck, &k, &kcfg)).collect();
                    if args.has_flag("serve") {
                        let serve_cfg = ServeConfig {
                            max_batch: args.get_parse("serve-batch", 16usize)?,
                            max_wait_us: args.get_parse("serve-wait-us", 200u64)?,
                            workers: args.get_parse("serve-workers", 1usize)?,
                            ..ServeConfig::default()
                        };
                        let mut server = InferenceServer::start(&ck, serve_cfg, sink.clone());
                        let handles: Vec<_> = (0..workers).map(|_| server.handle()).collect();
                        let make = |slot: usize| Explorer::MlPct {
                            service: PredictorService::with(&pics[slot], &handles[slot]),
                            strategy: kind.build(),
                        };
                        let worker = ThreadWorker {
                            kernel: &k,
                            corpus: &corpus,
                            stream: &stream,
                            explore_cfg: &explore_cfg,
                            cost: &cost,
                            cfg: &cfg,
                            make_explorer: &make,
                        };
                        let fc = run_fleet(&worker, &label, seed, stream.len(), &cfg, resume)?;
                        let sv = server.shutdown();
                        println!(
                    "serving: {} requests, {} graphs, {} flushes ({:.0}% fill) shared by {} workers",
                    sv.requests,
                    sv.graphs,
                    sv.flushes,
                    sv.batch_fill * 100.0,
                    workers
                );
                        fc
                    } else {
                        let make = |slot: usize| Explorer::mlpct(&pics[slot], kind.build());
                        let worker = ThreadWorker {
                            kernel: &k,
                            corpus: &corpus,
                            stream: &stream,
                            explore_cfg: &explore_cfg,
                            cost: &cost,
                            cfg: &cfg,
                            make_explorer: &make,
                        };
                        run_fleet(&worker, &label, seed, stream.len(), &cfg, resume)?
                    }
                }
                other => return Err(format!("unknown explorer {other:?} (pct|s1|s2|s3)").into()),
            }
        })
    })();
    let fc = match fleet_result {
        Ok(fc) => fc,
        Err(e) => {
            finish_event_writer(writer)?;
            return Err(e);
        }
    };

    println!(
        "fleet: {} shard(s) over {} CTIs with {} worker(s) — {} steal(s), {} re-executed \
         position(s), {} lost worker(s), {} quarantined shard(s)",
        fc.shards.len(),
        fc.stream_len,
        fc.workers,
        fc.steals,
        fc.reexecutions,
        fc.lost_workers,
        fc.quarantined_shards().len(),
    );
    let report = report_from_fleet_checkpoint(&fc, &cost)?;
    if let Some(c) = &report.campaign {
        println!(
            "{}: {} CTIs, {} executions, {} races ({} harmful), {} sched-dep blocks, {} bugs, \
             {:.2} sim h",
            c.label,
            c.ctis,
            c.executions,
            c.races,
            c.harmful_races,
            c.sched_dep_blocks,
            c.bugs_found.len(),
            c.sim_hours,
        );
    }
    if let Some(path) = args.get("report") {
        std::fs::write(path, report.to_canonical_json())?;
        println!("report written to {path}");
    }
    finish_event_writer(writer)?;
    Ok(())
}

/// `snowcat fleet-worker` — the hidden subprocess side of
/// `snowcat fleet --transport process`. Rebuilds the same deterministic
/// kernel/corpus/stream as the coordinator from the pass-through flags,
/// then serves exactly one shard lease over the SCWP stdin/stdout wire
/// protocol (handshake, assignment, heartbeats, result).
///
/// NOTHING in this function may print to stdout — stdout *is* the wire.
/// Diagnostics go to stderr (inherited from the coordinator).
pub fn fleet_worker(args: &Args) -> CmdResult {
    args.ensure_known(&[
        "version",
        "seed",
        "ctis",
        "budget",
        "explorer",
        "model",
        "dir",
        "lease-ms",
        "max-steals",
        "checkpoint-every",
        "fault-plan",
        "stall-ms",
    ])?;
    let k = build_kernel(args)?;
    let seed = args.get_parse("seed", DEFAULT_SEED)?;
    let n_ctis = args.get_parse("ctis", 20usize)?;
    let budget = args.get_parse("budget", 20usize)?;
    let dir = std::path::PathBuf::from(args.get_or("dir", "."));

    let mut fz = StiFuzzer::new(&k, seed);
    fz.seed_each_syscall();
    fz.fuzz(100);
    let corpus = fz.into_corpus();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xE0);
    let stream = interacting_cti_pairs(&mut rng, &corpus, n_ctis);

    let explore_cfg = ExploreConfig::default().with_exec_budget(budget).with_seed(seed);
    let cost = CostModel::default();

    let mut cfg = FleetConfig::new(1, &dir);
    cfg.lease_ms = args.get_parse("lease-ms", 2_000u64)?;
    cfg.max_steals = args.get_parse("max-steals", 3u64)?;
    cfg.checkpoint_every = args.get_parse("checkpoint-every", 25usize)?;
    cfg.stall_ms = args.get_parse("stall-ms", 0u64)?;
    cfg.fault_plan = FaultPlan::parse(&args.get_or("fault-plan", ""))?;

    match args.get_or("explorer", "pct").as_str() {
        "pct" => {
            let make = |_slot: usize| Explorer::Pct;
            let worker = ThreadWorker {
                kernel: &k,
                corpus: &corpus,
                stream: &stream,
                explore_cfg: &explore_cfg,
                cost: &cost,
                cfg: &cfg,
                make_explorer: &make,
            };
            snowcat_harness::serve_worker(&worker, "PCT", seed, stream.len(), cfg.lease_ms)?;
        }
        s @ ("s1" | "s2" | "s3") => {
            let ck = load_model(args)?;
            let kcfg = KernelCfg::build(&k);
            let kind = match s {
                "s1" => StrategyKind::S1,
                "s2" => StrategyKind::S2,
                _ => StrategyKind::S3(2),
            };
            let label = format!("MLPCT-{}", kind.build().name());
            let pic = Pic::new(&ck, &k, &kcfg);
            let make = |_slot: usize| Explorer::mlpct(&pic, kind.build());
            let worker = ThreadWorker {
                kernel: &k,
                corpus: &corpus,
                stream: &stream,
                explore_cfg: &explore_cfg,
                cost: &cost,
                cfg: &cfg,
                make_explorer: &make,
            };
            snowcat_harness::serve_worker(&worker, &label, seed, stream.len(), cfg.lease_ms)?;
        }
        other => return Err(format!("unknown explorer {other:?} (pct|s1|s2|s3)").into()),
    }
    Ok(())
}

/// `snowcat serve` — stand up the inference server, drive it with a
/// deterministic synthetic request stream from concurrent clients, verify
/// bit-identity against direct inference, and report throughput/latency.
pub fn serve(args: &Args) -> CmdResult {
    args.ensure_known(&[
        "version",
        "seed",
        "model",
        "requests",
        "request-size",
        "clients",
        "batch",
        "wait-us",
        "queue-cap",
        "workers",
        "shed",
        "swap",
        "events",
        "out",
    ])?;
    let k = build_kernel(args)?;
    let kcfg = KernelCfg::build(&k);
    let ck = load_model(args)?;
    let seed = args.get_parse("seed", DEFAULT_SEED)?;
    let n_requests = args.get_parse("requests", 64usize)?.max(1);
    let req_size = args.get_parse("request-size", 4usize)?.max(1);
    let clients = args.get_parse("clients", 4usize)?.max(1);
    let cfg = ServeConfig {
        max_batch: args.get_parse("batch", 16usize)?,
        max_wait_us: args.get_parse("wait-us", 200u64)?,
        queue_cap: args.get_parse("queue-cap", 256usize)?,
        overload: if args.has_flag("shed") { OverloadPolicy::Shed } else { OverloadPolicy::Block },
        workers: args.get_parse("workers", 1usize)?,
        ..ServeConfig::default()
    };

    // Deterministic workload: the same candidate CT graphs an explorer
    // would build for random CTI pairs and schedules.
    let mut fz = StiFuzzer::new(&k, seed);
    fz.seed_each_syscall();
    let corpus = fz.into_corpus();
    let pic = Pic::new(&ck, &k, &kcfg);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5E2E);
    let requests: Vec<Vec<_>> = (0..n_requests)
        .map(|_| {
            use rand::Rng;
            let ia = rng.gen_range(0..corpus.len());
            let ib = rng.gen_range(0..corpus.len());
            let (a, b) = (&corpus[ia], &corpus[ib]);
            let base = pic.base_graph(a, b);
            (0..req_size)
                .map(|_| {
                    let hints = snowcat_vm::propose_hints(&mut rng, a.seq.steps, b.seq.steps);
                    pic.candidate_graph(&base, a, b, &hints)
                })
                .collect::<Vec<_>>()
        })
        .collect();

    // Direct baseline: the same requests through bare `predict_batch`.
    let t0 = std::time::Instant::now();
    let direct: Vec<_> = requests.iter().map(|r| pic.predict_batch(r)).collect();
    let direct_s = t0.elapsed().as_secs_f64();

    let (sink, writer) = spawn_event_writer(args)?;
    let slo_p99_us = cfg.slo_p99_us;
    let mut server = InferenceServer::start(&ck, cfg, sink);
    let t1 = std::time::Instant::now();
    let served: Vec<Vec<_>> = std::thread::scope(|s| {
        let server = &server;
        let requests = &requests;
        let swapper = args.has_flag("swap").then(|| {
            // Exercise the hot-swap path mid-stream: same weights under a
            // new name, so the swap is observable (name/epoch change) while
            // outputs stay bit-identical.
            let candidate =
                Checkpoint::new(&ck.restore(), ck.threshold, &format!("{}+swap", ck.name));
            s.spawn(move || server.try_swap(&candidate, &ApGate::disabled()))
        });
        let mut slots: Vec<Vec<(usize, Vec<_>)>> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let h = server.handle();
                    requests
                        .iter()
                        .enumerate()
                        .skip(c)
                        .step_by(clients)
                        .map(|(i, r)| (i, h.predict_batch(r)))
                        .collect()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect();
        if let Some(sw) = swapper {
            println!("hot swap mid-stream: {:?}", sw.join().expect("swapper panicked"));
        }
        let mut merged: Vec<Option<Vec<_>>> = vec![None; requests.len()];
        for (i, preds) in slots.drain(..).flatten() {
            merged[i] = Some(preds);
        }
        merged.into_iter().map(|p| p.expect("every request answered")).collect()
    });
    let served_s = t1.elapsed().as_secs_f64();

    for (i, (d, sv)) in direct.iter().zip(&served).enumerate() {
        for (j, (dp, sp)) in d.iter().zip(sv).enumerate() {
            if dp.probs != sp.probs || dp.positive != sp.positive {
                return Err(format!(
                    "served prediction diverged from direct inference (request {i}, graph {j})"
                )
                .into());
            }
        }
    }
    println!("bit-identity: {} requests verified against direct inference", requests.len());

    let report = server.shutdown();
    let graphs = (n_requests * req_size) as f64;
    println!(
        "direct : {:>8.1} graphs/s ({:.3}s for {} graphs)",
        graphs / direct_s.max(1e-9),
        direct_s,
        graphs as u64
    );
    println!(
        "served : {:>8.1} graphs/s ({:.3}s, {} clients), {:.2}x direct",
        graphs / served_s.max(1e-9),
        served_s,
        clients,
        direct_s / served_s.max(1e-9)
    );
    println!(
        "server : {} flushes ({:.0}% fill), {} shed, queue depth max {}, \
         p50 {}us, p99 {}us (SLO {}us)",
        report.flushes,
        report.batch_fill * 100.0,
        report.shed,
        report.queue_depth_max,
        report.p50_us,
        report.p99_us,
        slo_p99_us,
    );
    if let Some(path) = args.get("out") {
        std::fs::write(path, serde_json::to_string_pretty(&report)?)?;
        println!("serving report written to {path}");
    }
    finish_event_writer(writer)?;
    Ok(())
}

/// `snowcat analyze` — run the static concurrency analyzer.
pub fn analyze(args: &Args) -> CmdResult {
    args.ensure_known(&["version", "seed", "out", "self-check", "coarse", "baseline"])?;
    let k = build_kernel(args)?;
    let cfg = KernelCfg::build(&k);
    let mut analysis = run_analysis(&k, &cfg);
    if args.has_flag("coarse") {
        // Compatibility mode: report and self-check against the alias-blind
        // (PR 3) may-race set instead of the value-flow-refined one.
        analysis.may_race = analysis.may_race_coarse.clone();
    }
    let allowlist = Allowlist::from_planted_bugs(&k);
    let report = analysis.report(&k);

    println!("kernel {} (seed {:#x})", k.version, args.get_parse("seed", DEFAULT_SEED)?);
    println!(
        "analyzed {} blocks / {} instrs; {} memory accesses, {} lock-protected",
        report.blocks, report.instrs, report.mem_accesses, report.locked_accesses
    );
    println!(
        "may-race: {} instruction pairs over {} blocks ({} coarse pairs, {} alias classes, \
         {:.1}% pruned)",
        report.may_race_pairs,
        report.may_race_blocks,
        report.may_race_pairs_coarse,
        report.alias_classes,
        100.0 * (1.0 - report.may_race_pairs as f64 / report.may_race_pairs_coarse.max(1) as f64)
    );
    println!(
        "planted bugs covered by may-race set: {}/{}",
        report.planted_bugs_covered.len(),
        k.bugs.len()
    );
    println!(
        "findings: {} total, {} allowlisted (planted bugs)",
        report.findings.len(),
        report.allowlisted_findings
    );
    for f in &analysis.findings {
        let sev = match f.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        let excused = if allowlist.permits(f) { " [allowlisted]" } else { "" };
        println!("  {sev:<7} {:<40} {}{excused}", f.dedup_key(), f.message);
    }
    let flagged = analysis.flagged_lock_misuse_bugs(&k);
    println!(
        "planted lock-misuse bugs flagged: {}",
        flagged.iter().map(|b| b.to_string()).collect::<Vec<_>>().join(", ")
    );

    if let Some(path) = args.get("out") {
        std::fs::write(path, serde_json::to_string_pretty(&report)?)?;
        println!("report written to {path}");
    }

    if let Some(path) = args.get("baseline") {
        // Precision gate against an older report: the refined set must never
        // grow the pair count, and every planted bug the baseline covered
        // must still be covered (serde defaults make pre-value-flow reports
        // readable — their coarse/covered fields read as 0/empty).
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("--baseline: cannot read {path}: {e}"))?;
        let old: snowcat_analysis::AnalysisReport = serde_json::from_str(&text)
            .map_err(|e| format!("--baseline: {path} is not an analysis report: {e}"))?;
        println!(
            "baseline {path}: {} may-race pairs, {} bugs covered",
            old.may_race_pairs,
            old.planted_bugs_covered.len()
        );
        if report.may_race_pairs > old.may_race_pairs {
            return Err(format!(
                "precision regression vs {path}: may-race pairs grew {} -> {}",
                old.may_race_pairs, report.may_race_pairs
            )
            .into());
        }
        if let Some(lost) =
            old.planted_bugs_covered.iter().find(|id| !report.planted_bugs_covered.contains(id))
        {
            return Err(format!(
                "precision regression vs {path}: planted bug {lost} no longer covered",
            )
            .into());
        }
        println!(
            "baseline gate passed: pairs {} -> {}, coverage kept",
            old.may_race_pairs, report.may_race_pairs
        );
    }

    if args.has_flag("self-check") {
        let unexpected: Vec<_> = analysis.unexpected_findings(&allowlist).collect();
        if !unexpected.is_empty() {
            return Err(format!(
                "self-check failed: {} non-allowlisted finding(s), first: {}",
                unexpected.len(),
                unexpected[0].message
            )
            .into());
        }
        let misuse = snowcat_analysis::lock_misuse_bugs(&k, &analysis.locksets);
        if let Some(missed) = misuse.iter().find(|id| !flagged.contains(id)) {
            return Err(format!("self-check failed: lock-misuse bug {missed} not flagged").into());
        }
        for bug in &k.bugs {
            for loc in &bug.racing_instrs {
                if !analysis.may_race.block_may_race(loc.block) {
                    return Err(format!(
                        "self-check failed: bug {} racing block {} outside may-race set",
                        bug.id, loc.block.0
                    )
                    .into());
                }
            }
        }
        println!("self-check passed");
    }
    Ok(())
}

/// Find checkpoint files in `dir` by sniffing their magic bytes, skipping
/// in-flight (`.tmp`) and rotated (`.prev`) copies. Returns the first SCCP
/// and STCP paths in name order, so the pick is deterministic.
fn scan_checkpoints(
    dir: &std::path::Path,
) -> std::io::Result<(
    Option<std::path::PathBuf>,
    Option<std::path::PathBuf>,
    Option<std::path::PathBuf>,
)> {
    let mut names: Vec<std::path::PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    names.sort();
    let (mut sccp, mut stcp, mut scfc) = (None, None, None);
    for path in names {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.ends_with(".tmp") || name.ends_with(".prev") || !path.is_file() {
            continue;
        }
        let mut magic = [0u8; 4];
        let ok = std::fs::File::open(&path)
            .and_then(|mut f| std::io::Read::read_exact(&mut f, &mut magic))
            .is_ok();
        if !ok {
            continue;
        }
        match &magic {
            b"SCCP" if sccp.is_none() => sccp = Some(path),
            b"STCP" if stcp.is_none() => stcp = Some(path),
            b"SCFC" if scfc.is_none() => scfc = Some(path),
            _ => {}
        }
    }
    Ok((sccp, stcp, scfc))
}

/// What one pass over a status directory found.
struct StatusView {
    report: Option<snowcat_events::Report>,
    stream: Option<snowcat_events::StreamSummary>,
    terminal: bool,
}

fn collect_status(dir: &std::path::Path) -> Result<StatusView, Box<dyn std::error::Error>> {
    let stream = match std::fs::read_to_string(dir.join(EVENTS_FILE)) {
        Ok(text) => Some(read_stream(&text)),
        Err(_) => None,
    };
    let terminal =
        stream.as_ref().map(|s| s.records.iter().any(|r| r.event.is_terminal())).unwrap_or(false);
    // A fleet checkpoint wins over the per-shard SCCP files living in the
    // same directory (the merged view is the meaningful one); a campaign
    // checkpoint wins over training; the training report is still reachable
    // by pointing status at a directory with only the STCP file.
    let (sccp, stcp, scfc) = scan_checkpoints(dir)?;
    let report = if let Some(p) = scfc {
        let (fc, _) = load_fleet_checkpoint_with_fallback(&p)?;
        if fc.shards.iter().any(|s| s.checkpoint.is_some()) {
            Some(report_from_fleet_checkpoint(&fc, &CostModel::default())?)
        } else {
            // A fleet killed before any shard persisted progress has
            // nothing to merge yet.
            None
        }
    } else if let Some(p) = sccp {
        let (ck, _) = load_checkpoint_with_fallback(&p)?;
        Some(report_from_campaign_checkpoint(&ck))
    } else if let Some(p) = stcp {
        let (ck, _) = load_train_checkpoint_with_fallback(&p)?;
        Some(report_from_train_checkpoint(&ck))
    } else {
        None
    };
    Ok(StatusView { report, stream, terminal })
}

/// Validate stream integrity and the Perfetto export; any defect is fatal.
fn status_self_check(dir: &std::path::Path) -> CmdResult {
    let events_path = dir.join(EVENTS_FILE);
    let text = std::fs::read_to_string(&events_path)
        .map_err(|e| format!("--self-check: cannot read {EVENTS_FILE}: {e}"))?;
    // Corruption gets the same distinct exit code (4) as a torn checkpoint.
    let summary =
        snowcat_events::validate_stream(&text).map_err(|e| SnowcatError::CheckpointCorrupt {
            path: events_path.clone(),
            detail: format!("event stream is damaged: {e}"),
        })?;
    let trace_path = dir.join(TRACE_FILE);
    if trace_path.exists() {
        let trace = std::fs::read_to_string(&trace_path)?;
        let n = validate_trace(&trace)
            .map_err(|e| SnowcatError::CheckpointCorrupt { path: trace_path.clone(), detail: e })?;
        println!(
            "self-check: {} events, {} dropped, {} trace events — all clean",
            summary.records.len(),
            summary.dropped,
            n
        );
    } else {
        println!(
            "self-check: {} events, {} dropped — stream clean (no {TRACE_FILE})",
            summary.records.len(),
            summary.dropped
        );
    }
    Ok(())
}

fn print_human_status(view: &StatusView) {
    let Some(stream) = &view.stream else {
        println!("no event stream; showing checkpoint state only");
        if let Some(r) = &view.report {
            print!("{}", r.to_canonical_json());
        }
        return;
    };
    let recs = &stream.records;
    let (mut ctis_total, mut label, mut seed) = (0u64, String::new(), 0u64);
    let (mut outcomes, mut races, mut blocks) = (0u64, 0u64, 0u64);
    let (mut hangs, mut quarantined, mut degradations, mut checkpoints) = (0u64, 0u64, 0u64, 0u64);
    let (mut epochs, mut anomalies, mut rollbacks) = (0u64, 0u64, 0u64);
    let mut last_loss = None;
    let mut predictor = None;
    let mut prefilter = None;
    let mut last_position = 0u64;
    let (mut swaps, mut swap_rejections, mut swap_rollbacks, mut refreshes) =
        (0u64, 0u64, 0u64, 0u64);
    let mut serve_model: Option<String> = None;
    let mut serve_snapshot: Option<ServeEvent> = None;
    let mut serve_stopped: Option<(u64, u64)> = None;
    let mut fleet_started: Option<(u64, u64, bool)> = None;
    let (mut fleet_steals, mut fleet_lost, mut fleet_quarantined) = (0u64, 0u64, 0u64);
    let (mut fleet_done, mut fleet_ckpts) = (0u64, 0u64);
    let (mut fleet_spawns, mut fleet_respawns, mut fleet_crash_loops) = (0u64, 0u64, 0u64);
    let mut fleet_degraded: Option<(u64, u64)> = None;
    let mut fleet_finished: Option<FleetEvent> = None;
    for r in recs {
        match &r.event {
            Event::Campaign(e) => match e {
                CampaignEvent::Started { label: l, seed: s, ctis, .. } => {
                    label = l.clone();
                    seed = *s;
                    ctis_total = *ctis;
                }
                CampaignEvent::ExecutionOutcome { position, new_races, new_blocks, .. } => {
                    outcomes += 1;
                    races += new_races;
                    blocks += new_blocks;
                    last_position = last_position.max(*position + 1);
                }
                CampaignEvent::PredictorBatch { .. } => predictor = Some(e.clone()),
                CampaignEvent::PrefilterStats { .. } => prefilter = Some(e.clone()),
                CampaignEvent::PredictorDegraded { .. } => degradations += 1,
                CampaignEvent::HangDetected { .. } => hangs += 1,
                CampaignEvent::Quarantined { .. } => quarantined += 1,
                CampaignEvent::CheckpointWritten { .. } => checkpoints += 1,
                _ => {}
            },
            Event::Train(e) => match e {
                TrainEvent::EpochCompleted { loss, .. } => {
                    epochs += 1;
                    last_loss = Some(*loss);
                }
                TrainEvent::AnomalyDetected { .. } => anomalies += 1,
                TrainEvent::RolledBack { .. } => rollbacks += 1,
                TrainEvent::CheckpointWritten { .. } => checkpoints += 1,
                _ => {}
            },
            Event::Serve(e) => match e {
                ServeEvent::Started { model, .. } => serve_model = Some(model.clone()),
                ServeEvent::Snapshot { .. } => serve_snapshot = Some(e.clone()),
                ServeEvent::RefreshStarted { .. } => refreshes += 1,
                ServeEvent::SwapInstalled { name, .. } => {
                    swaps += 1;
                    serve_model = Some(name.clone());
                }
                ServeEvent::SwapRejected { .. } => swap_rejections += 1,
                ServeEvent::SwapRolledBack { .. } => swap_rollbacks += 1,
                ServeEvent::Stopped { requests, graphs, .. } => {
                    serve_stopped = Some((*requests, *graphs));
                }
                _ => {}
            },
            Event::Fleet(e) => match e {
                FleetEvent::Started { workers, shards, resumed, .. } => {
                    fleet_started = Some((*workers, *shards, *resumed));
                }
                FleetEvent::ShardStolen { .. } => fleet_steals += 1,
                FleetEvent::WorkerLost { .. } => fleet_lost += 1,
                FleetEvent::ShardQuarantined { .. } => fleet_quarantined += 1,
                FleetEvent::ShardCompleted { .. } => fleet_done += 1,
                FleetEvent::CheckpointWritten { .. } => fleet_ckpts += 1,
                FleetEvent::WorkerSpawned { .. } => fleet_spawns += 1,
                FleetEvent::WorkerRespawned { .. } => fleet_respawns += 1,
                FleetEvent::WorkerCrashLoop { .. } => fleet_crash_loops += 1,
                FleetEvent::FleetDegraded { live_workers, min_workers } => {
                    fleet_degraded = Some((*live_workers, *min_workers));
                }
                FleetEvent::Finished { .. } => fleet_finished = Some(e.clone()),
                _ => {}
            },
            _ => {}
        }
    }
    let elapsed_us = match (recs.first(), recs.last()) {
        (Some(a), Some(b)) => b.t_us.saturating_sub(a.t_us),
        _ => 0,
    };
    let state = if view.terminal { "finished" } else { "running" };
    if outcomes > 0 || ctis_total > 0 {
        println!("campaign {label} (seed {seed:#x}) — {state}");
        println!(
            "  progress : {last_position}/{ctis_total} CTIs, {outcomes} accepted executions, \
             {races} new races, {blocks} new blocks"
        );
        if elapsed_us > 0 && outcomes > 0 {
            let per_sec = outcomes as f64 / (elapsed_us as f64 / 1e6);
            let eta = if view.terminal || last_position == 0 || ctis_total <= last_position {
                "done".to_string()
            } else {
                let remaining = (ctis_total - last_position) as f64;
                let secs = elapsed_us as f64 / 1e6 / last_position as f64 * remaining;
                format!("~{secs:.1}s remaining")
            };
            println!("  rate     : {per_sec:.1} executions/s, {eta}");
        }
        println!(
            "  recovery : {hangs} hung attempts, {quarantined} quarantined CT pairs, \
             {checkpoints} checkpoints"
        );
        if let Some(CampaignEvent::PredictorBatch {
            inferences,
            cache_hits,
            cache_misses,
            degraded_batches,
            fallback_predictions,
            ..
        }) = &predictor
        {
            let looked = cache_hits + cache_misses;
            let rate = if looked > 0 { *cache_hits as f64 / looked as f64 * 100.0 } else { 0.0 };
            println!(
                "  predictor: {inferences} inferences, cache {cache_hits}/{looked} \
                 ({rate:.0}% hit rate), {degradations} degradations \
                 ({degraded_batches} degraded batches, {fallback_predictions} fallbacks)"
            );
        }
    }
    if let Some(CampaignEvent::PrefilterStats { vetoed, survivors, may_race_pairs, refined }) =
        &prefilter
    {
        let total = vetoed + survivors;
        let pct = if total > 0 { *vetoed as f64 / total as f64 * 100.0 } else { 0.0 };
        println!(
            "  prefilter: {vetoed}/{total} candidates vetoed statically ({pct:.0}%), \
             {survivors} scored — {} set, {may_race_pairs} may-race pairs",
            if *refined { "alias-refined" } else { "coarse" }
        );
    }
    if let Some(model) = &serve_model {
        println!("serving {model} — {state}");
        if let Some((requests, graphs)) = serve_stopped {
            println!("  served   : {requests} requests, {graphs} graphs");
        } else if let Some(ServeEvent::Snapshot {
            requests,
            graphs,
            flushes,
            batch_fill,
            p50_us,
            p99_us,
            ..
        }) = &serve_snapshot
        {
            println!(
                "  served   : {requests} requests, {graphs} graphs, {flushes} flushes \
                 ({:.0}% fill), p50 {p50_us}us, p99 {p99_us}us",
                batch_fill * 100.0
            );
        }
        println!(
            "  swaps    : {swaps} installed, {swap_rejections} rejected, \
             {swap_rollbacks} rolled back ({refreshes} refresh rounds)"
        );
    }
    if let Some((workers, shards, resumed)) = fleet_started {
        println!("fleet — {state}{}", if resumed { " (resumed)" } else { "" });
        println!(
            "  shards   : {fleet_done}/{shards} done across {workers} worker(s), \
             {fleet_quarantined} quarantined"
        );
        println!(
            "  stealing : {fleet_steals} steal(s), {fleet_lost} lost worker(s), \
             {fleet_ckpts} fleet checkpoint(s)"
        );
        if fleet_spawns > 0 {
            println!(
                "  processes: {fleet_spawns} spawn(s), {fleet_respawns} respawn(s), \
                 {fleet_crash_loops} crash loop(s)"
            );
        }
        if let Some((live, floor)) = fleet_degraded {
            println!("  DEGRADED : {live} live worker(s) left, below the --min-workers floor of {floor} — resumable");
        }
        if let Some(FleetEvent::Finished { reexecutions, executions, races, .. }) = &fleet_finished
        {
            println!(
                "  totals   : {executions} executions, {races} races, \
                 {reexecutions} re-executed position(s)"
            );
        }
    }
    if epochs > 0 {
        println!("training — {state}");
        print!("  progress : {epochs} epochs completed");
        if let Some(l) = last_loss {
            print!(", last loss {l:.4}");
        }
        println!();
        println!(
            "  guards   : {anomalies} anomalies, {rollbacks} rollbacks, {checkpoints} checkpoints"
        );
    }
    if stream.dropped > 0 {
        println!("  warning  : {} events dropped at the source (queue overflow)", stream.dropped);
    }
    for issue in &stream.issues {
        println!("  stream issue: {issue}");
    }
    if let Some(r) = &view.report {
        let (kind, summaryline) = match (&r.campaign, &r.train) {
            (Some(c), _) => (
                "campaign",
                format!(
                    "{} CTIs, {} executions, {} races ({} harmful), {} bugs, {:.2} sim h",
                    c.ctis,
                    c.executions,
                    c.races,
                    c.harmful_races,
                    c.bugs_found.len(),
                    c.sim_hours
                ),
            ),
            (_, Some(t)) => (
                "train",
                format!(
                    "{} epochs, best {:?}, {} anomalies{}",
                    t.epochs,
                    t.best_epoch,
                    t.anomalies.len(),
                    if t.completed { "" } else { " (incomplete)" }
                ),
            ),
            _ => ("?", String::new()),
        };
        println!("  latest {kind} checkpoint: {summaryline}");
    }
}

/// `snowcat status <dir>` — one-screen summary of a campaign or training
/// directory: the structured event stream plus the latest checkpoint.
pub fn status(args: &Args) -> CmdResult {
    args.ensure_known_with_positionals(&["json", "follow", "self-check"], 1)?;
    let dir = std::path::PathBuf::from(
        args.positional(0)
            .ok_or("usage: snowcat status <dir> [--json] [--follow] [--self-check]")?,
    );
    if !dir.is_dir() {
        return Err(format!("status: {} is not a directory", dir.display()).into());
    }
    if args.has_flag("self-check") {
        status_self_check(&dir)?;
    }
    loop {
        let view = collect_status(&dir)?;
        if args.has_flag("json") {
            // Canonical bytes: identical to the `--report` file an
            // uninterrupted run with the same seed would have written.
            let report = view
                .report
                .as_ref()
                .ok_or("status --json: no SCCP/STCP checkpoint found in the directory")?;
            print!("{}", report.to_canonical_json());
        } else {
            print_human_status(&view);
        }
        if !args.has_flag("follow") || view.terminal {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(500));
    }
}
