//! `snowcat` — the command-line front end to the Snowcat reproduction.
//!
//! ```text
//! snowcat kernel   --version 5.12 [--seed N] [--stats] [--bugs]
//! snowcat disasm   --version 5.12 --func fs_open [--seed N]
//! snowcat fuzz     --version 5.12 [--iterations N]
//! snowcat collect  --version 5.12 --out data.scds [--ctis N] [--interleavings K]
//! snowcat train    --version 5.12 --out pic.bin [--ctis N] [--epochs E] [--flow]
//! snowcat explore  --version 5.12 --model pic.bin [--ctis N] [--budget B]
//! snowcat razzer   --version 5.12 --model pic.bin [--schedules N] [--coarse] [--events DIR]
//! snowcat analyze  --version 5.12 [--seed N] [--out report.json] [--self-check]
//!                  [--coarse] [--baseline OLD.json]
//! snowcat campaign --version 5.12 [--explorer pct|s1|s2|s3] [--checkpoint F] [--resume F]
//!                  [--serve] [--serve-batch N] [--serve-wait-us U] [--refresh N]
//! snowcat fleet    --version 5.12 --dir DIR [--workers N] [--explorer pct|s1|s2|s3]
//!                  [--resume] [--lease-ms MS] [--max-steals K] [--fault-plan SPEC]
//! snowcat serve    --version 5.12 --model pic.bin [--requests N] [--clients C]
//! snowcat status   RUNDIR [--json] [--follow] [--self-check]
//! ```
//!
//! Every command is deterministic given `--seed` (default: the family seed
//! used by the experiment harness, so CLI results line up with the paper
//! regenerators).

mod args;
mod cmds;

use args::Args;

const USAGE: &str = "\
snowcat — efficient kernel concurrency testing using a learned coverage predictor

USAGE: snowcat <command> [options]

COMMANDS:
  kernel    generate a synthetic kernel and print its inventory
              --version 5.12|5.13|6.1   --seed N   --stats   --bugs
  disasm    print a function's pseudo-assembly
              --version V --func NAME [--seed N]
  fuzz      run the coverage-feedback STI fuzzer
              --version V [--iterations N] [--seed N]
  collect   build a labelled CT-graph dataset and write it (binary .scds)
              --version V --out FILE [--ctis N] [--interleavings K] [--seed N]
  train     run the robust training pipeline and write a binary model
            checkpoint (anomaly guards with rollback, epoch checkpoints,
            shard quarantine; resumes bit-identically after a kill)
              --version V --out FILE [--ctis N] [--epochs E] [--seed N]
              [--threads T] [--data S1,S2,...] [--checkpoint FILE]
              [--checkpoint-every K] [--resume] [--patience P]
              [--fault-plan SPEC] [--stall-ms MS] [--report FILE]
              [--events DIR] [--export-json FILE] [--flow]
  explore   compare PCT vs MLPCT-S1 on a CTI stream with a trained model
              --version V --model FILE [--ctis N] [--budget B] [--seed N]
  razzer    reproduce planted races with Razzer / -Relax / -PIC (the -PIC
            path vetoes statically impossible candidates with the
            alias-refined may-race prefilter; --coarse uses the
            alias-blind set, --events records prefilter counters)
              --version V --model FILE [--schedules N] [--seed N]
              [--coarse] [--events DIR]
  analyze   run the static concurrency analyzer (locksets, value-flow alias
            classes, lints, refined may-race; --baseline gates precision
            against an older report: pair count must not grow and every
            previously covered planted bug must stay covered)
              --version V [--seed N] [--out FILE] [--self-check]
              [--coarse] [--baseline OLD.json]
  campaign  run a supervised testing campaign (watchdog, checkpoint/resume,
            fault injection, graceful predictor degradation)
              --version V [--seed N] [--ctis N] [--budget B]
              [--explorer pct|s1|s2|s3] [--model FILE]
              [--checkpoint FILE] [--checkpoint-every K] [--resume FILE]
              [--fuel-budget STEPS] [--fault-plan SPEC] [--max-hours H]
              [--stall-ms MS] [--stop-after N] [--out FILE] [--report FILE]
              [--events DIR] [--fail-on-hung] [--fail-on-degraded]
              [--serve] [--serve-batch N] [--serve-wait-us U] [--serve-workers W]
              [--refresh PAIRS] [--refresh-epochs E] [--refresh-max R]
              [--refresh-gate PAIRS]
  fleet     shard a supervised campaign across N workers with lease-based
            work stealing (a worker whose heartbeat misses its deadline is
            declared dead and its shard re-executed from its last shard
            checkpoint) and a crash-consistent fleet checkpoint (SCFC);
            `--resume` after killing any worker — or the whole process —
            finishes with a merged report byte-identical to an
            uninterrupted run, and `--workers 1` is bit-identical to
            `snowcat campaign`. `--transport process` runs each shard
            lease in a `snowcat fleet-worker` subprocess (isolation from
            worker segfaults/OOM), with spawn/handshake timeouts,
            exponential respawn backoff, a crash-loop breaker, and
            kill-on-drop orphan reaping; when live workers drop below
            `--min-workers` the fleet checkpoints and exits resumable
            with code 8
              --version V --dir DIR [--workers N] [--seed N] [--ctis N]
              [--budget B] [--explorer pct|s1|s2|s3] [--model FILE]
              [--resume] [--lease-ms MS] [--max-steals K]
              [--checkpoint-every K] [--fault-plan SPEC] [--stall-ms MS]
              [--transport thread|process] [--min-workers N]
              [--spawn-timeout-ms MS] [--respawn-backoff-ms MS]
              [--report FILE] [--events DIR]
              [--serve] [--serve-batch N] [--serve-wait-us U] [--serve-workers W]
  serve     run the micro-batching inference server over a synthetic
            request stream and report throughput/latency (predictions are
            bit-identical to direct inference; --swap exercises the atomic
            hot-swap path mid-stream)
              --version V --model FILE [--requests N] [--request-size K]
              [--clients C] [--batch N] [--wait-us U] [--queue-cap Q]
              [--workers W] [--shed] [--swap] [--seed N]
              [--events DIR] [--out FILE]
  status    summarize a campaign/training directory: tail the structured
            event stream (events.jsonl) and the latest checkpoint into a
            one-screen progress report
              snowcat status DIR [--json] [--follow] [--self-check]

EXIT CODES:
  0 success   1 I/O or parse error      2 bad usage / config
  3 CT hung   4 checkpoint corrupt      5 campaign worker failed
  6 predictor degraded (with --fail-on-degraded)
  7 training diverged (anomaly persisted through every salted retry)
  8 fleet failed or degraded (every worker lost / lease expired / live
    workers below --min-workers; the SCFC checkpoint stays on disk —
    rerun with --resume)
";

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let result = match args.command.as_deref() {
        Some("kernel") => cmds::kernel(&args),
        Some("disasm") => cmds::disasm(&args),
        Some("fuzz") => cmds::fuzz(&args),
        Some("collect") => cmds::collect(&args),
        Some("train") => cmds::train(&args),
        Some("explore") => cmds::explore(&args),
        Some("razzer") => cmds::razzer(&args),
        Some("analyze") => cmds::analyze(&args),
        Some("campaign") => cmds::campaign(&args),
        Some("fleet") => cmds::fleet(&args),
        // Hidden: the process-transport worker side of `snowcat fleet`.
        // Speaks the SCWP wire protocol on stdin/stdout; not for humans.
        Some("fleet-worker") => cmds::fleet_worker(&args),
        Some("serve") => cmds::serve(&args),
        Some("status") => cmds::status(&args),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => {
            eprintln!("error: unknown command {other:?}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        // Typed Snowcat errors carry distinct exit codes (hung CT = 3,
        // corrupt checkpoint = 4, failed campaign = 5, degraded = 6, …);
        // anything else is a generic failure.
        let code = e
            .downcast_ref::<snowcat_core::SnowcatError>()
            .map(snowcat_core::SnowcatError::exit_code)
            .unwrap_or(1);
        std::process::exit(code);
    }
}
