//! Bug-finding campaign: PCT vs MLPCT on the evolved kernel.
//!
//! Builds synthetic kernel "6.1" (evolved from 5.12 with new code and newly
//! planted bugs), trains a PIC model, and runs matched PCT and MLPCT
//! campaigns over the same CTI stream — reporting unique potential data
//! races, schedule-dependent coverage, and which planted bugs each explorer
//! exposed (the paper's §5.5 / Table 3 story).
//!
//! Run with: `cargo run --release --example find_new_bugs`

use snowcat::core::{
    run_campaign, train_pic, CostModel, ExploreConfig, Explorer, Pic, PipelineConfig, S1NewBitmap,
};
use snowcat::prelude::*;

fn main() {
    let kernel = KernelVersion::V6_1.spec(0xF00D).build();
    let cfg = KernelCfg::build(&kernel);
    println!(
        "kernel {}: {} syscalls, {} planted bugs",
        kernel.version,
        kernel.syscalls.len(),
        kernel.bugs.len()
    );

    let pcfg = PipelineConfig::default()
        .with_fuzz_iterations(60)
        .with_n_ctis(80)
        .with_train_interleavings(8)
        .with_eval_interleavings(4)
        .with_model(PicConfig { hidden: 24, layers: 3, ..PicConfig::default() })
        .with_train(TrainConfig { epochs: 4, ..TrainConfig::default() })
        .with_seed(0xF00D);
    let trained = train_pic(&kernel, &cfg, &pcfg, "PIC-6");
    let corpus = trained.corpus;

    // Bias the CTI stream toward same-subsystem pairs (Snowboard-style
    // pre-filtering), which is where concurrent behaviour lives.
    let mut stream = Vec::new();
    for i in 0..corpus.len() {
        for j in (i + 1)..corpus.len() {
            let sa = corpus[i].sti.calls.first().map(|c| kernel.syscall(c.syscall).subsystem);
            let sb = corpus[j].sti.calls.first().map(|c| kernel.syscall(c.syscall).subsystem);
            if sa == sb {
                stream.push((i, j));
            }
            if stream.len() >= 40 {
                break;
            }
        }
        if stream.len() >= 40 {
            break;
        }
    }

    let explore =
        ExploreConfig::default().with_exec_budget(30).with_inference_cap(400).with_seed(0xF00D);
    let cost = CostModel::default();

    let pct = run_campaign(&kernel, &corpus, &stream, Explorer::Pct, &explore, &cost);
    let pic = Pic::new(&trained.checkpoint, &kernel, &cfg);
    let mlpct = run_campaign(
        &kernel,
        &corpus,
        &stream,
        Explorer::mlpct(&pic, Box::new(S1NewBitmap::new())),
        &explore,
        &cost,
    );

    for res in [&pct, &mlpct] {
        let last = res.last();
        println!(
            "{:<9} races={} harmful={} sched-dep blocks={} bugs={} execs={} infers={} simulated {:.1} h",
            res.label,
            last.races,
            last.harmful_races,
            last.sched_dep_blocks,
            last.bugs,
            last.executions,
            last.inferences,
            last.hours
        );
        for bug in &res.bugs_found {
            let spec = &kernel.bugs[bug.index()];
            println!("    found bug {}: {} [{}]", bug.0, spec.summary, spec.kind.code());
        }
    }
}
