//! Directed race reproduction with Razzer / Razzer-Relax / Razzer-PIC.
//!
//! Picks a known planted data race in synthetic kernel 5.12, lets the three
//! Razzer variants propose candidate CTIs, and reproduces the race
//! dynamically — showing why the strict variant misses URB-resident races
//! and how the PIC filter shrinks the candidate queue (§5.6.1 of the paper).
//!
//! Run with: `cargo run --release --example reproduce_race`

use snowcat::core::razzer::{find_candidates, racing_blocks, reproduce, RazzerMode};
use snowcat::core::{train_pic, Pic, PipelineConfig};
use snowcat::prelude::*;

fn main() {
    let kernel = KernelVersion::V5_12.spec(0xACE).build();
    let cfg = KernelCfg::build(&kernel);

    // Corpus of STIs (the fuzzing front-end Razzer builds on).
    let mut fuzzer = StiFuzzer::new(&kernel, 3);
    fuzzer.seed_each_syscall();
    fuzzer.fuzz(80);
    let corpus = fuzzer.into_corpus();

    // Target: a hard multi-order planted bug (the paper's bug-#7 class).
    let bug = kernel
        .bugs
        .iter()
        .find(|b| b.kind == BugKind::MultiOrder)
        .expect("standard config plants a hard bug");
    let (ba, bb) = racing_blocks(&kernel, bug).unwrap();
    println!("target race: {} (racing blocks {} / {})", bug.summary, ba, bb);

    // Train a small PIC for the -PIC variant.
    let pcfg = PipelineConfig::default()
        .with_fuzz_iterations(40)
        .with_n_ctis(60)
        .with_train_interleavings(8)
        .with_eval_interleavings(4)
        .with_model(PicConfig { hidden: 24, layers: 3, ..PicConfig::default() })
        .with_train(TrainConfig { epochs: 4, ..TrainConfig::default() })
        .with_seed(0xACE);
    let trained = train_pic(&kernel, &cfg, &pcfg, "PIC-5");
    let pic = Pic::new(&trained.checkpoint, &kernel, &cfg);
    let service = PredictorService::direct(&pic);

    for mode in [RazzerMode::Strict, RazzerMode::Relax, RazzerMode::Pic] {
        let svc = (mode == RazzerMode::Pic).then_some(&service);
        let candidates = find_candidates(&kernel, &cfg, &corpus, bug, mode, svc, 11);
        let res = reproduce(&kernel, &corpus, &candidates, bug, mode, 120, 2.8, 13);
        match res.avg_hours {
            Some(avg) => println!(
                "{:<13} {} candidate CTIs, {} true positives, avg {:.1} h / worst {:.1} h (simulated)",
                res.mode, res.candidates, res.true_positives, avg, res.worst_hours.unwrap()
            ),
            None => println!(
                "{:<13} {} candidate CTIs, 0 true positives — race NOT reproduced",
                res.mode, res.candidates
            ),
        }
    }
}
