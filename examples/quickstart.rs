//! Quickstart: build a synthetic kernel, fuzz some inputs, run one
//! concurrent test under an explicit schedule, and detect potential data
//! races — the whole substrate in ~60 lines.
//!
//! Run with: `cargo run --example quickstart`

use snowcat::prelude::*;

fn main() {
    // 1. Generate the synthetic "Linux 5.12" and its static CFG.
    let kernel = KernelVersion::V5_12.spec(42).build();
    let cfg = KernelCfg::build(&kernel);
    println!(
        "kernel {}: {} blocks, {} syscalls, {} subsystems, {} planted bugs",
        kernel.version,
        kernel.num_blocks(),
        kernel.syscalls.len(),
        kernel.subsystems.len(),
        kernel.bugs.len()
    );

    // 2. Fuzz sequential test inputs (STIs) with coverage feedback.
    let mut fuzzer = StiFuzzer::new(&kernel, 7);
    fuzzer.seed_each_syscall();
    let stats = fuzzer.fuzz(100);
    println!(
        "fuzzer: {} executed, {} kept, {} blocks covered sequentially",
        stats.executed, stats.kept, stats.coverage
    );
    let corpus = fuzzer.into_corpus();

    // 3. Profile two STIs sequentially and identify their 1-hop URBs.
    let a = &corpus[0];
    let b = &corpus[1];
    let urbs_a = cfg.k_hop_urbs(&a.seq.coverage, 1);
    println!(
        "STI A: {} syscalls, {} blocks covered, {} uncovered-reachable blocks at 1 hop",
        a.sti.len(),
        a.seq.coverage.count(),
        urbs_a.len()
    );

    // 4. Run the pair concurrently under an explicit 2-switch schedule.
    let cti = Cti::new(a.sti.clone(), b.sti.clone());
    let hints = ScheduleHints {
        first: ThreadId(0),
        switches: vec![
            SwitchPoint { thread: ThreadId(0), after: a.seq.steps / 2 },
            SwitchPoint { thread: ThreadId(1), after: b.seq.steps / 2 },
        ],
    };
    let result = run_ct(&kernel, &cti, hints, VmConfig::default());
    let beyond = {
        let mut seq = a.seq.coverage.clone();
        seq.union_with(&b.seq.coverage);
        result.coverage.difference(&seq).count()
    };
    println!(
        "concurrent test: {} steps, {} blocks covered ({} beyond the sequential union)",
        result.steps,
        result.coverage.count(),
        beyond
    );

    // 5. Detect potential data races in the access trace.
    let detector = RaceDetector::default();
    let races = detector.detect(&kernel, &result);
    println!("potential data races observed: {}", races.len());
    for r in races.iter().take(5) {
        let tag = if r.benign { "benign (stats counter)" } else { "suspicious" };
        println!("  {} ~ {} on {} [{}]", r.key.0, r.key.1, r.addr, tag);
    }
}
