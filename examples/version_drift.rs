//! Continuous testing across kernel versions (§5.4 of the paper).
//!
//! Trains a predictor on synthetic kernel 5.12, then shows the three
//! options when 5.13 arrives: reuse the stale model, fine-tune it with a
//! small amount of new data, or train from scratch — and compares their
//! validation quality and (simulated) startup cost.
//!
//! Run with: `cargo run --release --example version_drift`

use snowcat::core::{
    as_labeled, collect_data, fine_tune, train_on, train_pic, CostModel, PipelineConfig,
};
use snowcat::nn::urb_average_precision;
use snowcat::prelude::*;

fn main() {
    let cost = CostModel::default();
    let pcfg = PipelineConfig::default()
        .with_fuzz_iterations(60)
        .with_n_ctis(80)
        .with_train_interleavings(8)
        .with_eval_interleavings(8)
        .with_model(PicConfig { hidden: 24, layers: 3, ..PicConfig::default() })
        .with_train(TrainConfig { epochs: 4, ..TrainConfig::default() })
        .with_seed(0xD21F7);

    // Day 0: kernel 5.12 ships; train the base model.
    let k512 = KernelVersion::V5_12.spec(0xD21F7).build();
    let cfg512 = KernelCfg::build(&k512);
    println!("training PIC-5 on kernel {} ...", k512.version);
    let base = train_pic(&k512, &cfg512, &pcfg, "PIC-5");
    println!(
        "  PIC-5: val URB AP {:.3} (collection ~{:.1} sim h)",
        base.summary.val_urb_ap,
        cost.hours((base.summary.examples.0 + base.summary.examples.1) as u64, 0)
    );

    // Two months later: kernel 5.13 (lightly evolved).
    let k513 = KernelVersion::V5_13.spec(0xD21F7).build();
    let cfg513 = KernelCfg::build(&k513);
    let changed = k513.syscalls.len() - k512.syscalls.len();
    println!(
        "\nkernel {} arrives: +{} syscalls, {} bugs ({} in 5.12)",
        k513.version,
        changed,
        k513.bugs.len(),
        k512.bugs.len()
    );

    // Collect a small 5.13 dataset (1/8 of the 5.12 budget).
    let small = pcfg.with_n_ctis(pcfg.n_ctis / 8).with_seed(pcfg.seed ^ 0x513);
    let data513 = collect_data(&k513, &cfg513, &small);
    let new_graphs = data513.train_set.len() + data513.valid_set.len();
    let valid_refs = as_labeled(&data513.valid_set);

    // Option A: reuse PIC-5 unchanged (zero new cost).
    let stale = base.checkpoint.restore();
    let stale_ap = urb_average_precision(&stale, &valid_refs);
    println!("\noption A — reuse stale PIC-5:        val URB AP on 5.13 = {stale_ap:.3} (0 sim h)");

    // Option B: fine-tune with the small new dataset.
    let (ft, ft_ap) =
        fine_tune(&base.checkpoint, &data513.train_set, &data513.valid_set, 3, "PIC-5.13.ft.sml");
    println!(
        "option B — fine-tune on {} new graphs: val URB AP = {ft_ap:.3} (~{:.2} sim h new cost)",
        new_graphs,
        cost.hours(new_graphs as u64, 0)
    );

    // Option C: train from scratch on only the small 5.13 data.
    let (scratch, scratch_summary) =
        train_on(&k513, &data513, pcfg.model, pcfg.train, pcfg.seed ^ 0x5c, "PIC-5.13.scratch");
    println!(
        "option C — from scratch on new data:  val URB AP = {:.3} (~{:.2} sim h)",
        scratch_summary.val_urb_ap,
        cost.hours(new_graphs as u64, 0)
    );

    let _ = (ft, scratch);
    println!(
        "\npaper's conclusion, reproduced: fine-tuning amortizes — the from-scratch model \
         lacks the 5.12 knowledge (\"dataset size trumps all other scaling factors\"), while \
         the stale model stays surprisingly competitive."
    );
}
