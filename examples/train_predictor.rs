//! Train a PIC coverage predictor end-to-end and inspect its predictions.
//!
//! Mirrors the paper's workflow: fuzz STIs → pair CTIs → explore random
//! interleavings → label CT graphs with observed coverage → pre-train the
//! assembly encoder → train the GNN → tune the threshold on validation F2 →
//! deploy and predict.
//!
//! Run with: `cargo run --release --example train_predictor`

use snowcat::core::{train_pic, Pic, PipelineConfig};
use snowcat::prelude::*;

fn main() {
    let kernel = KernelVersion::V5_12.spec(0xBEEF).build();
    let cfg = KernelCfg::build(&kernel);

    // A deliberately small pipeline so the example finishes in ~a minute;
    // the bench binaries run the real thing.
    let pcfg = PipelineConfig::default()
        .with_fuzz_iterations(60)
        .with_n_ctis(80)
        .with_train_interleavings(8)
        .with_eval_interleavings(8)
        .with_model(PicConfig { hidden: 24, layers: 3, ..PicConfig::default() })
        .with_train(TrainConfig { epochs: 4, threads: 2, ..TrainConfig::default() })
        .with_seed(0xBEEF);
    println!("training PIC on synthetic kernel {} ...", kernel.version);
    let out = train_pic(&kernel, &cfg, &pcfg, "PIC-example");
    let s = &out.summary;
    println!(
        "trained on {} graphs ({} URB positives rate {:.2}%), val URB AP {:.3}, threshold {:.2}",
        s.examples.0,
        s.train_stats.urbs,
        s.urb_base_rate * 100.0,
        s.val_urb_ap,
        s.threshold,
    );
    println!(
        "eval URB metrics: precision {:.1}% recall {:.1}% F1 {:.1}%",
        s.eval_urb.precision * 100.0,
        s.eval_urb.recall * 100.0,
        s.eval_urb.f1 * 100.0
    );

    // Deploy the predictor and query it on a fresh CT candidate.
    let pic = Pic::new(&out.checkpoint, &kernel, &cfg);
    let service = PredictorService::direct(&pic);
    let a = &out.corpus[0];
    let b = &out.corpus[1];
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let hints = propose_hints(&mut rng, a.seq.steps, b.seq.steps);
    let pred = service.predict_ct(a, b, &hints);
    let n_pos = pred.positive.iter().filter(|&&p| p).count();
    println!(
        "prediction for a fresh CT candidate: {} of {} vertices predicted covered",
        n_pos,
        pred.graph.num_verts()
    );

    // Compare against the actual dynamic execution.
    let ct = run_ct(&kernel, &Cti::new(a.sti.clone(), b.sti.clone()), hints, VmConfig::default());
    let correct = pred
        .graph
        .verts
        .iter()
        .zip(&pred.positive)
        .filter(|(v, &p)| p == ct.per_thread_coverage[v.thread.index()].contains(v.block.index()))
        .count();
    println!("ground truth agreement: {}/{} vertices", correct, pred.graph.num_verts());
}
