//! End-to-end integration: the full Snowcat workflow at miniature scale —
//! fuzz → datasets → train → deploy → MLPCT exploration → campaign.

use snowcat::core::{
    explore_mlpct, explore_pct, load_checkpoint, run_campaign, save_checkpoint, train_pic,
    CostModel, CoveragePredictor, ExploreConfig, Explorer, Pic, PipelineConfig, PredictorService,
    S1NewBitmap,
};
use snowcat::nn::Checkpoint;
use snowcat::prelude::*;

fn tiny_pipeline() -> PipelineConfig {
    PipelineConfig::default()
        .with_fuzz_iterations(20)
        .with_n_ctis(16)
        .with_train_interleavings(4)
        .with_eval_interleavings(4)
        .with_model(PicConfig { hidden: 12, layers: 2, ..PicConfig::default() })
        .with_train(TrainConfig { epochs: 2, ..TrainConfig::default() })
        .with_seed(0xE2E)
}

#[test]
fn full_workflow_runs_and_checkpoint_roundtrips_via_disk() {
    let kernel = KernelVersion::V5_12.spec(0xE2E).build();
    let cfg = KernelCfg::build(&kernel);
    let out = train_pic(&kernel, &cfg, &tiny_pipeline(), "PIC-e2e");

    // Persist and reload the checkpoint through a real file, via the
    // fallible I/O helpers the CLI uses.
    let dir = std::env::temp_dir().join("snowcat-e2e-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pic.json");
    save_checkpoint(&path, &out.checkpoint).unwrap();
    let loaded = load_checkpoint(&path).unwrap();
    assert_eq!(loaded, out.checkpoint);
    std::fs::remove_file(&path).ok();

    // Deploy and explore one CTI with both explorers.
    let pic = Pic::new(&loaded, &kernel, &cfg);
    let service = PredictorService::direct(&pic);
    let mut strat = S1NewBitmap::new();
    let explore =
        ExploreConfig::default().with_exec_budget(6).with_inference_cap(60).with_seed(0xE2E);
    let a = &out.corpus[0];
    let b = &out.corpus[1];
    let ml = explore_mlpct(&kernel, &service, &mut strat, a, b, &explore);
    let pct = explore_pct(&kernel, a, b, &explore);
    assert!(ml.executions <= 6);
    assert!(ml.inferences >= ml.executions);
    assert!(pct.executions <= 6);
    assert_eq!(pct.inferences, 0);
}

#[test]
fn campaign_histories_are_reproducible() {
    let kernel = KernelVersion::V5_12.spec(0xE2E).build();
    let cfg = KernelCfg::build(&kernel);
    let out = train_pic(&kernel, &cfg, &tiny_pipeline(), "PIC-e2e");
    let stream = vec![(0usize, 1usize), (2, 3), (4, 5)];
    let explore =
        ExploreConfig::default().with_exec_budget(4).with_inference_cap(40).with_seed(0xCAFE);
    let cost = CostModel::default();

    let run = |ck: &Checkpoint| {
        let pic = Pic::new(ck, &kernel, &cfg);
        run_campaign(
            &kernel,
            &out.corpus,
            &stream,
            Explorer::mlpct(&pic, Box::new(S1NewBitmap::new())),
            &explore,
            &cost,
        )
    };
    let r1 = run(&out.checkpoint);
    let r2 = run(&out.checkpoint);
    assert_eq!(r1.history, r2.history);
    assert_eq!(r1.bugs_found, r2.bugs_found);
}

#[test]
fn dataset_roundtrip_preserves_training_behaviour() {
    use snowcat::core::as_labeled;
    use snowcat::nn::{train, PicModel, TrainConfig};
    let kernel = KernelVersion::V5_12.spec(0xE2E).build();
    let cfg = KernelCfg::build(&kernel);
    let out = train_pic(&kernel, &cfg, &tiny_pipeline(), "PIC-e2e");

    // Serialize the training dataset and reload it; training on the loaded
    // copy must produce identical losses.
    let json = out.train_set.to_json().unwrap();
    let reloaded = Dataset::from_json(&json).unwrap();
    assert_eq!(out.train_set, reloaded);

    let mk = || PicModel::new(PicConfig { hidden: 8, layers: 1, ..PicConfig::default() });
    let cfg_t = TrainConfig { epochs: 1, ..TrainConfig::default() };
    let mut m1 = mk();
    let mut m2 = mk();
    let r1 = train(&mut m1, &as_labeled(&out.train_set), &[], cfg_t);
    let r2 = train(&mut m2, &as_labeled(&reloaded), &[], cfg_t);
    assert_eq!(r1.epoch_losses, r2.epoch_losses);
    assert_eq!(m1.params, m2.params);
}

#[test]
fn predictions_are_consistent_between_predict_paths() {
    let kernel = KernelVersion::V5_12.spec(0xE2E).build();
    let cfg = KernelCfg::build(&kernel);
    let out = train_pic(&kernel, &cfg, &tiny_pipeline(), "PIC-e2e");
    let pic = Pic::new(&out.checkpoint, &kernel, &cfg);
    let service = PredictorService::direct(&pic);
    let a = &out.corpus[2];
    let b = &out.corpus[5];
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2);
    let base = service.base_graph(a, b);
    let hints: Vec<_> = (0..5).map(|_| propose_hints(&mut rng, a.seq.steps, b.seq.steps)).collect();
    // Three routes to the same prediction: one-shot, base-graph reuse, batch.
    let batch = service.predict_candidates(&base, a, b, &hints);
    for (h, pb) in hints.iter().zip(&batch) {
        let p1 = service.predict_ct(a, b, h);
        let p2 = service.predict_candidate(&base, a, b, h);
        let graph = pic.candidate_graph(&base, a, b, h);
        let p3 = pic.predict_one(&graph);
        assert_eq!(p1.probs, p2.probs);
        assert_eq!(p2.probs, p3.probs);
        assert_eq!(p3.probs, pb.probs);
        assert_eq!(p1.positive, pb.positive);
    }
    assert!(pic.stats().inferences() >= hints.len() as u64 * 3);
}
