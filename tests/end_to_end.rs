//! End-to-end integration: the full Snowcat workflow at miniature scale —
//! fuzz → datasets → train → deploy → MLPCT exploration → campaign.

use snowcat::core::{
    explore_mlpct, explore_pct, run_campaign, train_pic, CostModel, ExploreConfig, Explorer,
    Pic, PipelineConfig, S1NewBitmap,
};
use snowcat::nn::Checkpoint;
use snowcat::prelude::*;

fn tiny_pipeline() -> PipelineConfig {
    PipelineConfig {
        fuzz_iterations: 20,
        n_ctis: 16,
        train_interleavings: 4,
        eval_interleavings: 4,
        model: PicConfig { hidden: 12, layers: 2, ..PicConfig::default() },
        train: TrainConfig { epochs: 2, ..TrainConfig::default() },
        seed: 0xE2E,
    }
}

#[test]
fn full_workflow_runs_and_checkpoint_roundtrips_via_disk() {
    let kernel = KernelVersion::V5_12.spec(0xE2E).build();
    let cfg = KernelCfg::build(&kernel);
    let out = train_pic(&kernel, &cfg, &tiny_pipeline(), "PIC-e2e");

    // Persist and reload the checkpoint through a real file.
    let dir = std::env::temp_dir().join("snowcat-e2e-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pic.json");
    std::fs::write(&path, out.checkpoint.to_json().unwrap()).unwrap();
    let loaded = Checkpoint::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(loaded, out.checkpoint);
    std::fs::remove_file(&path).ok();

    // Deploy and explore one CTI with both explorers.
    let mut pic = Pic::new(&loaded, &kernel, &cfg);
    let mut strat = S1NewBitmap::new();
    let explore = ExploreConfig { exec_budget: 6, inference_cap: 60, seed: 0xE2E };
    let a = &out.corpus[0];
    let b = &out.corpus[1];
    let ml = explore_mlpct(&kernel, &mut pic, &mut strat, a, b, &explore);
    let pct = explore_pct(&kernel, a, b, &explore);
    assert!(ml.executions <= 6);
    assert!(ml.inferences >= ml.executions);
    assert!(pct.executions <= 6);
    assert_eq!(pct.inferences, 0);
}

#[test]
fn campaign_histories_are_reproducible() {
    let kernel = KernelVersion::V5_12.spec(0xE2E).build();
    let cfg = KernelCfg::build(&kernel);
    let out = train_pic(&kernel, &cfg, &tiny_pipeline(), "PIC-e2e");
    let stream = vec![(0usize, 1usize), (2, 3), (4, 5)];
    let explore = ExploreConfig { exec_budget: 4, inference_cap: 40, seed: 0xCAFE };
    let cost = CostModel::default();

    let run = |ck: &Checkpoint| {
        let mut pic = Pic::new(ck, &kernel, &cfg);
        run_campaign(
            &kernel,
            &out.corpus,
            &stream,
            Explorer::MlPct { pic: &mut pic, strategy: Box::new(S1NewBitmap::new()) },
            &explore,
            &cost,
        )
    };
    let r1 = run(&out.checkpoint);
    let r2 = run(&out.checkpoint);
    assert_eq!(r1.history, r2.history);
    assert_eq!(r1.bugs_found, r2.bugs_found);
}

#[test]
fn dataset_roundtrip_preserves_training_behaviour() {
    use snowcat::core::as_labeled;
    use snowcat::nn::{train, PicModel, TrainConfig};
    let kernel = KernelVersion::V5_12.spec(0xE2E).build();
    let cfg = KernelCfg::build(&kernel);
    let out = train_pic(&kernel, &cfg, &tiny_pipeline(), "PIC-e2e");

    // Serialize the training dataset and reload it; training on the loaded
    // copy must produce identical losses.
    let json = out.train_set.to_json().unwrap();
    let reloaded = Dataset::from_json(&json).unwrap();
    assert_eq!(out.train_set, reloaded);

    let mk = || PicModel::new(PicConfig { hidden: 8, layers: 1, ..PicConfig::default() });
    let cfg_t = TrainConfig { epochs: 1, ..TrainConfig::default() };
    let mut m1 = mk();
    let mut m2 = mk();
    let r1 = train(&mut m1, &as_labeled(&out.train_set), &[], cfg_t);
    let r2 = train(&mut m2, &as_labeled(&reloaded), &[], cfg_t);
    assert_eq!(r1.epoch_losses, r2.epoch_losses);
    assert_eq!(m1.params, m2.params);
}

#[test]
fn predictions_are_consistent_between_predict_paths() {
    let kernel = KernelVersion::V5_12.spec(0xE2E).build();
    let cfg = KernelCfg::build(&kernel);
    let out = train_pic(&kernel, &cfg, &tiny_pipeline(), "PIC-e2e");
    let mut pic = Pic::new(&out.checkpoint, &kernel, &cfg);
    let a = &out.corpus[2];
    let b = &out.corpus[5];
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2);
    for _ in 0..5 {
        let hints = propose_hints(&mut rng, a.seq.steps, b.seq.steps);
        let p1 = pic.predict(a, b, &hints);
        let base = pic.base_graph(a, b);
        let p2 = pic.predict_with_base(&base, a, b, &hints);
        assert_eq!(p1.probs, p2.probs);
        assert_eq!(p1.positive, p2.positive);
    }
}
