//! The VM and race detector are not limited to the paper's two-thread CTs:
//! these tests run three concurrent threads (e.g. modelling an interrupt
//! handler as a third context, the direction §6 sketches).

use rand::rngs::StdRng;
use rand::SeedableRng;
use snowcat::prelude::*;
use snowcat::vm::{PctScheduler, Vm};

fn kernel() -> Kernel {
    KernelVersion::V5_12.spec(0x333).build()
}

fn sti(k: &Kernel, i: u32, arg: i64) -> Sti {
    Sti::new(vec![SyscallInvocation {
        syscall: SyscallId(i % k.syscalls.len() as u32),
        args: [arg, 0, 0],
    }])
}

#[test]
fn three_threads_complete_under_pct() {
    let k = kernel();
    let stis = vec![sti(&k, 0, 0), sti(&k, 1, 1), sti(&k, 2, 2)];
    let mut rng = StdRng::seed_from_u64(7);
    for d in [2usize, 3, 4] {
        let mut sched = PctScheduler::new(&mut rng, 3, 600, d);
        let r = Vm::new(&k, stis.clone(), VmConfig::default()).run(&mut sched);
        assert_eq!(r.exit, snowcat::vm::ExitReason::Completed, "depth {d}");
        assert_eq!(r.thread_steps.len(), 3);
        assert!(r.thread_steps.iter().all(|&s| s > 0), "every thread ran: {:?}", r.thread_steps);
        // Coverage union equals the per-thread union for three threads too.
        let mut u = snowcat::vm::BitSet::new(k.num_blocks());
        for c in &r.per_thread_coverage {
            u.union_with(c);
        }
        assert_eq!(u, r.coverage);
    }
}

#[test]
fn races_can_span_any_thread_pair() {
    // Run a bug's two carriers plus an unrelated third thread; detected
    // races must only pair accesses from *different* threads, and at least
    // one race should involve the carrier pair under a tight interleaving.
    let k = kernel();
    let bug = &k.bugs[0];
    let stis = vec![
        Sti::new(vec![SyscallInvocation { syscall: bug.syscalls.0, args: [0; 3] }]),
        Sti::new(vec![SyscallInvocation { syscall: bug.syscalls.1, args: [0; 3] }]),
        sti(&k, 7, 1),
    ];
    let det = RaceDetector::new(10_000);
    let mut rng = StdRng::seed_from_u64(11);
    let mut any_race = false;
    for _ in 0..30 {
        let mut sched = PctScheduler::new(&mut rng, 3, 400, 4);
        let r = Vm::new(&k, stis.clone(), VmConfig::default()).run(&mut sched);
        for report in det.detect(&k, &r) {
            any_race = true;
            // The reported pair must come from at least two distinct
            // threads (validated against the raw access stream).
            let threads: std::collections::HashSet<_> = r
                .accesses
                .iter()
                .filter(|a| a.loc == report.key.0 || a.loc == report.key.1)
                .map(|a| a.thread)
                .collect();
            assert!(threads.len() >= 2);
        }
    }
    assert!(any_race, "tightly interleaved carrier threads should race");
}

#[test]
fn deterministic_across_three_threads() {
    let k = kernel();
    let stis = vec![sti(&k, 3, 0), sti(&k, 4, 1), sti(&k, 5, 2)];
    let run = || {
        let mut rng = StdRng::seed_from_u64(42);
        let mut sched = PctScheduler::new(&mut rng, 3, 500, 3);
        Vm::new(&k, stis.clone(), VmConfig::default()).run(&mut sched)
    };
    assert_eq!(run(), run());
}
