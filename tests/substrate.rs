//! Cross-crate integration tests over the substrate: kernel ↔ vm ↔ cfg ↔
//! race. These pin down the semantic contracts the higher layers (graphs,
//! model, strategies) silently rely on.

use snowcat::prelude::*;
use snowcat::vm::{SequentialScheduler, Vm};

fn kernel() -> Kernel {
    KernelVersion::V5_12.spec(0x7e57).build()
}

fn corpus(k: &Kernel) -> Vec<StiProfile> {
    let mut fz = StiFuzzer::new(k, 5);
    fz.seed_each_syscall();
    fz.fuzz(30);
    fz.into_corpus()
}

#[test]
fn sequential_composition_equals_hintless_schedule() {
    // Running CTI (a, b) under the trivial schedule (A to completion, then
    // B) must equal running a two-thread VM under the sequential scheduler:
    // same coverage, same bug hits, same final behaviour.
    let k = kernel();
    let c = corpus(&k);
    for (ia, ib) in [(0usize, 1usize), (3, 9), (12, 4)] {
        let cti = Cti::new(c[ia].sti.clone(), c[ib].sti.clone());
        let hintless =
            run_ct(&k, &cti, ScheduleHints::sequential(ThreadId(0)), VmConfig::default());
        let vm = Vm::new(&k, vec![cti.a.clone(), cti.b.clone()], VmConfig::default());
        let seq = vm.run(&mut SequentialScheduler);
        assert_eq!(hintless.coverage, seq.coverage);
        assert_eq!(hintless.accesses, seq.accesses);
        assert_eq!(hintless.bugs, seq.bugs);
    }
}

#[test]
fn urbs_are_disjoint_from_coverage_and_statically_adjacent() {
    let k = kernel();
    let cfg = KernelCfg::build(&k);
    for p in corpus(&k).iter().take(20) {
        let urbs = cfg.k_hop_urbs(&p.seq.coverage, 1);
        for e in &urbs {
            assert!(!p.seq.coverage.contains(e.to.index()));
            assert!(p.seq.coverage.contains(e.from.index()));
            assert!(cfg.successors(e.from).contains(&e.to));
        }
    }
}

#[test]
fn concurrent_coverage_stays_within_static_reachability() {
    // Whatever the schedule does, covered blocks must be statically
    // reachable from the invoked syscalls' entries.
    let k = kernel();
    let cfg = KernelCfg::build(&k);
    let c = corpus(&k);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
    for (ia, ib) in [(0usize, 8usize), (5, 5), (20, 2)] {
        let a = &c[ia];
        let b = &c[ib];
        let entries: Vec<_> = a
            .sti
            .calls
            .iter()
            .chain(&b.sti.calls)
            .map(|call| k.func(k.syscall(call.syscall).func).entry)
            .collect();
        let reach = cfg.reachable_from(&entries);
        for _ in 0..10 {
            let hints = propose_hints(&mut rng, a.seq.steps, b.seq.steps);
            let r = run_ct(&k, &Cti::new(a.sti.clone(), b.sti.clone()), hints, VmConfig::default());
            for blk in r.coverage.iter() {
                assert!(reach.contains(blk), "block {blk} covered but not reachable");
            }
        }
    }
}

#[test]
fn race_reports_only_on_truly_shared_addresses() {
    let k = kernel();
    let c = corpus(&k);
    let det = RaceDetector::default();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(13);
    let a = &c[0];
    let b = &c[1];
    for _ in 0..10 {
        let hints = propose_hints(&mut rng, a.seq.steps, b.seq.steps);
        let r = run_ct(&k, &Cti::new(a.sti.clone(), b.sti.clone()), hints, VmConfig::default());
        for report in det.detect(&k, &r) {
            // Both racing instructions accessed the reported address from
            // different threads in this run.
            let hit = |loc| {
                r.accesses
                    .iter()
                    .filter(|x| x.loc == loc && x.addr == report.addr)
                    .map(|x| x.thread)
                    .collect::<std::collections::HashSet<_>>()
            };
            let ta = hit(report.key.0);
            let tb = hit(report.key.1);
            assert!(!ta.is_empty() && !tb.is_empty());
            assert!(ta.union(&tb).count() >= 2, "race endpoints must span two threads");
        }
    }
}

#[test]
fn all_planted_bugs_are_exposable_by_some_two_switch_schedule() {
    // The core soundness property of the substrate: every planted bug has
    // *some* 2-switch schedule (possibly with specific syscall orderings)
    // under which its oracle fires or its race manifests — otherwise the
    // testing experiments would chase phantoms. Hard bugs may need many
    // trials; we bound the search generously and require at least easy +
    // medium bugs to be exposable, and 2/3 of all bugs overall.
    let k = kernel();
    let det = RaceDetector::default();
    let mut exposed = 0usize;
    let mut exposed_easy_medium = 0usize;
    let mut easy_medium_total = 0usize;
    for bug in &k.bugs {
        let a = Sti::new(vec![SyscallInvocation { syscall: bug.syscalls.0, args: [0; 3] }]);
        let b = Sti::new(vec![SyscallInvocation { syscall: bug.syscalls.1, args: [0; 3] }]);
        let len_a = run_sequential(&k, &a).steps;
        let len_b = run_sequential(&k, &b).steps;
        let mut hit = false;
        'search: for first in [ThreadId(0), ThreadId(1)] {
            let (fl, sl) = if first == ThreadId(0) { (len_a, len_b) } else { (len_b, len_a) };
            for x in 1..=fl {
                for y in (1..=sl).step_by(2) {
                    let hints = ScheduleHints {
                        first,
                        switches: vec![
                            SwitchPoint { thread: first, after: x },
                            SwitchPoint { thread: ThreadId(1 - first.0), after: y },
                        ],
                    };
                    let r = run_ct(&k, &Cti::new(a.clone(), b.clone()), hints, VmConfig::default());
                    if r.hit_bug(bug.id)
                        || det
                            .detect(&k, &r)
                            .iter()
                            .any(|rep| match_planted_bug(&k, rep) == Some(bug.id))
                    {
                        hit = true;
                        break 'search;
                    }
                }
            }
        }
        let em = bug.kind != BugKind::MultiOrder;
        if em {
            easy_medium_total += 1;
        }
        if hit {
            exposed += 1;
            if em {
                exposed_easy_medium += 1;
            }
        }
    }
    assert_eq!(
        exposed_easy_medium, easy_medium_total,
        "every easy/medium planted bug must be exposable"
    );
    assert!(
        exposed * 3 >= k.bugs.len() * 2,
        "at least 2/3 of all planted bugs exposable, got {exposed}/{}",
        k.bugs.len()
    );
}

#[test]
fn version_evolution_preserves_unchanged_syscall_semantics() {
    // Syscalls whose code is bit-identical across 5.12 → 5.13 must produce
    // identical memory-access *patterns* when run with the same inputs.
    let k512 = KernelVersion::V5_12.spec(0x7e57).build();
    let k513 = KernelVersion::V5_13.spec(0x7e57).build();
    let mut checked = 0;
    for sc512 in &k512.syscalls {
        let Some(sc513) = k513.syscalls.iter().find(|s| s.name == sc512.name) else {
            continue;
        };
        // Compare bodies with call targets resolved by *name* (function ids
        // shift between versions), including one level of callee bodies
        // (helpers are leaf functions in the generator).
        fn comparable(k: &Kernel, f: snowcat::kernel::FuncId, depth: usize) -> Vec<String> {
            let mut out = Vec::new();
            for &b in &k.func(f).blocks {
                for ins in &k.block(b).instrs {
                    match ins {
                        snowcat::kernel::Instr::Call { func } => {
                            out.push(format!("call {}", k.func(*func).name));
                            if depth > 0 {
                                out.extend(comparable(k, *func, depth - 1));
                            }
                        }
                        other => out.push(format!("{other:?}")),
                    }
                }
                out.push(format!("{:?}", std::mem::discriminant(&k.block(b).term)));
            }
            out
        }
        if comparable(&k512, sc512.func, 1) != comparable(&k513, sc513.func, 1) {
            continue; // evolved function (or evolved callee)
        }
        let sti512 = Sti::new(vec![SyscallInvocation {
            syscall: SyscallId(
                k512.syscalls.iter().position(|s| s.name == sc512.name).unwrap() as u32
            ),
            args: [1, 0, 0],
        }]);
        let sti513 = Sti::new(vec![SyscallInvocation {
            syscall: SyscallId(
                k513.syscalls.iter().position(|s| s.name == sc513.name).unwrap() as u32
            ),
            args: [1, 0, 0],
        }]);
        let r512 = run_sequential(&k512, &sti512);
        let r513 = run_sequential(&k513, &sti513);
        assert_eq!(r512.steps, r513.steps, "step count differs for {}", sc512.name);
        assert_eq!(
            r512.coverage.count(),
            r513.coverage.count(),
            "coverage size differs for {}",
            sc512.name
        );
        checked += 1;
        if checked >= 10 {
            break;
        }
    }
    assert!(checked >= 5, "too few unchanged syscalls to compare ({checked})");
}
