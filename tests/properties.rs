//! Property-based tests (proptest) over the substrate's core invariants.

use proptest::prelude::*;
use snowcat::prelude::*;
use snowcat::vm::BitSet;

fn test_kernel() -> Kernel {
    // Smaller than default so each proptest case is fast.
    generate(&GenConfig {
        num_subsystems: 3,
        syscalls_per_subsystem: 4,
        helpers_per_subsystem: 2,
        segments_per_syscall: (3, 6),
        ..GenConfig::default()
    })
}

/// Strategy producing a valid STI for the test kernel.
fn arb_sti(k: &Kernel) -> impl Strategy<Value = Sti> {
    let n_syscalls = k.syscalls.len() as u32;
    let max_arg = k.syscalls[0].arg_max[0];
    proptest::collection::vec((0..n_syscalls, 0..=max_arg), 1..4).prop_map(|calls| {
        Sti::new(
            calls
                .into_iter()
                .map(|(s, a)| SyscallInvocation { syscall: SyscallId(s), args: [a, 0, 0] })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sequential_execution_is_deterministic(seed in 0u32..1000) {
        let k = test_kernel();
        let sti = Sti::new(vec![SyscallInvocation {
            syscall: SyscallId(seed % k.syscalls.len() as u32),
            args: [i64::from(seed % 4), 0, 0],
        }]);
        let a = run_sequential(&k, &sti);
        let b = run_sequential(&k, &sti);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn any_two_switch_schedule_terminates_and_respects_invariants(
        ia in 0usize..12, ib in 0usize..12, x in 1u64..400, y in 1u64..400,
    ) {
        let k = test_kernel();
        let sa = Sti::new(vec![SyscallInvocation {
            syscall: SyscallId((ia % k.syscalls.len()) as u32),
            args: [1, 0, 0],
        }]);
        let sb = Sti::new(vec![SyscallInvocation {
            syscall: SyscallId((ib % k.syscalls.len()) as u32),
            args: [2, 0, 0],
        }]);
        let hints = ScheduleHints {
            first: ThreadId(0),
            switches: vec![
                SwitchPoint { thread: ThreadId(0), after: x },
                SwitchPoint { thread: ThreadId(1), after: y },
            ],
        };
        let r = run_ct(&k, &Cti::new(sa, sb), hints, VmConfig::default());
        // Loop-free kernels always complete (no deadlock with reentrant
        // locks on a 2-thread nested-region generator, no step-limit).
        prop_assert_eq!(r.exit, snowcat::vm::ExitReason::Completed);
        // Union coverage equals per-thread union.
        let mut u = BitSet::new(k.num_blocks());
        u.union_with(&r.per_thread_coverage[0]);
        u.union_with(&r.per_thread_coverage[1]);
        prop_assert_eq!(&u, &r.coverage);
        // Accesses are in nondecreasing global-step order.
        prop_assert!(r.accesses.windows(2).all(|w| w[0].step <= w[1].step));
        // Each thread's executed count is consistent with its trace.
        prop_assert!(r.thread_steps.iter().sum::<u64>() == r.steps);
    }

    #[test]
    fn fuzzed_stis_always_validate(seed in 0u64..500) {
        let k = test_kernel();
        let mut fz = StiFuzzer::new(&k, seed);
        for _ in 0..5 {
            let sti = fz.random_sti();
            prop_assert!(sti.validate(&k).is_ok());
            let mutant = fz.mutate_sti(&sti);
            prop_assert!(mutant.validate(&k).is_ok());
        }
    }

    #[test]
    fn graph_labels_align_and_urbs_stay_urbs(
        ia in 0usize..10, ib in 0usize..10, x in 1u64..200, y in 1u64..200,
    ) {
        let k = test_kernel();
        let cfg = KernelCfg::build(&k);
        let sa = Sti::new(vec![SyscallInvocation {
            syscall: SyscallId((ia % k.syscalls.len()) as u32),
            args: [0, 0, 0],
        }]);
        let sb = Sti::new(vec![SyscallInvocation {
            syscall: SyscallId((ib % k.syscalls.len()) as u32),
            args: [3, 0, 0],
        }]);
        let ra = run_sequential(&k, &sa);
        let rb = run_sequential(&k, &sb);
        let builder = CtGraphBuilder::new(&k, &cfg);
        let hints = ScheduleHints {
            first: ThreadId(0),
            switches: vec![
                SwitchPoint { thread: ThreadId(0), after: x },
                SwitchPoint { thread: ThreadId(1), after: y },
            ],
        };
        let g = builder.build(&ra, &rb, &hints);
        prop_assert!(g.validate().is_ok());
        let ct = run_ct(&k, &Cti::new(sa, sb), hints, VmConfig::default());
        let labels = builder.label(&g, &ct);
        prop_assert_eq!(labels.len(), g.num_verts());
        // Every SCB vertex covered sequentially by thread 0/1 keeps a
        // defined label; URB vertices are never sequentially covered.
        for v in &g.verts {
            let seq = if v.thread == ThreadId(0) { &ra } else { &rb };
            match v.kind {
                VertKind::Urb => {
                    prop_assert!(!seq.per_thread_coverage[0].contains(v.block.index()))
                }
                VertKind::Scb => {
                    prop_assert!(seq.per_thread_coverage[0].contains(v.block.index()))
                }
            }
        }
    }

    #[test]
    fn bitset_union_difference_laws(bits_a in proptest::collection::vec(0usize..256, 0..40),
                                    bits_b in proptest::collection::vec(0usize..256, 0..40)) {
        let mut a = BitSet::new(256);
        let mut b = BitSet::new(256);
        for &x in &bits_a { a.insert(x); }
        for &x in &bits_b { b.insert(x); }
        let mut u = a.clone();
        u.union_with(&b);
        // |A ∪ B| = |A| + |B \ A|
        prop_assert_eq!(u.count(), a.count() + b.difference(&a).count());
        // A \ B and B disjoint
        let d = a.difference(&b);
        for bit in d.iter() {
            prop_assert!(!b.contains(bit));
            prop_assert!(a.contains(bit));
        }
        // fingerprint equality for equal sets
        let mut a2 = BitSet::new(256);
        for &x in &bits_a { a2.insert(x); }
        prop_assert_eq!(a.fingerprint(), a2.fingerprint());
    }

    #[test]
    fn race_detection_is_schedule_window_monotone(
        w1 in 1u64..30, w2 in 30u64..200,
    ) {
        let k = test_kernel();
        let bug = &k.bugs[0];
        let a = Sti::new(vec![SyscallInvocation { syscall: bug.syscalls.0, args: [0; 3] }]);
        let b = Sti::new(vec![SyscallInvocation { syscall: bug.syscalls.1, args: [0; 3] }]);
        let hints = ScheduleHints {
            first: ThreadId(0),
            switches: vec![
                SwitchPoint { thread: ThreadId(0), after: 6 },
                SwitchPoint { thread: ThreadId(1), after: 6 },
            ],
        };
        let r = run_ct(&k, &Cti::new(a, b), hints, VmConfig::default());
        let narrow = RaceDetector::new(w1).detect(&k, &r).len();
        let wide = RaceDetector::new(w2).detect(&k, &r).len();
        prop_assert!(wide >= narrow);
    }
}

/// Deep STIs stress the arbitrary-STI generator path (non-proptest smoke of
/// the strategy above so failures print nicely).
#[test]
fn arbitrary_sti_strategy_smoke() {
    let k = test_kernel();
    use proptest::strategy::ValueTree;
    let mut runner = proptest::test_runner::TestRunner::deterministic();
    let strat = arb_sti(&k);
    for _ in 0..16 {
        let sti = strat.new_tree(&mut runner).unwrap().current();
        assert!(sti.validate(&k).is_ok());
        let r = run_sequential(&k, &sti);
        assert_eq!(r.exit, snowcat::vm::ExitReason::Completed);
    }
}
