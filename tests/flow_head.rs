//! End-to-end test of the §6 extension: the inter-thread-flow head learns
//! to rank realized flows above unrealized ones on real synthetic-kernel
//! data.

use snowcat::core::{as_flow_labeled, collect_data, train_on_with_flows, PipelineConfig};
use snowcat::nn::{average_precision, flow_average_precision};
use snowcat::prelude::*;

#[test]
fn flow_head_learns_realized_flows() {
    let kernel = KernelVersion::V5_12.spec(0xF10E).build();
    let cfg = KernelCfg::build(&kernel);
    // Flow prediction needs a little more data/capacity than the other
    // integration tests (the signal is schedule-dependent); this is still a
    // ~minute in release mode.
    let pcfg = PipelineConfig::default()
        .with_fuzz_iterations(60)
        .with_n_ctis(160)
        .with_train_interleavings(8)
        .with_eval_interleavings(8)
        .with_model(PicConfig { hidden: 24, layers: 4, ..PicConfig::default() })
        .with_train(TrainConfig { epochs: 6, ..TrainConfig::default() })
        .with_seed(0xF10E);
    let data = collect_data(&kernel, &cfg, &pcfg);

    // Base rate of realized flows among InterFlow edges in the eval split.
    let eval_refs = as_flow_labeled(&data.eval_set);
    let mut total = 0usize;
    let mut pos = 0usize;
    for (g, _, flows) in &eval_refs {
        for (e, &f) in g.edges.iter().zip(*flows) {
            if e.kind == EdgeKind::InterFlow {
                total += 1;
                if f {
                    pos += 1;
                }
            }
        }
    }
    assert!(total > 20, "eval split should contain inter-flow edges, got {total}");
    let base_rate = pos as f64 / total as f64;
    assert!(base_rate > 0.0, "some flows must be realized");
    assert!(base_rate < 1.0, "not every potential flow is realized");

    let (ck, _summary, flow_ap) =
        train_on_with_flows(&kernel, &data, pcfg.model, pcfg.train, pcfg.seed, "PIC-flow-test");

    // A random ranker's AP equals the base rate in expectation; the trained
    // head must clearly beat it. The run is fully seeded, but the exact AP
    // still shifts when upstream crates change iteration order or defaults
    // (a +0.1 margin once sat at 0.0994 and failed on an unrelated change),
    // so the learning bar uses a tolerance well inside the observed margin
    // rather than a round number at its edge.
    const LEARNING_MARGIN: f64 = 0.05;
    assert!(
        flow_ap > base_rate + LEARNING_MARGIN,
        "flow head failed to learn: AP {flow_ap:.3} vs base rate {base_rate:.3}"
    );

    // The returned checkpoint reproduces the same flow AP after restore.
    let model = ck.restore();
    let ap2 = flow_average_precision(&model, &eval_refs);
    assert!((ap2 - flow_ap).abs() < 1e-9);

    // Sanity: average_precision is exported and consistent for a perfect
    // ranking of the same label multiset.
    let labels: Vec<bool> = vec![true, false];
    let scores = [0.9f32, 0.1];
    assert_eq!(average_precision(&scores, &labels), 1.0);
}
